"""Implication of ``L_u`` constraints (§3.2, Theorem 3.2, Corollary 3.3).

Unrestricted implication is decided with the ``I_u`` axioms::

    UK-FK:      tau.l -> tau                         ⊢  tau.l ⊆ tau.l
    UFK-K:      tau.l ⊆ tau'.l'                      ⊢  tau'.l' -> tau'
    SFK-K:      tau.l ⊆_S tau'.l'                    ⊢  tau'.l' -> tau'
    UFK-trans:  tau1.l1 ⊆ tau2.l2, tau2.l2 ⊆ tau3.l3 ⊢  tau1.l1 ⊆ tau3.l3
    USFK-trans: tau1.l1 ⊆_S tau2.l2, tau2.l2 ⊆ tau3.l3 ⊢ tau1.l1 ⊆_S tau3.l3
    Inv-SFK:    tau(lk).l ⇌ tau'(lk').l', keys of lk and lk'
                ⊢  tau.l ⊆_S tau'.lk'  and  tau'.l' ⊆_S tau.lk

operationally: key marks on attribute nodes plus reachability in the
inclusion graph.

Finite implication adds the **cycle rules** ``C_k``, whose statement is
reconstructed from the Cosmadakis–Kanellakis–Vardi cardinality argument
the paper follows (the rule bodies are lost in the available text; see
DESIGN.md): in a finite model every constraint yields a cardinality
inequality —

- single-valued attribute node ``n = (tau, l)``:  ``|vals(n)| ≤ |ext(tau)|``,
- key ``tau.l -> tau``:                           ``|ext(tau)| ≤ |vals(n)|``,
- inclusion ``n ⊆ m`` or ``n ⊆_S m``:             ``|vals(n)| ≤ |vals(m)|``

— and a cycle of inequalities forces equalities along it.  An equality
``|vals(n)| = |vals(m)|`` across a stated inclusion ``vals(n) ⊆ vals(m)``
(finite sets!) forces ``vals(n) = vals(m)``, i.e. the *reversed*
inclusion; an equality ``|vals(n)| = |ext(tau)|`` for single-valued ``n``
forces ``n`` to be a *key*.  The decision procedure therefore iterates
SCC computation on the cardinality graph, adding reversed inclusions and
new keys (and newly-enabled inverse expansions) until fixpoint.  Each
iteration is linear and the number of iterations is bounded by the
number of derivable facts, giving the paper's low polynomial behaviour
(linear in practice; exp E5 benchmarks the curve).

The two problems genuinely differ (Cor 3.3): with
``Σ = {tau.a -> tau, tau.b -> tau, tau.a ⊆ tau.b}`` the finite engine
derives ``tau.b ⊆ tau.a`` (cycle rule) while the unrestricted engine
does not — an infinite model with ``b = identity`` and ``a = successor``
separates them.  See :mod:`repro.implication.counterexample`.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Iterable

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.errors import ConstraintError, LanguageMismatchError
from repro.implication.result import Derivation, ImplicationResult, given
from repro.obs import NULL_OBS

#: An attribute node: (element type, field).
Node = tuple[str, Field]

_LU_TYPES = (UnaryKey, UnaryForeignKey, SetValuedForeignKey, Inverse)


def _require_lu(constraints: Iterable[Constraint]) -> list[Constraint]:
    out = []
    for c in constraints:
        if not isinstance(c, _LU_TYPES):
            raise LanguageMismatchError(f"{c} is not an L_u constraint")
        out.append(c)
    return out


def _canonical_inverse(c: Inverse) -> Inverse:
    a = (c.element, str(c.field), str(c.key_field))
    b = (c.target, str(c.target_field), str(c.target_key_field))
    return c if a <= b else c.flipped()


def _node_str(n: Node) -> str:
    return f"{n[0]}.{n[1]}"


class _Arities:
    """Infer single-/set-valuedness of attribute nodes from usage.

    A node used both as a key (or unary-FK endpoint) and as a set-valued
    FK source is contradictory and rejected, mirroring the DTD side
    conditions of §2.2.
    """

    def __init__(self):
        self.single: set[Node] = set()
        self.set_valued: set[Node] = set()

    def mark_single(self, n: Node) -> None:
        if n in self.set_valued:
            raise ConstraintError(
                f"attribute {_node_str(n)} is used both single- and "
                "set-valued")
        self.single.add(n)

    def mark_set(self, n: Node) -> None:
        if n in self.single:
            raise ConstraintError(
                f"attribute {_node_str(n)} is used both single- and "
                "set-valued")
        self.set_valued.add(n)

    def scan(self, constraints: Iterable[Constraint]) -> None:
        for c in constraints:
            if isinstance(c, UnaryKey):
                self.mark_single((c.element, c.field))
            elif isinstance(c, UnaryForeignKey):
                self.mark_single((c.element, c.field))
                self.mark_single((c.target, c.target_field))
            elif isinstance(c, SetValuedForeignKey):
                self.mark_set((c.element, c.field))
                self.mark_single((c.target, c.target_field))
            elif isinstance(c, Inverse):
                self.mark_set((c.element, c.field))
                self.mark_set((c.target, c.target_field))
                self.mark_single((c.element, c.key_field))
                self.mark_single((c.target, c.target_key_field))


class LuEngine:
    """Decider for implication and finite implication of ``L_u``."""

    def __init__(self, sigma: Iterable[Constraint], obs=None):
        self.obs = obs = obs or NULL_OBS
        self._counting = obs.enabled
        self._rule_counters: dict[str, object] = {}
        self.sigma = _require_lu(sigma)
        self.arities = _Arities()
        self.arities.scan(self.sigma)

        # --- unrestricted closure -------------------------------------------
        self.keys: dict[Node, Derivation] = {}
        self.edges: dict[Node, dict[Node, Derivation]] = defaultdict(dict)
        self.inverses: dict[Inverse, Derivation] = {}
        with obs.span("lu.closure.unrestricted", sigma=len(self.sigma)):
            self._build_unrestricted()

        # --- finite closure (adds reversed inclusions / cycle keys) ---------
        self.fin_keys: dict[Node, Derivation] = dict(self.keys)
        self.fin_edges: dict[Node, dict[Node, Derivation]] = {
            n: dict(out) for n, out in self.edges.items()}
        with obs.span("lu.closure.finite", sigma=len(self.sigma)):
            self._build_finite()

    # -- closure construction ---------------------------------------------------

    def _count_rule(self, rule: str) -> None:
        counter = self._rule_counters.get(rule)
        if counter is None:
            counter = self._rule_counters[rule] = self.obs.counter(
                "implication_rule_applications",
                {"engine": "lu", "rule": rule},
                help="successful inference-rule applications")
        counter.inc()

    def _add_key(self, keys: dict[Node, Derivation], n: Node,
                 d: Derivation) -> bool:
        if n in keys:
            return False
        keys[n] = d
        if self._counting:
            self._count_rule(d.rule)
        return True

    def _add_edge(self, edges, n: Node, m: Node, d: Derivation) -> bool:
        out = edges[n] if n in edges else edges.setdefault(n, {})
        if m in out:
            return False
        out[m] = d
        if self._counting:
            self._count_rule(d.rule)
        return True

    def _build_unrestricted(self) -> None:
        # Keys: stated, plus UFK-K / SFK-K on every stated foreign key.
        for c in self.sigma:
            if isinstance(c, UnaryKey):
                self._add_key(self.keys, (c.element, c.field), given(c))
            elif isinstance(c, (UnaryForeignKey, SetValuedForeignKey)):
                target = (c.target, c.target_field)
                rule = "UFK-K" if isinstance(c, UnaryForeignKey) else "SFK-K"
                self._add_key(
                    self.keys, target,
                    Derivation(str(c.implied_target_key()), rule,
                               (given(c),)))
        # Direct inclusion edges.
        for c in self.sigma:
            if isinstance(c, (UnaryForeignKey, SetValuedForeignKey)):
                self._add_edge(self.edges, (c.element, c.field),
                               (c.target, c.target_field), given(c))
            elif isinstance(c, Inverse):
                self.inverses[_canonical_inverse(c)] = given(c)
        # Inv-SFK: expand inverses whose designated keys are derivable.
        self._expand_inverses(self.keys, self.edges)

    def _expand_inverses(self, keys, edges) -> bool:
        changed = False
        for inv, d in self.inverses.items():
            k1 = (inv.element, inv.key_field)
            k2 = (inv.target, inv.target_key_field)
            if k1 in keys and k2 in keys:
                fk1, fk2 = inv.implied_foreign_keys()
                prem = (d, keys[k1], keys[k2])
                changed |= self._add_edge(
                    edges, (fk1.element, fk1.field),
                    (fk1.target, fk1.target_field),
                    Derivation(str(fk1), "Inv-SFK", prem))
                changed |= self._add_edge(
                    edges, (fk2.element, fk2.field),
                    (fk2.target, fk2.target_field),
                    Derivation(str(fk2), "Inv-SFK", prem))
        return changed

    # -- finite closure -----------------------------------------------------------

    def _cardinality_graph(self, keys, edges
                           ) -> dict[object, set[object]]:
        """Nodes: attribute nodes and type markers ``("type", tau)``.
        Edge u -> v encodes ``|u| ≤ |v|``."""
        graph: dict[object, set[object]] = defaultdict(set)
        nodes = set(self.arities.single) | set(self.arities.set_valued)
        nodes |= set(keys)
        nodes |= {m for out in edges.values() for m in out}
        nodes |= set(edges)
        for n in nodes:
            graph.setdefault(n, set())
            tmark = ("type", n[0])
            graph.setdefault(tmark, set())
            if n in self.arities.single or n in keys:
                graph[n].add(tmark)           # |vals(n)| <= |ext(tau)|
            if n in keys:
                graph[tmark].add(n)           # |ext(tau)| <= |vals(n)|
        for n, out in edges.items():
            for m in out:
                graph[n].add(m)               # |vals(n)| <= |vals(m)|
        return graph

    @staticmethod
    def _sccs(graph: dict[object, set[object]]) -> dict[object, int]:
        """Tarjan's algorithm, iterative; returns node -> component id."""
        index: dict[object, int] = {}
        low: dict[object, int] = {}
        on_stack: set[object] = set()
        stack: list[object] = []
        comp: dict[object, int] = {}
        counter = 0
        comp_id = 0
        for root in graph:
            if root in index:
                continue
            work = [(root, iter(graph[root]))]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = low[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(graph[succ])))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp[w] = comp_id
                        if w is node or w == node:
                            break
                    comp_id += 1
        return comp

    def _build_finite(self) -> None:
        """Fixpoint of the cycle rules over the cardinality graph."""
        if self._counting:
            c_iters = self.obs.counter(
                "implication_closure_iterations", {"engine": "lu"},
                help="fixpoint iterations of the finite-closure loop")
        while True:
            if self._counting:
                c_iters.inc()
            changed = False
            graph = self._cardinality_graph(self.fin_keys, self.fin_edges)
            comp = self._sccs(graph)
            # Reversed inclusions within an SCC.
            for n, out in list(self.fin_edges.items()):
                for m, d in list(out.items()):
                    if comp.get(n) != comp.get(m):
                        continue
                    back = Derivation(
                        f"{_node_str(m)} subseteq {_node_str(n)}",
                        "cycle-rule", (d,))
                    changed |= self._add_edge(self.fin_edges, m, n, back)
            # Cycle keys: single-valued node equal in cardinality to its type.
            for n in list(graph):
                if isinstance(n, tuple) and len(n) == 2 and \
                        isinstance(n[1], Field):
                    if n in self.fin_keys:
                        continue
                    if n not in self.arities.single:
                        continue
                    if comp.get(n) == comp.get(("type", n[0])):
                        d = Derivation(
                            f"{_node_str(n)} -> {n[0]}", "cycle-rule", ())
                        changed |= self._add_key(self.fin_keys, n, d)
            # Newly derivable keys may enable inverse expansion.
            changed |= self._expand_inverses(self.fin_keys, self.fin_edges)
            if not changed:
                break

    # -- reachability --------------------------------------------------------------

    def _reach(self, edges, source: Node, target: Node
               ) -> list[Derivation] | None:
        """BFS path from source to target; returns the edge derivations
        along one shortest path, or None."""
        if source == target:
            return []
        prev: dict[Node, tuple[Node, Derivation]] = {}
        queue: deque[Node] = deque((source,))
        seen = {source}
        while queue:
            n = queue.popleft()
            for m, d in edges.get(n, {}).items():
                if m in seen:
                    continue
                seen.add(m)
                prev[m] = (n, d)
                if m == target:
                    path: list[Derivation] = []
                    cur = m
                    while cur != source:
                        p, dd = prev[cur]
                        path.append(dd)
                        cur = p
                    path.reverse()
                    return path
                queue.append(m)
        return None

    # -- queries ----------------------------------------------------------------------

    def implies(self, phi: Constraint) -> ImplicationResult:
        """Decide unrestricted implication ``Σ ⊨ φ`` (system ``I_u``)."""
        return self._decide(phi, self.keys, self.edges, finite=False)

    def finitely_implies(self, phi: Constraint) -> ImplicationResult:
        """Decide finite implication ``Σ ⊨_f φ`` (system ``I_u^f``)."""
        return self._decide(phi, self.fin_keys, self.fin_edges, finite=True)

    def _decide(self, phi: Constraint, keys, edges,
                finite: bool) -> ImplicationResult:
        (phi,) = _require_lu((phi,))
        mode = "I_u^f" if finite else "I_u"
        if isinstance(phi, UnaryKey):
            n = (phi.element, phi.field)
            if n in keys:
                return ImplicationResult(True, derivation=keys[n])
            return ImplicationResult(
                False, reason=f"{_node_str(n)} is not a derivable key "
                f"under {mode}")
        if isinstance(phi, (UnaryForeignKey, SetValuedForeignKey)):
            n = (phi.element, phi.field)
            m = (phi.target, phi.target_field)
            if m not in keys:
                return ImplicationResult(
                    False, reason=f"target {_node_str(m)} is not a "
                    f"derivable key under {mode} (an L_u foreign key "
                    "must reference a key)")
            if isinstance(phi, SetValuedForeignKey) and n == m:
                return ImplicationResult(
                    False, reason="a set-valued attribute cannot be a key")
            path = self._reach(edges, n, m)
            if path is None:
                return ImplicationResult(
                    False, reason=f"no inclusion chain from {_node_str(n)} "
                    f"to {_node_str(m)} under {mode}")
            if not path:  # n == m: UK-FK
                return ImplicationResult(
                    True, derivation=Derivation(str(phi), "UK-FK",
                                                (keys[m],)))
            rule = "USFK-trans" if isinstance(phi, SetValuedForeignKey) \
                else "UFK-trans"
            if len(path) == 1:
                return ImplicationResult(True, derivation=path[0])
            return ImplicationResult(
                True, derivation=Derivation(str(phi), rule, tuple(path)))
        if isinstance(phi, Inverse):
            canon = _canonical_inverse(phi)
            k1 = (phi.element, phi.key_field)
            k2 = (phi.target, phi.target_key_field)
            if canon in self.inverses and k1 in keys and k2 in keys:
                return ImplicationResult(
                    True, derivation=Derivation(
                        str(phi), "given",
                        (self.inverses[canon], keys[k1], keys[k2])))
            return ImplicationResult(
                False, reason="inverse constraints are implied only when "
                "stated (with the same designated keys, both derivable)")
        raise LanguageMismatchError(f"{phi} is not an L_u constraint")

    # -- introspection -----------------------------------------------------------------

    def derivable_keys(self, finite: bool = False) -> set[Node]:
        """All attribute nodes that are derivable keys."""
        return set(self.fin_keys if finite else self.keys)

    def problems_coincide_on(self, phi: Constraint) -> bool:
        """Whether the two implication problems agree on ``φ``."""
        return bool(self.implies(phi)) == bool(self.finitely_implies(phi))
