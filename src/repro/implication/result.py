"""Shared result and derivation types for the implication engines."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.base import Constraint


@dataclass(frozen=True)
class Derivation:
    """A proof tree: ``conclusion`` derived by ``rule`` from ``premises``.

    ``rule`` names the axiom used (the paper's names: ``ID-FK``,
    ``UFK-trans``, ``PFK-perm``, ...); the leaf rule ``"given"`` marks
    members of Σ, and ``"reflexivity"``/``"definition"`` mark built-in
    steps.
    """

    conclusion: str
    rule: str
    premises: tuple["Derivation", ...] = ()

    def steps(self) -> list["Derivation"]:
        """All derivation nodes, premises before conclusions."""
        out: list[Derivation] = []
        for p in self.premises:
            out.extend(p.steps())
        out.append(self)
        return out

    def pretty(self, indent: int = 0) -> str:
        """Multi-line rendering of the proof tree."""
        pad = "  " * indent
        lines = [f"{pad}{self.conclusion}   [{self.rule}]"]
        for p in self.premises:
            lines.append(p.pretty(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()


def given(constraint: "Constraint | str") -> Derivation:
    """A leaf derivation: the constraint is a member of Σ."""
    return Derivation(str(constraint), "given")


@dataclass
class ImplicationResult:
    """The answer to one implication query ``Σ ⊨ φ`` / ``Σ ⊨_f φ``.

    ``bool(result)`` is the answer.  When implied, ``derivation`` (if the
    engine produces proofs) explains why; otherwise ``reason`` carries a
    short explanation and ``counterexample`` (when available) a witness
    object — a finite data tree, a finitely-presented infinite model, or
    a relational instance, depending on the engine.
    """

    implied: bool
    derivation: Derivation | None = None
    reason: str = ""
    counterexample: object | None = None
    details: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.implied

    def explain(self) -> str:
        """A human-readable explanation of the verdict."""
        if self.implied:
            if self.derivation is not None:
                return f"implied:\n{self.derivation.pretty()}"
            return f"implied ({self.reason or 'no proof recorded'})"
        body = self.reason or "no derivation exists"
        if self.counterexample is not None:
            body += f"; counterexample: {self.counterexample}"
        return f"not implied ({body})"
