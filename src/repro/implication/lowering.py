"""Lowering abstract counterexample models to real documents.

The implication engines talk in :class:`~repro.implication.models.
AbstractModel` — flat rows of field values, no tree shape.  The lint
engine wants *documents*: a counterexample the user can open, validate,
and poke at.  :func:`lower_model` bridges the two against an actual
``DTD^C`` structure: it builds a structurally valid skeleton realizing
the model's extension sizes (via :class:`~repro.synthesis.skeleton.
SkeletonBuilder`), then overwrites the skeleton's default values with
the model's rows — attributes directly, §3.4 element fields through
the child's text.

Unlike :func:`repro.implication.models.materialize` (which invents a
flat wrapper DTD), the lowered document lives under the *user's*
structure, so it can be validated against the user's schema as-is.
"""

from __future__ import annotations

from repro.datamodel.tree import DataTree
from repro.dtd.structure import DTDStructure
from repro.implication.models import AbstractModel
from repro.synthesis.skeleton import SkeletonBuilder
from repro.synthesis.values import assign_defaults, set_field


def lower_model(model: AbstractModel, structure: DTDStructure,
                builder: "SkeletonBuilder | None" = None
                ) -> "DataTree | None":
    """A structurally valid document realizing the abstract model.

    Every element type of the model gets exactly as many vertices as
    the model has rows (plus whatever the content models force), and
    each row's field values are written onto the corresponding vertex
    in document order.  Returns ``None`` when the structure cannot
    realize the extension sizes (unknown type, bounded occurrence).
    """
    for tau in model.elements:
        if not structure.has_element(tau):
            return None
    if builder is None:
        builder = SkeletonBuilder(structure)
    multiplicities = {tau: len(rows)
                      for tau, rows in model.elements.items() if rows}
    tree = builder.build(multiplicities)
    if tree is None:
        return None
    assign_defaults(tree, structure)
    for tau in sorted(model.elements):
        vertices = tree.ext(tau)
        for i, row in enumerate(model.ext(tau)):
            if i >= len(vertices):  # pragma: no cover — build honors mult
                return None
            for f in sorted(row.values, key=str):
                set_field(vertices[i], f, row.values[f], structure)
    return tree
