"""Abstract flat models for constraint (non-)implication witnesses.

An :class:`AbstractModel` is the semantic skeleton of a data tree: for
each element type, a list of elements carrying field values.  It is the
right level for implication counterexamples — the tree shape is
irrelevant to the basic constraint languages — and it converts to a real
document (``DTD^C`` plus data tree) with :func:`materialize`, so every
witness can be re-verified with the production checker.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.datamodel.tree import DataTree
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure
from repro.errors import ConstraintError


@dataclass
class AbstractElement:
    """One element: field -> value set (singletons for single-valued)."""

    values: dict[Field, frozenset[str]] = field(default_factory=dict)

    def get(self, f: Field) -> frozenset[str]:
        """The value set of field ``f`` (empty when absent)."""
        return self.values.get(f, frozenset())

    def single(self, f: Field) -> str | None:
        """The single value of ``f``, or None when not a singleton."""
        vs = self.get(f)
        return next(iter(vs)) if len(vs) == 1 else None


@dataclass
class AbstractModel:
    """Elements per type, plus which fields are set-valued."""

    elements: dict[str, list[AbstractElement]] = \
        field(default_factory=lambda: defaultdict(list))
    set_valued: set[tuple[str, Field]] = field(default_factory=set)

    def add(self, element_type: str,
            **by_name: "str | Iterable[str]") -> AbstractElement:
        """Append an element; bare strings are single values."""
        e = AbstractElement()
        for name, vs in by_name.items():
            f = Field(name)
            e.values[f] = frozenset((vs,)) if isinstance(vs, str) \
                else frozenset(vs)
        self.elements.setdefault(element_type, []).append(e)
        return e

    def ext(self, element_type: str) -> list[AbstractElement]:
        """``ext(tau)``: the elements of the given type."""
        return self.elements.get(element_type, [])

    def values_of(self, element_type: str, f: Field) -> set[str]:
        """The union of ``f`` values over the type's elements."""
        out: set[str] = set()
        for e in self.ext(element_type):
            out |= e.get(f)
        return out

    # -- satisfaction of L / L_u constraints -----------------------------------

    def satisfies(self, constraint: Constraint) -> bool:
        """Direct evaluation of the defining formula on this model."""
        c = constraint
        if isinstance(c, UnaryKey):
            return self._key(c.element, (c.field,))
        if isinstance(c, Key):
            return self._key(c.element, c.fields)
        if isinstance(c, UnaryForeignKey):
            targets = self.values_of(c.target, c.target_field)
            return all(e.single(c.field) in targets
                       for e in self.ext(c.element))
        if isinstance(c, SetValuedForeignKey):
            targets = self.values_of(c.target, c.target_field)
            return all(e.get(c.field) <= targets
                       for e in self.ext(c.element))
        if isinstance(c, ForeignKey):
            targets = {tuple(e.single(f) for f in c.target_fields)
                       for e in self.ext(c.target)}
            targets = {t for t in targets if None not in t}
            return all(
                tuple(e.single(f) for f in c.fields) in targets
                for e in self.ext(c.element))
        if isinstance(c, Inverse):
            return self._inverse_direction(
                c.element, c.key_field, c.field,
                c.target, c.target_key_field, c.target_field) and \
                self._inverse_direction(
                    c.target, c.target_key_field, c.target_field,
                    c.element, c.key_field, c.field)
        raise ConstraintError(
            f"abstract models evaluate L/L_u constraints only, got {c!r}")

    def satisfies_all(self, constraints: Iterable[Constraint]) -> bool:
        """Whether every constraint of the set holds on this model."""
        return all(self.satisfies(c) for c in constraints)

    def _key(self, element: str, fields: tuple[Field, ...]) -> bool:
        seen: set[tuple] = set()
        for e in self.ext(element):
            row = tuple(e.get(f) for f in fields)
            if any(len(vs) != 1 for vs in row):
                continue
            if row in seen:
                return False
            seen.add(row)
        return True

    def _inverse_direction(self, element, key_field, value_field,
                           other, other_key, other_value) -> bool:
        for x in self.ext(element):
            xk = x.single(key_field)
            if xk is None:
                continue
            for y in self.ext(other):
                if xk in y.get(other_value):
                    yk = y.single(other_key)
                    if yk is None or yk not in x.get(value_field):
                        return False
        return True

    # -- conversion ------------------------------------------------------------------

    def fields_by_type(self) -> dict[str, set[Field]]:
        """Every field used by each element type (incl. set-valued marks)."""
        out: dict[str, set[Field]] = defaultdict(set)
        for element_type, elements in self.elements.items():
            out[element_type]  # ensure key
            for e in elements:
                out[element_type] |= set(e.values)
        for (element_type, f) in self.set_valued:
            out[element_type].add(f)
        return dict(out)

    def describe(self) -> str:
        """A compact one-line-per-element rendering of the model."""
        lines = []
        for element_type in sorted(self.elements):
            for i, e in enumerate(self.ext(element_type)):
                vals = ", ".join(
                    f"{f}={set(vs) if len(vs) != 1 else next(iter(vs))!r}"
                    for f, vs in sorted(e.values.items(),
                                        key=lambda kv: str(kv[0])))
                lines.append(f"{element_type}#{i}: {vals}")
        return "\n".join(lines) or "(empty model)"

    def __str__(self) -> str:
        return self.describe()


def materialize(model: AbstractModel, root: str = "db"
                ) -> tuple[DTDC, DataTree]:
    """Turn an abstract model into a flat document plus matching DTD.

    The DTD's root holds each element type under Kleene star; fields
    become attributes (set-valued where the model says so).  The returned
    ``DTD^C`` carries no constraints — callers pair the document with
    whatever Σ the witness is about.
    """
    structure = DTDStructure(root)
    fields = model.fields_by_type()
    inner = ", ".join(f"{t}*" for t in sorted(fields))
    structure.define_element(root, f"({inner})" if inner else "EMPTY")
    for element_type in sorted(fields):
        structure.define_element(element_type, "EMPTY")
        for f in sorted(fields[element_type], key=str):
            structure.define_attribute(
                element_type, f.name,
                set_valued=(element_type, f) in model.set_valued)
    tree = DataTree(root)
    for element_type in sorted(fields):
        for e in model.ext(element_type):
            v = tree.create(element_type)
            tree.root.append(v)
            for f in sorted(fields[element_type], key=str):
                v.set_attribute(f.name, e.get(f))
    return DTDC(structure, ()), tree
