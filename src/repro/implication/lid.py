"""Implication of ``L_id`` constraints (§3.1, Proposition 3.1).

The paper's axiomatization ``I_id``::

    ID-FK:       tau.id ->id tau   ⊢   tau.id ⊆ tau.id
    FK-ID:       tau.l ⊆ tau'.id   ⊢   tau'.id ->id tau'
    SFK-ID:      tau.l ⊆_S tau'.id ⊢   tau'.id ->id tau'
    Inv-SFK-ID:  tau.l ⇌ tau'.l'   ⊢   tau.l ⊆_S tau'.id ,
                                       tau'.l' ⊆_S tau.id

plus two derivations the printed rule list elides but Prop 3.1's
completeness claim requires (see DESIGN.md):

    ID-Key:      tau.id ->id tau   ⊢   tau.id -> tau
                 (document-wide uniqueness implies per-type uniqueness)
    Inv-flip:    tau.l ⇌ tau'.l'   ⊢   tau'.l' ⇌ tau.l  (symmetry)

Because no rule chains (foreign keys always end at an ``.id``), the
closure stabilizes after a constant number of passes and both
implication and finite implication are decided in **linear time**; the
two problems coincide for ``L_id``.

A known degenerate corner, documented rather than "fixed": a Σ that
forces ``ext(tau)`` to be empty in every model (e.g. one IDREF attribute
with foreign keys into two *different* target types) makes every
constraint on ``tau`` hold vacuously, which the purely syntactic system
cannot see.  This consistency/implication interaction is the subject of
the authors' follow-up work (Fan & Libkin, PODS 2001/JACM 2002); the
engine reports the axiomatic answer, and
:meth:`LidEngine.vacuous_types` surfaces the degenerate types so callers
can detect the corner.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import UnaryKey
from repro.errors import LanguageMismatchError
from repro.implication.result import Derivation, ImplicationResult, given
from repro.obs import NULL_OBS

#: The reserved field denoting "the ID attribute of the type" in derived
#: reflexive foreign keys (rule ID-FK).
ID_FIELD = Field("id")

_LID_TYPES = (UnaryKey, IDConstraint, IDForeignKey, IDSetValuedForeignKey,
              IDInverse)


def _require_lid(constraints: Iterable[Constraint]) -> list[Constraint]:
    out = []
    for c in constraints:
        if not isinstance(c, _LID_TYPES):
            raise LanguageMismatchError(
                f"{c} is not an L_id constraint")
        out.append(c)
    return out


def _canonical_inverse(c: IDInverse) -> IDInverse:
    """Flip-normalize an inverse constraint (the relation is symmetric)."""
    a = (c.element, str(c.field))
    b = (c.target, str(c.target_field))
    return c if a <= b else c.flipped()


def lid_closure(sigma: Iterable[Constraint], obs=None
                ) -> dict[Constraint, Derivation]:
    """The ``I_id`` closure of Σ, with a derivation for each member.

    Runs in time linear in ``|Σ|``: every rule fires at most once per
    stated constraint and conclusions trigger only the ID rules, whose
    conclusions are terminal.  With an enabled ``obs`` handle the
    computation runs under a ``lid.closure`` span and counts every
    successful rule application (``implication_rule_applications``,
    labelled by rule name) and worklist iteration
    (``implication_closure_iterations``) — the observable side of the
    Prop 3.1 linearity claim.
    """
    obs = obs or NULL_OBS
    counting = obs.enabled
    if counting:
        c_rules = {}

        def count_rule(rule: str) -> None:
            counter = c_rules.get(rule)
            if counter is None:
                counter = c_rules[rule] = obs.counter(
                    "implication_rule_applications",
                    {"engine": "lid", "rule": rule},
                    help="successful inference-rule applications")
            counter.inc()
        c_iters = obs.counter(
            "implication_closure_iterations", {"engine": "lid"},
            help="worklist iterations of the closure computation")
    sigma = _require_lid(sigma)
    closure: dict[Constraint, Derivation] = {}

    def add(c: Constraint, d: Derivation) -> bool:
        if isinstance(c, IDInverse):
            c = _canonical_inverse(c)
        if c in closure:
            return False
        closure[c] = d
        if counting:
            count_rule(d.rule)
        return True

    with obs.span("lid.closure", sigma=len(sigma)) as span:
        work: list[Constraint] = []
        for c in sigma:
            if add(c, given(c)):
                work.append(c if not isinstance(c, IDInverse)
                            else _canonical_inverse(c))
        while work:
            if counting:
                c_iters.inc()
            c = work.pop()
            d = closure[_canonical_inverse(c)
                        if isinstance(c, IDInverse) else c]
            new: list[tuple[Constraint, Derivation]] = []
            if isinstance(c, IDInverse):
                fk1, fk2 = c.implied_foreign_keys()
                new.append((fk1, Derivation(str(fk1), "Inv-SFK-ID", (d,))))
                new.append((fk2, Derivation(str(fk2), "Inv-SFK-ID", (d,))))
            elif isinstance(c, IDForeignKey):
                target = c.implied_id()
                new.append((target, Derivation(str(target), "FK-ID", (d,))))
            elif isinstance(c, IDSetValuedForeignKey):
                target = c.implied_id()
                new.append((target, Derivation(str(target), "SFK-ID", (d,))))
            elif isinstance(c, IDConstraint):
                refl = IDForeignKey(c.element, ID_FIELD, c.element)
                new.append((refl, Derivation(str(refl), "ID-FK", (d,))))
                key = UnaryKey(c.element, ID_FIELD)
                new.append((key, Derivation(str(key), "ID-Key", (d,))))
            for constraint, derivation in new:
                if add(constraint, derivation):
                    work.append(constraint)
        if counting:
            span.set(closure=len(closure))
    return closure


class LidEngine:
    """Decider for (finite) implication of ``L_id`` constraints.

    For ``L_id`` the two problems coincide (Prop 3.1), so a single
    :meth:`implies` answers both; :meth:`finitely_implies` is an alias
    kept for interface symmetry with the other engines.
    """

    def __init__(self, sigma: Iterable[Constraint], obs=None):
        self.sigma = _require_lid(sigma)
        self.obs = obs = obs or NULL_OBS
        self.closure = lid_closure(self.sigma, obs=obs)

    def implies(self, phi: Constraint) -> ImplicationResult:
        """Decide ``Σ ⊨ φ`` (axiomatic, per ``I_id``)."""
        (phi,) = _require_lid((phi,))
        key = _canonical_inverse(phi) if isinstance(phi, IDInverse) else phi
        derivation = self.closure.get(key)
        if derivation is not None:
            return ImplicationResult(True, derivation=derivation)
        return ImplicationResult(
            False, reason=f"{phi} is not in the I_id closure of Sigma")

    def finitely_implies(self, phi: Constraint) -> ImplicationResult:
        """Decide ``Σ ⊨_f φ`` — identical to :meth:`implies` for L_id."""
        return self.implies(phi)

    def derived_constraints(self) -> list[Constraint]:
        """Every constraint in the closure (Σ plus derived), stable order."""
        return sorted(self.closure, key=str)

    def vacuous_types(self) -> set[str]:
        """Element types whose extension is empty in *every* model of Σ.

        These arise when a single single-valued IDREF attribute carries
        foreign keys into two different target types: document-wide ID
        uniqueness makes the targets' ID sets disjoint, so no element of
        the source type can exist.  On such types the axiomatic answer
        "not implied" may disagree with the (vacuously true) semantic
        one; see the module docstring.
        """
        targets: dict[tuple[str, Field], set[str]] = defaultdict(set)
        for c in self.closure:
            if isinstance(c, IDForeignKey):
                targets[(c.element, c.field)].add(c.target)
        vacuous = {element for (element, _field), ts in targets.items()
                   if len(ts) > 1}
        # Emptiness propagates: a type whose mandatory reference can
        # never be satisfied is itself empty only through structural
        # reasoning (content models), which Σ alone does not determine;
        # we therefore report only the directly-degenerate types.
        return vacuous
