"""Model search for (non-)implication of ``L_u`` constraints.

Two searchers over :class:`~repro.implication.models.AbstractModel`:

- :func:`exhaustive_counterexample` — enumerate *all* models up to the
  given bounds and return the first that satisfies Σ and violates φ.
  Exponential, meant for tiny bounds; it is the ground truth the E14
  ablation checks the cycle-rule decider against (finite implication
  restricted to models within the bounds).
- :func:`random_counterexample` — seeded random sampling, useful as a
  cheap refutation pass on larger instances.

Both return ``None`` when no counterexample is found within the budget —
which for the exhaustive searcher means "Σ finitely implies φ over all
models within the bounds", a sound *lower* bound on real finite
implication.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey,
)
from repro.implication.lu import _Arities, _require_lu
from repro.implication.models import AbstractElement, AbstractModel


def _signature(constraints: Iterable[Constraint]
               ) -> tuple[list[str], dict[str, list[Field]],
                          dict[str, list[Field]]]:
    """Types, single-valued fields and set-valued fields mentioned."""
    constraints = _require_lu(constraints)
    arities = _Arities()
    arities.scan(constraints)
    types: set[str] = set()
    for c in constraints:
        types.add(c.element)
        if isinstance(c, (UnaryForeignKey, SetValuedForeignKey, Inverse)):
            types.add(c.target)
    single: dict[str, list[Field]] = {t: [] for t in types}
    setv: dict[str, list[Field]] = {t: [] for t in types}
    for (t, f) in sorted(arities.single, key=lambda n: (n[0], str(n[1]))):
        single.setdefault(t, []).append(f)
    for (t, f) in sorted(arities.set_valued,
                         key=lambda n: (n[0], str(n[1]))):
        setv.setdefault(t, []).append(f)
    return sorted(types), single, setv


def _element_configs(single: list[Field], setv: list[Field],
                     domain: tuple[str, ...]):
    """All value assignments for one element over the domain."""
    subsets = list(
        frozenset(c) for r in range(len(domain) + 1)
        for c in itertools.combinations(domain, r))
    for singles in itertools.product(domain, repeat=len(single)):
        for sets in itertools.product(subsets, repeat=len(setv)):
            e = AbstractElement()
            for f, v in zip(single, singles):
                e.values[f] = frozenset((v,))
            for f, vs in zip(setv, sets):
                e.values[f] = vs
            yield e


def exhaustive_counterexample(sigma: Iterable[Constraint],
                              phi: Constraint,
                              max_elements: int = 2,
                              domain_size: int = 2
                              ) -> AbstractModel | None:
    """Exhaustively search for a finite model of Σ violating φ.

    Bounds: at most ``max_elements`` elements per type, values drawn
    from a domain of ``domain_size`` constants.  Keep both tiny — the
    space is doubly exponential in the field counts.
    """
    sigma = list(_require_lu(sigma))
    types, single, setv = _signature(sigma + [phi])
    domain = tuple(f"v{i}" for i in range(domain_size))
    per_type_options: list[list[list[AbstractElement]]] = []
    for t in types:
        configs = list(_element_configs(single.get(t, []),
                                        setv.get(t, []), domain))
        options: list[list[AbstractElement]] = [[]]
        for n in range(1, max_elements + 1):
            options.extend(
                list(combo) for combo in
                itertools.combinations_with_replacement(configs, n))
        per_type_options.append(options)
    set_marks = {(t, f) for t in types for f in setv.get(t, [])}
    for assignment in itertools.product(*per_type_options):
        model = AbstractModel()
        model.set_valued |= set_marks
        for t, elements in zip(types, assignment):
            model.elements[t] = [AbstractElement(dict(e.values))
                                 for e in elements]
        if model.satisfies_all(sigma) and not model.satisfies(phi):
            return model
    return None


def random_counterexample(sigma: Iterable[Constraint], phi: Constraint,
                          trials: int = 2000, max_elements: int = 3,
                          domain_size: int = 3,
                          seed: int = 0) -> AbstractModel | None:
    """Randomized counterexample search (seeded, reproducible)."""
    sigma = list(_require_lu(sigma))
    types, single, setv = _signature(sigma + [phi])
    domain = tuple(f"v{i}" for i in range(domain_size))
    rng = random.Random(seed)
    set_marks = {(t, f) for t in types for f in setv.get(t, [])}
    for _trial in range(trials):
        model = AbstractModel()
        model.set_valued |= set_marks
        for t in types:
            for _i in range(rng.randint(0, max_elements)):
                e = AbstractElement()
                for f in single.get(t, []):
                    e.values[f] = frozenset((rng.choice(domain),))
                for f in setv.get(t, []):
                    e.values[f] = frozenset(
                        v for v in domain if rng.random() < 0.4)
                model.elements.setdefault(t, []).append(e)
        if model.satisfies_all(sigma) and not model.satisfies(phi):
            return model
    return None
