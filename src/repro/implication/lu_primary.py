"""``L_u`` implication under the primary-key restriction (§3.2, Thm 3.4).

The restriction (quoting the paper): for any element type ``tau`` there
is at most one attribute ``l`` with ``tau.l -> tau``, elements of ``tau``
may only be referred to through that attribute, and consequently one
cannot have both ``tau1.l1 ⊆ tau.l`` and ``tau2.l2 ⊆ tau.l'`` with
``l ≠ l'``.

Under the restriction the cycle rules can never fire (a cycle would need
two distinct key attributes on some type along the way), so ``I_u`` is
complete for *both* implication and finite implication (Theorem 3.4) —
a departure from the unrestricted situation of Cor 3.3, and the XML
analogue of Corollary 3.5 for relational databases.

:class:`LuPrimaryEngine` validates the restriction over Σ ∪ {φ} (raising
:class:`~repro.errors.PrimaryKeyRestrictionError` when violated) and
then delegates both questions to the unrestricted ``I_u`` decider.  The
E6 experiment checks empirically that the finite (cycle-rule) decider
agrees with ``I_u`` on every restriction-respecting instance.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.errors import PrimaryKeyRestrictionError
from repro.implication.lu import LuEngine, _require_lu
from repro.implication.result import ImplicationResult


def check_primary_restriction(constraints: Iterable[Constraint]) -> None:
    """Raise unless the constraint set satisfies the primary-key
    restriction of §3.2."""
    constraints = _require_lu(constraints)
    keys: dict[str, set[Field]] = defaultdict(set)
    referenced: dict[str, set[Field]] = defaultdict(set)
    for c in constraints:
        if isinstance(c, UnaryKey):
            keys[c.element].add(c.field)
        elif isinstance(c, (UnaryForeignKey, SetValuedForeignKey)):
            keys[c.target].add(c.target_field)
            referenced[c.target].add(c.target_field)
        elif isinstance(c, Inverse):
            keys[c.element].add(c.key_field)
            keys[c.target].add(c.target_key_field)
            referenced[c.element].add(c.key_field)
            referenced[c.target].add(c.target_key_field)
    for element, fields in keys.items():
        if len(fields) > 1:
            names = ", ".join(sorted(str(f) for f in fields))
            raise PrimaryKeyRestrictionError(
                f"element type {element!r} has {len(fields)} key "
                f"attributes ({names}); the primary-key restriction "
                "allows at most one")
    for element, fields in referenced.items():
        if len(fields) > 1:
            names = ", ".join(sorted(str(f) for f in fields))
            raise PrimaryKeyRestrictionError(
                f"element type {element!r} is referenced through "
                f"multiple attributes ({names})")


class LuPrimaryEngine:
    """``L_u`` decider specialized to the primary-key restriction.

    Implication and finite implication coincide here (Theorem 3.4), so
    both methods return the ``I_u`` answer.  The underlying unrestricted
    engine is exposed as :attr:`base` for cross-validation.
    """

    def __init__(self, sigma: Iterable[Constraint], obs=None):
        self.sigma = _require_lu(sigma)
        check_primary_restriction(self.sigma)
        self.base = LuEngine(self.sigma, obs=obs)
        self.obs = self.base.obs

    def _check_query(self, phi: Constraint) -> None:
        check_primary_restriction(self.sigma + [phi])

    def implies(self, phi: Constraint) -> ImplicationResult:
        """Decide ``Σ ⊨ φ``; raises if Σ ∪ {φ} breaks the restriction."""
        self._check_query(phi)
        return self.base.implies(phi)

    def finitely_implies(self, phi: Constraint) -> ImplicationResult:
        """Decide ``Σ ⊨_f φ`` — by Theorem 3.4 this equals ``Σ ⊨ φ``."""
        self._check_query(phi)
        return self.base.implies(phi)
