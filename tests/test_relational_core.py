"""Tests for the relational substrate: schemas, FDs, INDs."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    FD, IND, Database, Instance, RelationSchema, fd_closure, fd_implies,
    ind_implies,
)
from repro.relational.fd import minimal_keys


class TestSchema:
    def test_relation_validation(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("a", "a"))
        with pytest.raises(SchemaError):
            RelationSchema("r", ())
        with pytest.raises(SchemaError):
            RelationSchema("", ("a",))

    def test_positions(self):
        r = RelationSchema("r", ("a", "b", "c"))
        assert r.positions(("c", "a")) == (2, 0)
        with pytest.raises(SchemaError):
            r.positions(("z",))

    def test_database(self):
        db = Database([RelationSchema("r", ("a",))])
        assert db.has_relation("r")
        with pytest.raises(SchemaError):
            db.add(RelationSchema("r", ("b",)))
        with pytest.raises(SchemaError):
            db.relation("zzz")

    def test_instance_rows(self):
        db = Database([RelationSchema("r", ("a", "b"))])
        inst = Instance(db)
        inst.add_row("r", ("1", "2"))
        inst.add_row("r", {"b": "4", "a": "3"})
        assert inst.relation_rows("r") == {("1", "2"), ("3", "4")}
        assert inst.project("r", ("b",)) == {("2",), ("4",)}
        assert inst.size() == 2
        with pytest.raises(SchemaError):
            inst.add_row("r", ("only-one",))


class TestFDs:
    def fds(self):
        return [
            FD("r", frozenset("a"), frozenset("b")),
            FD("r", frozenset("b"), frozenset("c")),
            FD("r", frozenset(("c", "d")), frozenset("e")),
        ]

    def test_closure(self):
        assert fd_closure(("a",), self.fds(), "r") == \
            frozenset(("a", "b", "c"))
        assert fd_closure(("a", "d"), self.fds(), "r") == \
            frozenset(("a", "b", "c", "d", "e"))

    def test_implies_transitivity(self):
        assert fd_implies(self.fds(), FD("r", frozenset("a"),
                                         frozenset("c")))
        assert not fd_implies(self.fds(), FD("r", frozenset("c"),
                                             frozenset("a")))

    def test_implies_reflexivity_and_augmentation(self):
        assert fd_implies([], FD("r", frozenset(("a", "b")),
                                 frozenset("a")))
        assert fd_implies(self.fds(), FD("r", frozenset(("a", "x")),
                                         frozenset(("b", "x"))))

    def test_relations_are_scoped(self):
        assert not fd_implies(self.fds(), FD("other", frozenset("a"),
                                             frozenset("b")))

    def test_minimal_keys(self):
        keys = minimal_keys(("a", "b", "c", "d", "e"), self.fds(), "r")
        assert frozenset(("a", "d")) in keys
        assert all(not (k < frozenset(("a", "d"))) for k in keys)

    def test_empty_rhs_rejected(self):
        with pytest.raises(ValueError):
            FD("r", frozenset("a"), frozenset())


class TestINDs:
    def test_validation(self):
        with pytest.raises(ValueError):
            IND("a", ("x", "y"), "b", ("u",))
        with pytest.raises(ValueError):
            IND("a", (), "b", ())
        with pytest.raises(ValueError):
            IND("a", ("x", "x"), "b", ("u", "v"))

    def test_reflexivity(self):
        assert ind_implies([], IND("r", ("a", "b"), "r", ("a", "b")))

    def test_projection_and_permutation(self):
        stated = [IND("a", ("x", "y", "z"), "b", ("u", "v", "w"))]
        assert ind_implies(stated, IND("a", ("y",), "b", ("v",)))
        assert ind_implies(stated, IND("a", ("z", "x"), "b", ("w", "u")))
        assert not ind_implies(stated, IND("a", ("x",), "b", ("v",)))

    def test_transitivity(self):
        stated = [IND("a", ("x",), "b", ("u",)),
                  IND("b", ("u",), "c", ("s",))]
        assert ind_implies(stated, IND("a", ("x",), "c", ("s",)))
        assert not ind_implies(stated, IND("c", ("s",), "a", ("x",)))

    def test_transitivity_through_projection(self):
        stated = [IND("a", ("x", "y"), "b", ("u", "v")),
                  IND("b", ("v",), "c", ("s",))]
        assert ind_implies(stated, IND("a", ("y",), "c", ("s",)))
