"""Tests for general L: undecidability machinery (§3.3, Thm 3.6,
Cor 3.7) — sound prover, chase refuter, honest UNKNOWN."""

import pytest

from repro.constraints import ForeignKey, Key, UnaryKey, attr
from repro.errors import UndecidableProblemError
from repro.implication.l_general import (
    LGeneralEngine, VID, fd_ind_to_l, l_to_fd_ind,
)
from repro.relational.chase import ChaseOutcome
from repro.relational.fd import FD
from repro.relational.ind import IND


def lifted_divergence():
    """The Cor 3.3 separator lifted to L: two keys + one FK on one type."""
    sigma = [Key("tau", ("a",)), Key("tau", ("b",)),
             ForeignKey("tau", ("a",), "tau", ("b",))]
    phi = ForeignKey("tau", ("b",), "tau", ("a",))
    return sigma, phi


class TestSoundProver:
    def test_proves_given_and_trans(self):
        sigma = [Key("b", ("k",)), Key("c", ("m",)),
                 ForeignKey("a", ("x",), "b", ("k",)),
                 ForeignKey("b", ("k",), "c", ("m",))]
        engine = LGeneralEngine(sigma)
        assert engine.prove(ForeignKey("a", ("x",), "c", ("m",)))
        assert engine.prove(Key("c", ("m",)))

    def test_multiple_keys_per_type_allowed(self):
        sigma, _phi = lifted_divergence()
        engine = LGeneralEngine(sigma)  # no restriction error
        assert engine.prove(Key("tau", ("a",)))
        assert engine.prove(Key("tau", ("b",)))

    def test_key_augmentation(self):
        engine = LGeneralEngine([Key("r", ("a",))])
        assert engine.prove(Key("r", ("a", "b")))

    def test_incompleteness_exhibit(self):
        """Σ ⊨_f φ (cycle argument) but the sound rules cannot derive φ
        — the reason no I_p-style axiomatization covers general L."""
        sigma, phi = lifted_divergence()
        engine = LGeneralEngine(sigma)
        assert not engine.prove(phi)


class TestChase:
    def test_refutes_with_finite_model(self):
        sigma = [Key("b", ("k",)), ForeignKey("a", ("x",), "b", ("k",))]
        engine = LGeneralEngine(sigma)
        result = engine.refute(ForeignKey("b", ("k",), "a", ("x",)))
        assert result.outcome is ChaseOutcome.NOT_IMPLIED
        assert result.model is not None
        # The counterexample is a genuine relational instance.
        assert result.model.size() >= 1

    def test_establishes_goal(self):
        sigma = [Key("b", ("k",)), Key("c", ("m",)),
                 ForeignKey("a", ("x",), "b", ("k",)),
                 ForeignKey("b", ("k",), "c", ("m",))]
        engine = LGeneralEngine(sigma)
        result = engine.refute(ForeignKey("a", ("x",), "c", ("m",)))
        assert result.outcome is ChaseOutcome.IMPLIED

    def test_key_goal_via_fd_chase(self):
        # X -> vid composition: key(a over x) given key propagation:
        # a[x] sub b[k], b.k key, plus a.x key stated elsewhere.
        sigma = [Key("a", ("x",))]
        engine = LGeneralEngine(sigma)
        assert engine.refute(Key("a", ("x",))).outcome is \
            ChaseOutcome.IMPLIED
        result = engine.refute(Key("a", ("y",)))
        assert result.outcome is ChaseOutcome.NOT_IMPLIED

    def test_divergent_instance_hits_budget(self):
        """The lifted divergence makes the chase run forever: the honest
        outcome is UNKNOWN (Theorem 3.6 operationally)."""
        sigma, phi = lifted_divergence()
        engine = LGeneralEngine(sigma)
        result = engine.refute(phi, max_steps=60, max_rows=500)
        assert result.outcome is ChaseOutcome.UNKNOWN

    def test_decide_modes(self):
        sigma, phi = lifted_divergence()
        engine = LGeneralEngine(sigma)
        soft = engine.decide(phi, max_steps=40, max_rows=300)
        assert not soft
        assert soft.details.get("outcome") == "unknown"
        with pytest.raises(UndecidableProblemError):
            engine.decide(phi, max_steps=40, max_rows=300, strict=True)


class TestTranslations:
    def test_l_to_fd_ind_shapes(self):
        sigma, phi = lifted_divergence()
        database, fds, inds = l_to_fd_ind(sigma, scope=(phi,))
        rel = database.relation("tau")
        assert VID in rel.attributes
        assert {"a", "b"} <= set(rel.attributes)
        # vid -> all, a -> vid, b -> vid.
        assert len(fds) == 3
        assert len(inds) == 1

    def test_fd_ind_to_l_roundtrip(self):
        fds = [FD("b", frozenset(("k",)), frozenset(("k", "z")))]
        inds = [IND("a", ("x",), "b", ("k",))]
        out = fd_ind_to_l(fds, inds, {"b": ("k", "z"), "a": ("x",)})
        assert Key("b", ("k",)) in out
        assert ForeignKey("a", ("x",), "b", ("k",)) in out

    def test_fd_ind_to_l_rejects_non_keys(self):
        fds = [FD("b", frozenset(("k",)), frozenset(("z",)))]
        with pytest.raises(ValueError):
            fd_ind_to_l(fds, [], {"b": ("k", "z", "w")})
        inds = [IND("a", ("x",), "b", ("z",))]
        with pytest.raises(ValueError):
            fd_ind_to_l([], inds, {"b": ("k", "z"), "a": ("x",)})

    def test_unary_lifting(self):
        engine = LGeneralEngine([UnaryKey("a", attr("x"))])
        assert engine.prove(Key("a", ("x",)))
