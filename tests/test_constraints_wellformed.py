"""Unit tests for constraint well-formedness against DTD structures."""

import pytest

from repro.constraints import (
    ForeignKey, IDConstraint, IDForeignKey, IDInverse,
    IDSetValuedForeignKey, Inverse, Key, Language, SetValuedForeignKey,
    UnaryForeignKey, UnaryKey, attr, elem, well_formed,
)
from repro.constraints.wellformed import (
    language_of, require_well_formed, well_formed_problems,
)
from repro.dtd import DTDStructure
from repro.errors import ConstraintError


def structure() -> DTDStructure:
    s = DTDStructure("db")
    s.define_element("db", "(person*, dept*)")
    s.define_element("person", "(name, address)")
    s.define_element("dept", "(dname)")
    s.define_element("name", "(#PCDATA)")
    s.define_element("address", "(#PCDATA)")
    s.define_element("dname", "(#PCDATA)")
    s.define_attribute("person", "oid", kind="ID")
    s.define_attribute("person", "in_dept", set_valued=True, kind="IDREF")
    s.define_attribute("person", "ssn")
    s.define_attribute("dept", "oid", kind="ID")
    s.define_attribute("dept", "manager", kind="IDREF")
    s.define_attribute("dept", "has_staff", set_valued=True, kind="IDREF")
    s.define_attribute("dept", "code")
    return s


def ok(constraints):
    return well_formed(constraints, structure())


class TestFieldChecks:
    def test_valid_sigma_o(self):
        sigma = [
            IDConstraint("person"), IDConstraint("dept"),
            UnaryKey("person", elem("name")),
            UnaryKey("dept", elem("dname")),
            IDSetValuedForeignKey("person", attr("in_dept"), "dept"),
            IDForeignKey("dept", attr("manager"), "person"),
            IDSetValuedForeignKey("dept", attr("has_staff"), "person"),
            IDInverse("dept", attr("has_staff"), "person",
                      attr("in_dept")),
        ]
        assert ok(sigma) == []

    def test_undeclared_element(self):
        assert ok([UnaryKey("ghost", attr("x"))])

    def test_undeclared_attribute(self):
        problems = ok([UnaryKey("person", attr("ghost"))])
        assert any("undeclared attribute" in p for p in problems)

    def test_key_over_set_valued_rejected(self):
        problems = ok([UnaryKey("person", attr("in_dept"))])
        assert any("single-valued" in p for p in problems)

    def test_key_over_non_unique_subelement_rejected(self):
        s = structure()
        s.define_element("person", "(name*, address)")
        problems = well_formed([UnaryKey("person", elem("name"))], s)
        assert any("unique sub-element" in p for p in problems)

    def test_sfk_needs_set_valued_source(self):
        problems = ok([
            UnaryKey("dept", attr("code")),
            SetValuedForeignKey("person", attr("ssn"), "dept",
                                attr("code"))])
        assert any("set-valued" in p for p in problems)


class TestTargetKeyRequirement:
    def test_fk_without_stated_key(self):
        problems = ok([UnaryForeignKey("person", attr("ssn"), "dept",
                                       attr("code"))])
        assert any("not a stated key" in p for p in problems)

    def test_fk_with_stated_key(self):
        assert ok([
            UnaryKey("dept", attr("code")),
            UnaryForeignKey("person", attr("ssn"), "dept",
                            attr("code"))]) == []

    def test_multi_fk_key_check_is_set_based(self):
        s = DTDStructure("db")
        s.define_element("db", "(a*, b*)")
        s.define_element("a", "EMPTY")
        s.define_element("b", "EMPTY")
        for el in ("a", "b"):
            s.define_attribute(el, "x")
            s.define_attribute(el, "y")
        sigma = [Key("b", (attr("x"), attr("y"))),
                 ForeignKey("a", ("y", "x"), "b", ("y", "x"))]
        assert well_formed(sigma, s) == []


class TestLidSideConditions:
    def test_id_needs_declared_id_attribute(self):
        s = structure()
        problems = well_formed([IDConstraint("name")], s)
        assert problems  # 'name' element has no ID attribute

    def test_fk_needs_idref_kind(self):
        problems = ok([IDConstraint("dept"),
                       IDForeignKey("person", attr("ssn"), "dept")])
        assert any("IDREF" in p for p in problems)

    def test_fk_needs_target_id_constraint(self):
        problems = ok([IDForeignKey("dept", attr("manager"), "person")])
        assert any("no stated ID constraint" in p for p in problems)

    def test_inverse_needs_everything(self):
        problems = ok([IDInverse("dept", attr("has_staff"), "person",
                                 attr("in_dept"))])
        assert len(problems) == 2  # two missing ID constraints

    def test_require_raises(self):
        with pytest.raises(ConstraintError):
            require_well_formed([UnaryKey("person", attr("ghost"))],
                                structure())


class TestStructuredProblems:
    def test_problems_carry_codes_and_provenance(self):
        problems = well_formed_problems(
            [UnaryKey("person", attr("ghost"))], structure())
        (p,) = problems
        assert p.code == "XIC202"
        assert p.element == "person"
        assert p.constraint == "person.ghost -> person"
        # str() matches the legacy message list exactly.
        assert str(p) in ok([UnaryKey("person", attr("ghost"))])

    def test_code_taxonomy(self):
        cases = [
            ([UnaryKey("ghost", attr("x"))], "XIC201"),
            ([UnaryKey("person", attr("in_dept"))], "XIC203"),
            ([UnaryForeignKey("person", attr("ssn"), "dept",
                              attr("code"))], "XIC204"),
            ([IDForeignKey("dept", attr("manager"), "person")], "XIC205"),
        ]
        for sigma, expected in cases:
            codes = {p.code for p in well_formed_problems(sigma,
                                                          structure())}
            assert expected in codes, (sigma, codes)


class TestCrossLanguageTargets:
    """The fixed silent-acceptance bug: an FK whose target key is
    stated only in a different constraint language used to pass
    ``require_well_formed`` and explode later at ``.language``."""

    def mixed_sigma(self):
        # L_u half: a unary key plus a set-valued FK into it.
        # L_id half: an ID constraint plus an ID FK into person.
        return [
            UnaryKey("dept", attr("code")),
            SetValuedForeignKey("dept", attr("has_staff"), "dept",
                                attr("code")),
            IDConstraint("person"),
            IDForeignKey("dept", attr("manager"), "person"),
        ]

    def test_mixed_language_fk_reported(self):
        problems = well_formed_problems(self.mixed_sigma(), structure())
        xic206 = [p for p in problems if p.code == "XIC206"]
        assert len(xic206) == 1
        assert xic206[0].constraint == "dept.manager sub person.id"
        assert "mixes constraint languages" in xic206[0].message

    def test_mixed_language_fk_no_longer_silently_accepted(self):
        with pytest.raises(ConstraintError,
                           match="mixes constraint languages"):
            require_well_formed(self.mixed_sigma(), structure())

    def test_id_covered_target_gets_explicit_hint(self):
        # L_u FK referencing person's ID attribute, covered only by the
        # L_id ID constraint -- XIC204 plus the explicit XIC206 hint.
        sigma = [IDConstraint("person"),
                 UnaryForeignKey("dept", attr("code"), "person",
                                 attr("oid"))]
        problems = well_formed_problems(sigma, structure())
        codes = {p.code for p in problems}
        assert {"XIC204", "XIC206"} <= codes
        hint = next(p for p in problems if p.code == "XIC206")
        assert "state person.oid -> person explicitly" in hint.message

    def test_single_language_sigma_unaffected(self):
        sigma = [IDConstraint("person"), IDConstraint("dept"),
                 IDForeignKey("dept", attr("manager"), "person")]
        assert well_formed_problems(sigma, structure()) == []

    def test_lid_inverse_targets_both_sides(self):
        sigma = [IDConstraint("person"), IDConstraint("dept"),
                 IDInverse("dept", attr("has_staff"), "person",
                           attr("in_dept")),
                 Key("dept", (attr("oid"), attr("code")))]  # mixes in L
        problems = well_formed_problems(sigma, structure())
        xic206 = [p for p in problems if p.code == "XIC206"]
        assert len(xic206) == 2  # one per inverse endpoint


class TestLanguageOf:
    def test_pure_languages(self):
        assert language_of([UnaryKey("a", attr("x"))]) == \
            Language.L | Language.LU | Language.LID
        assert language_of([Key("a", (attr("x"), attr("y")))]) == \
            Language.L
        assert language_of([IDConstraint("a")]) == Language.LID

    def test_mixture_narrows(self):
        lang = language_of([UnaryKey("a", attr("x")),
                            SetValuedForeignKey("a", attr("s"), "b",
                                                attr("k"))])
        assert lang == Language.LU

    def test_impossible_mixture_raises(self):
        with pytest.raises(ConstraintError):
            language_of([IDConstraint("a"),
                         Key("b", (attr("x"), attr("y")))])
