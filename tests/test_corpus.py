"""Tests for :mod:`repro.corpus` — parallel corpus validation and the
content-addressed result cache."""

import json
import os

import pytest

from repro import Validator
from repro.corpus import (
    CorpusValidator, DocumentVerdict, ResultCache, result_key,
    result_key_bytes, schema_fingerprint,
)
from repro.dtd.validate import ValidationReport
from repro.obs import Observability
from repro.workloads import book_document, book_dtdc, random_corpus
from repro.xmlio import serialize


@pytest.fixture
def library():
    """A 12-document corpus, 1/4 invalid, as (dtd, trees)."""
    return random_corpus(n_docs=12, invalid_fraction=0.25, seed=7)


# -- the cache -------------------------------------------------------------


class TestResultCache:
    def test_fingerprint_distinguishes_schemas(self, library):
        dtd, _docs = library
        assert schema_fingerprint(dtd) != schema_fingerprint(book_dtdc())
        assert schema_fingerprint(dtd) == schema_fingerprint(dtd)

    def test_key_depends_on_text_and_schema(self, library):
        dtd, _docs = library
        fp = schema_fingerprint(dtd)
        assert result_key("<a/>", fp) == result_key("<a/>", fp)
        assert result_key("<a/>", fp) != result_key("<b/>", fp)
        assert result_key("<a/>", fp) \
            != result_key("<a/>", schema_fingerprint(book_dtdc()))

    def test_put_get_round_trip(self):
        cache = ResultCache()
        report = ValidationReport()
        cache.put("k1", report)
        got = cache.get("k1")
        assert got is not None and got.ok
        assert got is not report  # a fresh object per get

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        for key in ("a", "b", "c"):
            cache.put(key, ValidationReport())
        assert cache.get("a") is None  # evicted, capacity 2
        assert cache.get("b") is not None
        assert cache.get("c") is not None

    def test_disk_store_survives_new_instance(self, tmp_path):
        ResultCache(directory=tmp_path).put("deadbeef", ValidationReport())
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get("deadbeef") is not None
        assert fresh.stats()["disk_hits"] == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("deadbeef", ValidationReport())
        (path,) = list(tmp_path.rglob("*.json"))
        path.write_text("{not json")
        assert ResultCache(directory=tmp_path).get("deadbeef") is None

    def test_raw_byte_key_matches_text_key(self, library):
        """Path inputs are keyed on raw bytes; for a plain LF file that
        is the same key the text spelling gets, so the cache is shared
        between path and (doc_id, text) inputs."""
        dtd, _docs = library
        fp = schema_fingerprint(dtd)
        assert result_key_bytes(b"<a/>\n", fp) == result_key("<a/>\n", fp)

    def test_raw_byte_key_is_stable_and_newline_sensitive(self, library):
        dtd, _docs = library
        fp = schema_fingerprint(dtd)
        assert result_key_bytes(b"<a/>\r\n", fp) \
            == result_key_bytes(b"<a/>\r\n", fp)
        # CRLF and LF are distinct byte streams, so distinct keys: the
        # key must never pass through text-mode newline translation.
        assert result_key_bytes(b"<a/>\r\n", fp) \
            != result_key_bytes(b"<a/>\n", fp)

    def test_path_inputs_keyed_on_disk_bytes(self, library, tmp_path):
        """The coordinator hashes exactly the bytes on disk — a CRLF
        and an LF spelling of one document get different keys but (as
        the parser normalizes nothing here) compatible verdicts."""
        dtd, docs = library
        text = serialize(docs[0])
        lf = tmp_path / "lf.xml"
        lf.write_bytes(text.encode("utf-8"))
        report = CorpusValidator(dtd).validate([str(lf)])
        fp = schema_fingerprint(dtd)
        assert report.verdicts[0].key \
            == result_key_bytes(lf.read_bytes(), fp)
        # and the in-memory tree spelling of the same document agrees
        tree_report = CorpusValidator(dtd).validate([docs[0]])
        assert tree_report.verdicts[0].key == report.verdicts[0].key

    def test_empty_cache_is_still_consulted(self, library):
        """Regression: ResultCache defines __len__, so an *empty* cache
        is falsy — corpus code must test ``is not None``, not truth."""
        dtd, docs = library
        cache = ResultCache()
        CorpusValidator(dtd, cache=cache).validate(docs)
        assert cache.stats()["misses"] == len(docs)


# -- the validator ---------------------------------------------------------


class TestCorpusValidator:
    def test_verdicts_in_input_order(self, library):
        dtd, docs = library
        report = CorpusValidator(dtd).validate(docs)
        assert [v.doc_id for v in report] \
            == [f"doc[{i}]" for i in range(len(docs))]

    def test_counts(self, library):
        dtd, docs = library
        report = CorpusValidator(dtd).validate(docs)
        assert len(report) == 12
        assert report.n_invalid == 3
        assert report.n_valid == 9
        assert report.n_errors == 0
        assert not report.ok
        assert report.violation_total >= 3
        assert sum(report.violations_by_code().values()) \
            == report.violation_total

    def test_jobs_equivalence(self, library):
        dtd, docs = library
        texts = [(f"d{i}", serialize(doc)) for i, doc in enumerate(docs)]
        serial = CorpusValidator(dtd, jobs=1).validate(texts)
        pooled = CorpusValidator(dtd, jobs=3).validate(texts)
        assert serial.verdicts_json() == pooled.verdicts_json()

    def test_accepts_paths(self, library, tmp_path):
        dtd, docs = library
        paths = []
        for i, doc in enumerate(docs[:4]):
            path = tmp_path / f"doc{i}.xml"
            path.write_text(serialize(doc))
            paths.append(str(path))
        report = CorpusValidator(dtd).validate(paths)
        assert [v.doc_id for v in report] == paths

    def test_unreadable_document_is_an_error_verdict(self, library):
        dtd, _docs = library
        report = CorpusValidator(dtd).validate([("bad", "<not xml")])
        assert report.n_errors == 1
        assert not report.ok
        assert report.verdicts[0].error

    def test_unsupported_type_raises(self, library):
        dtd, _docs = library
        with pytest.raises(TypeError):
            CorpusValidator(dtd).validate([42])

    def test_bad_args_raise(self, library):
        dtd, _docs = library
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            CorpusValidator(dtd, jobs=-1)
        with pytest.raises(ValueError):
            CorpusValidator(dtd, chunk_size=0)
        with pytest.raises(TypeError):
            CorpusValidator("not a dtd")

    def test_jobs_zero_means_auto(self, library):
        dtd, _docs = library
        validator = CorpusValidator(dtd, jobs=0)
        assert validator.jobs == (os.cpu_count() or 1)

    def test_empty_corpus(self, library):
        dtd, _docs = library
        report = CorpusValidator(dtd).validate([])
        assert report.ok and len(report) == 0

    def test_chunk_size_heuristic(self, library):
        dtd, _docs = library
        v = CorpusValidator(dtd, jobs=4)
        assert v._chunk_size(200) == 13  # ceil(200 / 16)
        assert v._chunk_size(10000) == 32  # capped
        assert v._chunk_size(1) == 1
        assert CorpusValidator(dtd, chunk_size=5)._chunk_size(10000) == 5


class TestCorpusCaching:
    def test_warm_run_hits_for_every_doc(self, library):
        dtd, docs = library
        cache = ResultCache()
        cold = CorpusValidator(dtd, cache=cache).validate(docs)
        warm = CorpusValidator(dtd, cache=cache).validate(docs)
        assert cold.n_cached == 0
        assert warm.n_cached == len(docs)
        assert warm.verdicts_json() == cold.verdicts_json()

    def test_verdict_json_omits_provenance(self, library):
        """The byte-comparable verdict form must not leak where a
        result came from (cache vs fresh)."""
        verdict = DocumentVerdict("d", "k", True, cached=True)
        assert "cached" not in verdict.to_dict()
        assert verdict.to_dict(provenance=True)["cached"] is True

    def test_directory_cache_accepted_as_path(self, library, tmp_path):
        dtd, docs = library
        CorpusValidator(dtd, cache=str(tmp_path)).validate(docs)
        warm = CorpusValidator(dtd, cache=str(tmp_path)).validate(docs)
        assert warm.n_cached == len(docs)

    def test_schema_change_invalidates(self, library, tmp_path):
        _dtd, _docs = library
        doc = book_document()
        dtd = book_dtdc()
        CorpusValidator(dtd, cache=str(tmp_path)).validate([doc])
        other = random_corpus(n_docs=0)[0]
        report = CorpusValidator(other, cache=str(tmp_path)) \
            .validate([("d", serialize(doc))])
        assert report.n_cached == 0


class TestStreamingCorpus:
    """``stream=True`` must be observationally identical to batch —
    same verdicts, same keys, one shared cache."""

    def test_stream_matches_batch_on_trees(self, library):
        dtd, docs = library
        batch = CorpusValidator(dtd).validate(docs)
        strm = CorpusValidator(dtd, stream=True).validate(docs)
        assert batch.verdicts_json() == strm.verdicts_json()

    def test_stream_matches_batch_on_paths_pooled(self, library, tmp_path):
        dtd, docs = library
        paths = []
        for i, doc in enumerate(docs):
            path = tmp_path / f"doc{i}.xml"
            path.write_text(serialize(doc))
            paths.append(str(path))
        batch = CorpusValidator(dtd, jobs=2).validate(paths)
        strm = CorpusValidator(dtd, jobs=2, stream=True).validate(paths)
        assert batch.verdicts_json() == strm.verdicts_json()

    def test_cache_is_shared_across_modes(self, library, tmp_path):
        """A batch-warmed cache answers a streaming run (and vice
        versa): the keys are raw-bytes content addresses either way."""
        dtd, docs = library
        doc_dir = tmp_path / "docs"
        doc_dir.mkdir()
        paths = []
        for i, doc in enumerate(docs[:5]):
            path = doc_dir / f"doc{i}.xml"
            path.write_text(serialize(doc))
            paths.append(str(path))
        cache = ResultCache()
        cold = CorpusValidator(dtd, cache=cache).validate(paths)
        warm = CorpusValidator(dtd, cache=cache, stream=True) \
            .validate(paths)
        assert warm.n_cached == len(paths)
        assert warm.verdicts_json() == cold.verdicts_json()

    def test_worker_computed_keys_match_coordinator(self, library,
                                                    tmp_path):
        """Without a cache the streaming coordinator never opens the
        files; the keys the workers hash during their own read must
        still equal the coordinator-side keys a cached run computes."""
        dtd, docs = library
        paths = []
        for i, doc in enumerate(docs[:5]):
            path = tmp_path / f"doc{i}.xml"
            path.write_text(serialize(doc))
            paths.append(str(path))
        no_cache = CorpusValidator(dtd, stream=True).validate(paths)
        cached = CorpusValidator(dtd, stream=True,
                                 cache=ResultCache()).validate(paths)
        assert [v.key for v in no_cache.verdicts] \
            == [v.key for v in cached.verdicts]

    def test_malformed_document_is_an_error_verdict(self, library):
        dtd, _docs = library
        report = CorpusValidator(dtd, stream=True) \
            .validate([("bad", "<not xml")])
        assert report.n_errors == 1 and report.verdicts[0].error

    def test_facade_passes_stream_through(self, library):
        dtd, docs = library
        batch = Validator(dtd).check_corpus(docs)
        strm = Validator(dtd).check_corpus(docs, stream=True)
        assert batch.verdicts_json() == strm.verdicts_json()


class TestCorpusObservability:
    def test_worker_metrics_merge(self, library):
        dtd, docs = library
        obs = Observability()
        report = CorpusValidator(dtd, jobs=2, obs=obs).validate(docs)
        merged = {(i["name"]): i for i in obs.metrics.to_dicts()}
        assert merged["xmlio_documents_parsed"]["value"] == len(docs)
        assert merged["corpus_documents_validated"]["value"] == len(docs)
        assert report.obs is obs

    def test_facade_threads_obs(self, library):
        dtd, docs = library
        obs = Observability()
        Validator(dtd, obs=obs).check_corpus(docs)
        names = {i["name"] for i in obs.metrics.to_dicts()}
        assert "corpus_documents_validated" in names


class TestCorpusReportSerialization:
    def test_to_json_deterministic_and_parseable(self, library):
        dtd, docs = library
        report = CorpusValidator(dtd).validate(docs)
        payload = json.loads(report.to_json())
        assert payload["documents"] == len(docs)
        assert payload["ok"] is False
        assert list(payload["violations_by_code"]) \
            == sorted(payload["violations_by_code"])

    def test_str_mentions_findings(self, library):
        dtd, docs = library
        text = str(CorpusValidator(dtd).validate(docs))
        assert "12 document(s)" in text
        assert "violations by code:" in text


class TestFacade:
    def test_check_corpus_on_validator(self, library):
        dtd, docs = library
        report = Validator(dtd).check_corpus(docs, jobs=2)
        assert len(report) == len(docs)
        assert report.jobs == 2


def test_fork_pool_used_on_posix():
    """The DTDC ships to workers via Pool initargs; this only needs
    pickling, which the smoke below proves on any start method."""
    import pickle

    dtd, _docs = random_corpus(n_docs=0)
    assert pickle.loads(pickle.dumps(dtd)).describe() == dtd.describe()
    assert os.name == "posix"
