"""The codegen engine: determinism, the integrity-checked source
cache, and byte-identical reports against the streaming interpreter.

The generated module is a pure function of the schema fingerprint —
two processes (with different ``PYTHONHASHSEED``) must emit
byte-identical source, or the on-disk cache would be a lottery.  The
cache itself is self-verifying: a tampered entry must be detected by
the hash check and regenerated, never ``exec``'d.
"""

import os
import subprocess
import sys

import pytest

from repro.codegen import (
    CodegenValidator, CompileError, cache_path, compile_schema,
    generate_source, load_compiled, load_source, store_source,
)
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure
from repro.server.registry import as_handle
from repro.stream import StreamValidator
from repro.workloads.book import book_document, book_dtdc
from repro.xmlio.serializer import serialize


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Every test gets its own cache directory; nothing leaks into
    (or reads from) the developer's real ``~/.cache``."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "cg"))
    yield


def _handle():
    return as_handle(book_dtdc())


class TestDeterminism:
    def test_same_fingerprint_same_source_in_process(self):
        handle = _handle()
        one = generate_source(handle.plan, handle.fingerprint)
        two = generate_source(handle.plan, handle.fingerprint)
        assert one == two

    def test_byte_identical_across_hash_seeds(self):
        """Two interpreters with different ``PYTHONHASHSEED`` (so every
        set/dict iteration order differs) emit byte-identical source."""
        program = (
            "import hashlib\n"
            "from repro.server.registry import as_handle\n"
            "from repro.codegen import generate_source\n"
            "from repro.workloads.book import book_dtdc\n"
            "h = as_handle(book_dtdc())\n"
            "src = generate_source(h.plan, h.fingerprint)\n"
            "print(hashlib.sha256(src.encode()).hexdigest())\n")
        digests = []
        for seed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [p for p in (env.get("PYTHONPATH"),) if p]
                + [str(p) for p in sys.path if p])
            out = subprocess.run(
                [sys.executable, "-c", program], env=env,
                capture_output=True, text=True, check=True)
            digests.append(out.stdout.strip())
        assert digests[0] == digests[1]
        assert len(digests[0]) == 64


class TestSourceCache:
    def test_round_trip(self):
        handle = _handle()
        source = generate_source(handle.plan, handle.fingerprint)
        assert store_source(handle.fingerprint, source)
        assert load_source(handle.fingerprint) == source

    def test_corrupted_entry_is_a_miss_and_never_exec_d(self, tmp_path):
        handle = _handle()
        source = generate_source(handle.plan, handle.fingerprint)
        assert store_source(handle.fingerprint, source)
        path = cache_path(handle.fingerprint)
        # Tamper with the body after the (still well-formed) header:
        # the sha256 check must reject it.  The poison would raise at
        # import time if it were ever exec'd.
        with open(path, encoding="utf-8") as fh:
            header = fh.readline()
        poison = "raise AssertionError('cache poison was exec-d')\n"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(header + poison)
        assert load_source(handle.fingerprint) is None
        # compile_schema treats it as a miss, regenerates, and heals
        # the entry on disk.
        compiled = compile_schema(handle.plan, handle.fingerprint)
        assert compiled.source == source
        assert load_source(handle.fingerprint) == source

    def test_bad_header_is_a_miss(self):
        handle = _handle()
        source = generate_source(handle.plan, handle.fingerprint)
        assert store_source(handle.fingerprint, source)
        path = cache_path(handle.fingerprint)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("# not a repro-codegen header\n" + source)
        assert load_source(handle.fingerprint) is None

    def test_disabled_cache_still_compiles(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN_CACHE", "off")
        handle = _handle()
        assert cache_path(handle.fingerprint) is None
        assert not store_source(handle.fingerprint, "x = 1\n")
        compiled = compile_schema(handle.plan, handle.fingerprint)
        report = CodegenValidator(compiled).validate(
            serialize(book_document()))
        assert report.ok


class TestEquivalence:
    CASES = [
        serialize(book_document()),
        "<book/>",
        "<book><entry isbn='1'><title>t</title>"
        "<publisher>p</publisher></entry><ref to='1'/></book>",
        # duplicate key + dangling foreign key
        "<book><entry isbn='x'><title>t</title>"
        "<publisher>p</publisher></entry>"
        "<section sid='s1'><title>a</title></section>"
        "<section sid='s1'><title>b</title></section>"
        "<ref to='nope'/></book>",
        "not even xml",
        "<book><unclosed></book>",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_text_reports_byte_identical_to_stream(self, text):
        handle = _handle()
        cg = CodegenValidator(handle)
        sv = StreamValidator(handle.plan)
        try:
            expected = sv.validate_text(text).to_json()
            expected_exc = None
        except Exception as exc:  # noqa: BLE001 - parity check
            expected, expected_exc = None, (type(exc), str(exc))
        try:
            got = cg.validate_text(text).to_json()
            got_exc = None
        except Exception as exc:  # noqa: BLE001 - parity check
            got, got_exc = None, (type(exc), str(exc))
        assert got == expected
        assert got_exc == expected_exc

    def test_mmap_path_matches_text(self, tmp_path):
        handle = _handle()
        cg = CodegenValidator(handle)
        sv = StreamValidator(handle.plan)
        text = serialize(book_document())
        path = tmp_path / "doc.xml"
        path.write_text(text)
        assert cg.validate_path(str(path)).to_json() \
            == sv.validate_text(text).to_json()

    def test_empty_file(self, tmp_path):
        handle = _handle()
        cg = CodegenValidator(handle)
        path = tmp_path / "empty.xml"
        path.write_text("")
        sv = StreamValidator(handle.plan)
        try:
            expected = sv.validate_text("").to_json()
            expected_err = None
        except Exception as exc:  # noqa: BLE001 - parity check
            expected, expected_err = None, str(exc)
        try:
            got = cg.validate_path(str(path)).to_json()
            got_err = None
        except Exception as exc:  # noqa: BLE001 - parity check
            got, got_err = None, str(exc)
        assert (got, got_err) == (expected, expected_err)

    def test_non_ascii_bytes_fall_back_to_decoded_scan(self):
        handle = _handle()
        cg = CodegenValidator(handle)
        sv = StreamValidator(handle.plan)
        text = ("<book><entry isbn='é'><title>café</title>"
                "<publisher>p</publisher></entry><ref to='é'/>"
                "</book>")
        data = text.encode("utf-8")
        assert cg.validate_bytes(data).to_json() \
            == sv.validate_text(text).to_json()

    def test_load_compiled_binds_shipped_source(self):
        """The corpus-worker path: source text + plan, no generator,
        no disk cache."""
        handle = _handle()
        source = generate_source(handle.plan, handle.fingerprint)
        compiled = load_compiled(handle.fingerprint, source, handle.plan)
        text = serialize(book_document())
        assert CodegenValidator(compiled).validate(text).to_json() \
            == StreamValidator(handle.plan).validate_text(text).to_json()


class TestCompileSubset:
    def test_non_ascii_schema_raises_compile_error(self):
        s = DTDStructure("café")
        s.define_element("café", "S*")
        handle = as_handle(DTDC(s, ()))
        with pytest.raises(CompileError):
            generate_source(handle.plan, handle.fingerprint)
        assert not handle.supports_codegen()

    def test_auto_falls_back_to_stream(self):
        from repro import engines

        s = DTDStructure("café")
        s.define_element("café", "S*")
        handle = as_handle(DTDC(s, ()))
        backend = engines.create("auto", handle)
        assert backend.name == "stream"
        assert backend.validate("<café/>").ok

    def test_supported_schema_reports_codegen(self):
        handle = _handle()
        assert handle.supports_codegen()
        assert handle.engines() == ["auto", "batch", "codegen", "stream"]
