"""Unit tests for the attribute index."""

from repro.datamodel import AttributeIndex, DataTree, TreeBuilder


def build() -> DataTree:
    b = TreeBuilder("db")
    b.leaf("p", oid="p1", name="ann")
    b.leaf("p", oid="p2", name="bob")
    b.leaf("p", oid="p3", name="ann")
    b.leaf("d", oid="d1", staff=["p1", "p2"])
    return b.tree


def test_extension_in_document_order():
    index = AttributeIndex(build())
    assert [v.single("oid") for v in index.extension("p")] == \
        ["p1", "p2", "p3"]
    assert index.extension("missing") == []


def test_value_set():
    index = AttributeIndex(build())
    assert index.value_set("p", "name") == {"ann", "bob"}
    assert index.value_set("d", "staff") == {"p1", "p2"}
    assert index.value_set("p", "zzz") == set()


def test_vertices_with_value():
    index = AttributeIndex(build())
    anns = index.vertices_with_value("p", "name", "ann")
    assert [v.single("oid") for v in anns] == ["p1", "p3"]
    assert index.vertices_with_value("p", "name", "zoe") == []
    # Set-valued membership counts each owner.
    assert len(index.vertices_with_value("d", "staff", "p1")) == 1


def test_duplicate_groups():
    index = AttributeIndex(build())
    groups = index.duplicate_groups("p", ["name"])
    assert len(groups) == 1
    assert {v.single("oid") for v in groups[0]} == {"p1", "p3"}
    assert index.duplicate_groups("p", ["oid"]) == []


def test_duplicate_groups_skips_multivalued():
    tree = build()
    index = AttributeIndex(tree)
    # 'staff' is set-valued on d; key grouping over it skips the vertex.
    assert index.duplicate_groups("d", ["staff"]) == []


def test_id_owners_and_clashes():
    tree = build()
    index = AttributeIndex(tree, id_attributes={"p": "oid", "d": "oid"})
    assert len(index.id_owners["p1"]) == 1
    assert index.id_clashes() == []
    # Introduce a clash across types.
    clash = tree.create("d")
    tree.root.append(clash)
    clash.set_attribute("oid", "p1")
    index2 = AttributeIndex(tree, id_attributes={"p": "oid", "d": "oid"})
    clashes = dict(index2.id_clashes())
    assert set(clashes) == {"p1"}
    assert len(clashes["p1"]) == 2


def test_staleness():
    tree = build()
    index = AttributeIndex(tree)
    assert not index.is_stale()
    tree.root.first_child_labeled("p").set_attribute("name", "zoe")
    assert index.is_stale()
