"""Tests for DTD^C consistency analysis (the degenerate L_id corner)."""

from repro.constraints import IDConstraint, IDForeignKey, attr
from repro.dtd import DTDC, DTDStructure
from repro.dtd.consistency import (
    consistency_report, required_types, vacuous_types,
)
from repro.workloads import book_dtdc, person_dept_export


def degenerate_dtdc(a_required: bool) -> DTDC:
    """Type ``a`` has one IDREF attribute FK'd into both ``b`` and ``c``
    — ext(a) is empty in every model.  ``a_required`` controls whether
    the root's content model demands an ``a``."""
    s = DTDStructure("db")
    s.define_element("db", "(a, b*, c*)" if a_required else
                     "(a*, b*, c*)")
    s.define_element("a", "EMPTY")
    s.define_element("b", "EMPTY")
    s.define_element("c", "EMPTY")
    s.define_attribute("a", "r", kind="IDREF")
    s.define_attribute("b", "oid", kind="ID")
    s.define_attribute("c", "oid", kind="ID")
    sigma = [IDConstraint("b"), IDConstraint("c"),
             IDForeignKey("a", attr("r"), "b"),
             IDForeignKey("a", attr("r"), "c")]
    return DTDC(s, sigma)


class TestRequiredTypes:
    def test_book(self):
        req = required_types(book_dtdc().structure)
        # entry, ref, title, publisher are mandatory; author/section not.
        assert {"book", "entry", "ref", "title", "publisher"} <= req
        assert "author" not in req
        assert "section" not in req

    def test_mandatory_chain(self):
        s = DTDStructure("a")
        s.define_element("a", "(b)")
        s.define_element("b", "(c, c)")
        s.define_element("c", "EMPTY")
        assert required_types(s) == {"a", "b", "c"}

    def test_optional_via_union(self):
        s = DTDStructure("a")
        s.define_element("a", "(b | c)")
        s.define_element("b", "EMPTY")
        s.define_element("c", "EMPTY")
        assert required_types(s) == {"a"}


class TestVacuousTypes:
    def test_multi_target_degeneracy(self):
        dtd = degenerate_dtdc(a_required=False)
        assert vacuous_types(dtd) == {"a"}

    def test_emptiness_propagates_up(self):
        s = DTDStructure("db")
        s.define_element("db", "(w*, b*, c*)")
        s.define_element("w", "(a)")       # w REQUIRES an a child
        s.define_element("a", "EMPTY")
        s.define_element("b", "EMPTY")
        s.define_element("c", "EMPTY")
        s.define_attribute("a", "r", kind="IDREF")
        s.define_attribute("b", "oid", kind="ID")
        s.define_attribute("c", "oid", kind="ID")
        sigma = [IDConstraint("b"), IDConstraint("c"),
                 IDForeignKey("a", attr("r"), "b"),
                 IDForeignKey("a", attr("r"), "c")]
        dtd = DTDC(s, sigma)
        assert vacuous_types(dtd) == {"a", "w"}

    def test_clean_schemas_have_none(self, persondept):
        dtd, _doc = persondept
        assert vacuous_types(dtd) == set()
        assert vacuous_types(book_dtdc()) == set()


class TestConsistencyReport:
    def test_consistent_when_vacuous_type_is_optional(self):
        report = consistency_report(degenerate_dtdc(a_required=False))
        assert report.consistent
        assert bool(report)
        assert "a" in report.vacuous

    def test_inconsistent_when_required(self):
        report = consistency_report(degenerate_dtdc(a_required=True))
        assert not report.consistent
        # 'a' cannot exist, and the root requires one — both conflict.
        assert report.conflicts == {"a", "db"}
        assert "INCONSISTENT" in str(report)

    def test_paper_examples_consistent(self, persondept):
        dtd, _doc = persondept
        assert consistency_report(dtd).consistent
        assert consistency_report(book_dtdc()).consistent


def _degenerate_sigma():
    return [IDConstraint("b"), IDConstraint("c"),
            IDForeignKey("a", attr("r"), "b"),
            IDForeignKey("a", attr("r"), "c")]


class TestEdgeCases:
    def test_self_recursive_required_type_terminates(self):
        # 'sec' demands a 'sec' child: the fixpoint must not loop.
        s = DTDStructure("doc")
        s.define_element("doc", "(sec)")
        s.define_element("sec", "(sec)")
        assert required_types(s) == {"doc", "sec"}

    def test_mutually_recursive_optional_types(self):
        s = DTDStructure("doc")
        s.define_element("doc", "(a*)")
        s.define_element("a", "(b?)")
        s.define_element("b", "(a?)")
        assert required_types(s) == {"doc"}

    def test_empty_content_models_everywhere(self):
        s = DTDStructure("db")
        s.define_element("db", "EMPTY")
        dtd = DTDC(s, [])
        assert required_types(s) == {"db"}
        assert vacuous_types(dtd) == set()
        assert consistency_report(dtd).consistent

    def test_emptiness_propagates_through_deep_mandatory_chain(self):
        # w1 -> w2 -> w3 -> a, all mandatory: a's vacuity climbs the
        # whole chain.
        s = DTDStructure("db")
        s.define_element("db", "(w1*, b*, c*)")
        s.define_element("w1", "(w2)")
        s.define_element("w2", "(w3, w3)")
        s.define_element("w3", "(a)")
        s.define_element("a", "EMPTY")
        s.define_element("b", "EMPTY")
        s.define_element("c", "EMPTY")
        s.define_attribute("a", "r", kind="IDREF")
        s.define_attribute("b", "oid", kind="ID")
        s.define_attribute("c", "oid", kind="ID")
        dtd = DTDC(s, _degenerate_sigma())
        assert vacuous_types(dtd) == {"a", "w1", "w2", "w3"}
        assert consistency_report(dtd).consistent  # w1 is optional

    def test_optional_link_stops_propagation(self):
        s = DTDStructure("db")
        s.define_element("db", "(w, b*, c*)")
        s.define_element("w", "(a?)")      # a is optional inside w
        s.define_element("a", "EMPTY")
        s.define_element("b", "EMPTY")
        s.define_element("c", "EMPTY")
        s.define_attribute("a", "r", kind="IDREF")
        s.define_attribute("b", "oid", kind="ID")
        s.define_attribute("c", "oid", kind="ID")
        dtd = DTDC(s, _degenerate_sigma())
        assert vacuous_types(dtd) == {"a"}
        # w is required by the root but can be empty: consistent.
        assert consistency_report(dtd).consistent

    def test_conflict_at_end_of_required_chain(self):
        s = DTDStructure("db")
        s.define_element("db", "(w, b*, c*)")
        s.define_element("w", "(a)")       # and here a is mandatory
        s.define_element("a", "EMPTY")
        s.define_element("b", "EMPTY")
        s.define_element("c", "EMPTY")
        s.define_attribute("a", "r", kind="IDREF")
        s.define_attribute("b", "oid", kind="ID")
        s.define_attribute("c", "oid", kind="ID")
        report = consistency_report(DTDC(s, _degenerate_sigma()))
        assert not report.consistent
        assert report.conflicts == {"a", "w", "db"}
