"""Tests for :mod:`repro.shard` — sharded corpus validation, constraint
locality analysis, the merge fold, nodes, and watch mode."""

import json
import os

import pytest

from repro.constraints.base import Field
from repro.constraints.evaluators import evaluator_for
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.corpus import CorpusValidator, ResultCache
from repro.corpus.validator import resolve_jobs
from repro.datamodel.indexes import AttributeIndex
from repro.dtd.validate import ValidationReport
from repro.errors import ConstraintError, ReproError
from repro.obs import Observability
from repro.shard import (
    Locality, LocalNode, ShardedCorpusValidator, SubprocessNode,
    WatchSession, classify_constraint, classify_sigma, extract_aggregates,
    fold_aggregates, shard_of,
)
from repro.workloads import (
    federated_corpus, random_corpus, registry_schema,
)
from repro.xmlio import parse_document, serialize


@pytest.fixture
def library():
    """A 10-document library corpus (all-local Σ), 30% invalid."""
    return random_corpus(n_docs=10, invalid_fraction=0.3, seed=7)


@pytest.fixture
def federation():
    """An 8-document registry corpus (all-merge Σ) exercising all three
    cross-document phenomena."""
    return federated_corpus(n_docs=8, cross_dup_fraction=0.4,
                            cross_ref_fraction=0.3,
                            dangling_fraction=0.25, seed=5)


def _pairs(trees, prefix="d"):
    return [(f"{prefix}{i}", serialize(t)) for i, t in enumerate(trees)]


# -- locality classification ------------------------------------------------


class TestLocality:
    #: every constraint class with a concrete instance and its expected
    #: shard locality — L and L_u are document-scoped (local), L_id
    #: rides corpus-wide ID/IDREF semantics (merge)
    CASES = [
        (Key("entry", (Field("isbn"), Field("shelf"))), Locality.LOCAL),
        (UnaryKey("entry", Field("isbn")), Locality.LOCAL),
        (ForeignKey("ref", (Field("to"),), "entry", (Field("isbn"),)),
         Locality.LOCAL),
        (UnaryForeignKey("ref", Field("to"), "entry", Field("isbn")),
         Locality.LOCAL),
        (SetValuedForeignKey("ref", Field("to"), "entry", Field("isbn")),
         Locality.LOCAL),
        (Inverse("ref", Field("rid"), Field("to"),
                 "entry", Field("isbn"), Field("refs")),
         Locality.LOCAL),
        (IDConstraint("person"), Locality.MERGE),
        (IDForeignKey("mention", Field("who"), "person"), Locality.MERGE),
        (IDSetValuedForeignKey("mention", Field("who"), "person"),
         Locality.MERGE),
        (IDInverse("person", Field("knows"), "mention", Field("who")),
         Locality.MERGE),
    ]

    @pytest.mark.parametrize(
        "constraint,expected", CASES,
        ids=[type(c).__name__ for c, _e in CASES])
    def test_per_class(self, constraint, expected):
        assert classify_constraint(constraint) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(ConstraintError):
            classify_constraint(object())

    def test_classify_sigma_positions(self, federation):
        dtd, _docs = federation
        split = classify_sigma(dtd)
        assert split[Locality.MERGE] == [0, 1]
        assert split[Locality.LOCAL] == []

    def test_library_sigma_is_all_local(self, library):
        dtd, _docs = library
        split = classify_sigma(dtd)
        assert split[Locality.LOCAL] == [0, 1, 2]
        assert split[Locality.MERGE] == []

    def test_static_and_runtime_views_agree(self, library, federation):
        """The schema-level classification and the evaluator-level
        ``locality`` attribute must agree constraint by constraint —
        the static view is what the coordinator plans with, the runtime
        view is what actually exports aggregates."""
        for dtd, trees in (library, federation):
            id_map = dtd.structure.id_attribute_map()
            tree = parse_document(serialize(trees[0]), dtd.structure)
            index = AttributeIndex(tree, id_attributes=id_map)
            for constraint in dtd.constraints:
                evaluator = evaluator_for(constraint, index, id_map)
                assert evaluator.locality == \
                    str(classify_constraint(constraint)), constraint
                evaluator.full()
                aggregate = evaluator.corpus_aggregate()
                if classify_constraint(constraint) is Locality.MERGE:
                    assert aggregate is not None, constraint
                else:
                    assert aggregate is None, constraint


# -- shard assignment -------------------------------------------------------


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 3, 7):
            for payload in (b"", b"<a/>", b"<library/>" * 100):
                s = shard_of(payload, n)
                assert 0 <= s < n
                assert shard_of(payload, n) == s

    def test_content_addressed_not_position_addressed(self):
        """The same bytes land on the same shard regardless of where
        they sit in the corpus — the invariant permutation parity
        rests on."""
        docs = [f"<doc n='{i}'/>".encode() for i in range(50)]
        layout = {d: shard_of(d, 3) for d in docs}
        for d in reversed(docs):
            assert shard_of(d, 3) == layout[d]

    def test_spreads_across_shards(self):
        docs = [f"<doc n='{i}'/>".encode() for i in range(64)]
        assert len({shard_of(d, 4) for d in docs}) == 4


# -- jobs / shards resolution -----------------------------------------------


class TestWorkerCounts:
    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_names_the_flag(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            resolve_jobs(-2, flag="shards")

    def test_sharded_validator_auto(self, library):
        dtd, _trees = library
        assert ShardedCorpusValidator(dtd, shards=0).shards \
            == (os.cpu_count() or 1)
        with pytest.raises(ValueError, match="shards"):
            ShardedCorpusValidator(dtd, shards=-1)


# -- byte-identity with the serial validator --------------------------------


class TestParity:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_local_schema_byte_identical(self, library, shards):
        dtd, trees = library
        docs = _pairs(trees)
        serial = CorpusValidator(dtd, jobs=1).validate(docs)
        with ShardedCorpusValidator(dtd, shards=shards) as sv:
            report = sv.validate(docs)
        assert report.verdicts_json() == serial.verdicts_json()
        assert report.corpus_violations == []
        assert report.corpus_ok == report.ok

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_lid_schema_byte_identical(self, federation, shards):
        dtd, trees = federation
        docs = _pairs(trees, "f")
        serial = CorpusValidator(dtd, jobs=1).validate(docs)
        with ShardedCorpusValidator(dtd, shards=shards) as sv:
            report = sv.validate(docs)
        assert report.verdicts_json() == serial.verdicts_json()

    def test_corpus_findings_stable_across_shard_counts(self, federation):
        dtd, trees = federation
        docs = _pairs(trees, "f")
        baseline = None
        for shards in (1, 2, 3):
            with ShardedCorpusValidator(dtd, shards=shards) as sv:
                report = sv.validate(docs)
            snapshot = ([v.to_dict() for v in report.corpus_violations],
                        report.merge_stats)
            if baseline is None:
                baseline = snapshot
            else:
                assert snapshot == baseline, shards

    def test_path_inputs_match_serial(self, library, tmp_path):
        dtd, trees = library
        paths = []
        for i, tree in enumerate(trees):
            p = tmp_path / f"doc{i}.xml"
            p.write_text(serialize(tree))
            paths.append(str(p))
        serial = CorpusValidator(dtd, jobs=1).validate(paths)
        with ShardedCorpusValidator(dtd, shards=3) as sv:
            report = sv.validate(paths)
        assert report.verdicts_json() == serial.verdicts_json()

    def test_empty_corpus(self, library):
        dtd, _trees = library
        with ShardedCorpusValidator(dtd, shards=2) as sv:
            report = sv.validate([])
        assert report.ok and report.corpus_ok and len(report) == 0
        # an empty run never even starts the node fleet
        assert sv._nodes is None


# -- the merge phase --------------------------------------------------------


class TestMergeFold:
    def test_cross_document_id_clash_only_at_merge(self):
        """The tentpole's defining case: two documents that are each
        perfectly valid alone share an ID value.  No per-document
        verdict can see it — only the coordinator's fold."""
        dtd, trees = federated_corpus(n_docs=4, cross_dup_fraction=1.0,
                                      seed=3)
        docs = _pairs(trees, "f")
        serial = CorpusValidator(dtd, jobs=1).validate(docs)
        assert serial.ok  # invisible to every per-document verdict
        with ShardedCorpusValidator(dtd, shards=3) as sv:
            report = sv.validate(docs)
        assert report.verdicts_json() == serial.verdicts_json()
        assert report.ok                  # per-document surface clean
        assert not report.corpus_ok      # ... but the corpus is not
        (clash,) = [v for v in report.corpus_violations
                    if v.code == "id-clash"]
        assert "p-0-0" in clash.message
        assert len(clash.documents) >= 2

    def test_single_document_clash_not_repeated(self):
        """A duplicate ID *within* one document is that document's own
        verdict; the fold must not report it a second time."""
        dtd = registry_schema()
        xml = ("<registry><person pid='p1'/><person pid='p1'/>"
               "</registry>")
        with ShardedCorpusValidator(dtd, shards=2) as sv:
            report = sv.validate([("solo", xml), ("other",
                                  "<registry><person pid='q'/>"
                                  "</registry>")])
        assert not report.ok  # the per-document verdict has it
        assert [v for v in report.corpus_violations
                if v.code == "id-clash"] == []

    def test_cross_document_ref_resolves(self):
        """A mention of another document's person is locally dangling
        (per-document violation, identical to serial) but resolved
        corpus-wide — counted, not re-reported."""
        dtd, trees = federated_corpus(n_docs=4, cross_ref_fraction=1.0,
                                      seed=1)
        docs = _pairs(trees, "f")
        with ShardedCorpusValidator(dtd, shards=2) as sv:
            report = sv.validate(docs)
        assert not report.ok  # locally dangling refs are real verdicts
        assert report.merge_stats["refs_resolved_cross_document"] == 4
        assert [v for v in report.corpus_violations
                if v.code == "foreign-key"] == []

    def test_ghost_ref_dangles_corpus_wide(self):
        dtd, trees = federated_corpus(n_docs=4, dangling_fraction=1.0,
                                      seed=2)
        docs = _pairs(trees, "f")
        with ShardedCorpusValidator(dtd, shards=2) as sv:
            report = sv.validate(docs)
        ghosts = [v for v in report.corpus_violations
                  if v.code == "foreign-key"]
        assert len(ghosts) == 4
        assert all("ghost-" in v.message for v in ghosts)

    def test_fold_is_pure_function_of_aggregates(self, federation):
        """The fold can be replayed from extracted aggregates alone —
        no validator, no shards — and gives the same answer."""
        dtd, trees = federation
        doc_aggs = []
        for i, tree in enumerate(trees):
            parsed = parse_document(serialize(tree), dtd.structure)
            doc_aggs.append((f"f{i}", extract_aggregates(dtd, parsed)))
        violations, stats = fold_aggregates(dtd, doc_aggs)
        with ShardedCorpusValidator(dtd, shards=3) as sv:
            report = sv.validate(_pairs(trees, "f"))
        assert [v.to_dict() for v in violations] \
            == [v.to_dict() for v in report.corpus_violations]
        assert stats == report.merge_stats

    def test_local_schema_exports_no_aggregates(self, library):
        dtd, trees = library
        parsed = parse_document(serialize(trees[0]), dtd.structure)
        assert extract_aggregates(dtd, parsed) == {}


# -- nodes ------------------------------------------------------------------


class TestNodes:
    def test_local_node_round_trip(self, library):
        dtd, trees = library
        from repro.xmlio.dtdparse import serialize_dtdc
        from repro.corpus.cache import schema_fingerprint

        with LocalNode() as node:
            node.load_schema("lib", serialize_dtdc(dtd),
                             dtd.structure.root, schema_fingerprint(dtd))
            response = node.check_shard("lib", _pairs(trees[:3]))
        assert response["ok"] and response["documents"] == 3
        assert len(response["verdicts"]) == 3

    def test_fingerprint_mismatch_raises(self, library):
        dtd, _trees = library
        from repro.xmlio.dtdparse import serialize_dtdc

        with LocalNode() as node:
            with pytest.raises(ReproError, match="fingerprint"):
                node.load_schema("lib", serialize_dtdc(dtd),
                                 dtd.structure.root, "not-the-print")

    def test_bad_request_raises_repro_error(self, library):
        dtd, _trees = library
        with LocalNode() as node:
            with pytest.raises(ReproError, match="rejected"):
                node.check_shard("never-loaded", [("d", "<x/>")])

    def test_subprocess_node_parity(self, federation):
        """One real ``serve --stdio`` child per shard gives the same
        bytes as in-process nodes."""
        dtd, trees = federation
        docs = _pairs(trees, "f")
        serial = CorpusValidator(dtd, jobs=1).validate(docs)
        with ShardedCorpusValidator(
                dtd, shards=2, node_factory=SubprocessNode) as sv:
            report = sv.validate(docs)
        assert report.verdicts_json() == serial.verdicts_json()

    def test_subprocess_close_is_clean(self):
        node = SubprocessNode()
        node.close()
        assert node.proc.returncode is not None
        node.close()  # idempotent


# -- coordinator caching ----------------------------------------------------


class TestCoordinatorCache:
    def test_second_run_is_all_cache_hits(self, federation, tmp_path):
        dtd, trees = federation
        docs = _pairs(trees, "f")
        cache = ResultCache(directory=tmp_path / "cache")
        with ShardedCorpusValidator(dtd, shards=2, cache=cache) as sv:
            first = sv.validate(docs)
            second = sv.validate(docs)
        assert second.verdicts_json() == first.verdicts_json()
        assert second.n_cached == len(docs)
        # the corpus fold still ran, from the aggregate cache
        assert [v.to_dict() for v in second.corpus_violations] \
            == [v.to_dict() for v in first.corpus_violations]

    def test_verdict_provenance_never_changes_bytes(self, library):
        dtd, trees = library
        docs = _pairs(trees)
        cache = ResultCache()
        with ShardedCorpusValidator(dtd, shards=2, cache=cache) as sv:
            cold = sv.validate(docs)
            warm = sv.validate(docs)
        assert warm.verdicts_json() == cold.verdicts_json()
        assert json.loads(warm.verdicts_json()) \
            == json.loads(cold.verdicts_json())


# -- observability ----------------------------------------------------------


class TestShardObservability:
    def test_spans_and_metrics(self, federation):
        dtd, trees = federation
        obs = Observability()
        with ShardedCorpusValidator(dtd, shards=2, obs=obs) as sv:
            sv.validate(_pairs(trees, "f"))
        def walk(spans):
            for span in spans:
                yield span["name"]
                yield from walk(span["children"])

        names = set(walk(obs.tracer.to_dicts()))
        assert {"shard.run", "shard.partition", "shard.validate",
                "shard.merge"} <= names
        metrics = {m["name"] for m in obs.metrics.to_dicts()}
        assert "shard_docs_assigned" in metrics
        assert "shard_corpus_violations" in metrics

    def test_node_metrics_absorbed(self, library):
        """Per-request node metrics (documents validated on the node)
        fold into the coordinator's registry — the multi-node run has
        one merged metrics view."""
        dtd, trees = library
        obs = Observability()
        with ShardedCorpusValidator(dtd, shards=2, obs=obs) as sv:
            sv.validate(_pairs(trees))
        byname = {m["name"]: m for m in obs.metrics.to_dicts()}
        assert "corpus_documents_validated" in byname


# -- result cache disk budget ----------------------------------------------


class TestCachePrune:
    def _fill(self, directory, n=30):
        cache = ResultCache(directory=directory)
        for i in range(n):
            cache.put(f"{i:02d}" + "a" * 62, ValidationReport())
        return cache

    def test_max_bytes_bounds_the_store(self, tmp_path):
        cache = ResultCache(directory=tmp_path, max_bytes=2000)
        for i in range(50):
            cache.put(f"{i:02d}" + "b" * 62, ValidationReport())
        assert cache.disk_bytes() <= 2000
        assert cache.disk_evictions > 0

    def test_prune_evicts_least_recently_used(self, tmp_path):
        cache = self._fill(tmp_path, n=10)
        entry = cache.disk_bytes() // 10
        # recently-used entries survive; getting re-stamps mtime
        os.utime(tmp_path / "00" / ("a" * 62 + ".json"),
                 (0, 0))  # force key 00 oldest
        cache.clear()
        stats = cache.prune(max_bytes=entry * 9)
        assert stats["evicted"] == 1
        assert cache.get("00" + "a" * 62) is None
        assert cache.get("09" + "a" * 62) is not None

    def test_prune_zero_empties(self, tmp_path):
        cache = self._fill(tmp_path)
        stats = cache.prune(max_bytes=0)
        assert stats["kept"] == 0 and cache.disk_bytes() == 0

    def test_unbounded_without_max_bytes(self, tmp_path):
        cache = self._fill(tmp_path)
        assert cache.disk_bytes() > 0
        assert cache.max_bytes is None

    def test_bad_max_bytes_raises(self):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(max_bytes=0)

    def test_cli_prune(self, tmp_path, capsys):
        from repro.cli.main import main

        self._fill(tmp_path)
        assert main(["cache", "prune", str(tmp_path),
                     "--max-bytes", "0", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kept"] == 0 and payload["evicted"] == 30

    def test_cli_prune_missing_dir_exits_2(self, tmp_path):
        from repro.cli.main import main

        assert main(["cache", "prune",
                     str(tmp_path / "nope")]) == 2


# -- watch mode -------------------------------------------------------------


class TestWatch:
    def _corpus_dir(self, tmp_path, n_docs=6, **kw):
        dtd, trees = federated_corpus(n_docs=n_docs, seed=4, **kw)
        for i, tree in enumerate(trees):
            (tmp_path / f"doc{i:02d}.xml").write_text(serialize(tree))
        return dtd

    def test_touch_one_file_revalidates_exactly_one(self, tmp_path):
        """The E24 smoke in miniature: edit one file of a corpus and
        the wake-up revalidates exactly that file (asserted in the
        metrics, not just the delta)."""
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        dtd = self._corpus_dir(corpus)
        obs = Observability()
        with ShardedCorpusValidator(dtd, shards=2, obs=obs,
                                    cache=tmp_path / "cache") as sv:
            session = WatchSession(sv, [corpus])
            first = session.poll()
            assert len(first.changed) == 6
            target = corpus / "doc03.xml"
            target.write_text(target.read_text().replace(
                'pid="p-3-1"', 'pid="p-3-1-edited"'))
            delta = session.poll()
        assert delta.changed == [str(target)]
        assert len(delta.unchanged) == 5
        revalidated = [m for m in obs.metrics.to_dicts()
                       if m["name"] == "watch_files_revalidated"]
        total = sum(m["value"] for m in revalidated)
        assert total == 6 + 1  # cold pass + exactly one re-check

    def test_steady_state_poll_returns_none(self, tmp_path):
        dtd = self._corpus_dir(tmp_path)
        with ShardedCorpusValidator(dtd, shards=1,
                                    cache=ResultCache()) as sv:
            session = WatchSession(sv, [tmp_path])
            assert session.poll() is not None
            assert session.poll() is None

    def test_mtime_only_touch_does_not_revalidate(self, tmp_path):
        dtd = self._corpus_dir(tmp_path)
        with ShardedCorpusValidator(dtd, shards=1) as sv:
            session = WatchSession(sv, [tmp_path])
            session.poll()
            os.utime(tmp_path / "doc01.xml")  # stat moves, bytes don't
            assert session.poll() is None

    def test_edit_updates_cross_document_fold(self, tmp_path):
        """An edit introducing a cross-shard duplicate ID flips the
        corpus verdict on the next wake-up, while the edited document
        itself stays per-document valid."""
        dtd = self._corpus_dir(tmp_path)
        with ShardedCorpusValidator(dtd, shards=2,
                                    cache=ResultCache()) as sv:
            session = WatchSession(sv, [tmp_path])
            first = session.poll()
            assert first.report.corpus_ok
            target = tmp_path / "doc02.xml"
            target.write_text(
                '<registry><person pid="p-0-0"/>'
                '<person pid="p-2-x"/><mention who="p-2-x"/>'
                "</registry>")
            delta = session.poll()
        assert delta.changed == [str(target)]
        assert delta.report.ok  # the edited document is valid alone
        assert not delta.report.corpus_ok
        (clash,) = delta.report.corpus_violations
        assert clash.code == "id-clash" and "p-0-0" in clash.message

    def test_new_and_removed_files(self, tmp_path):
        dtd = self._corpus_dir(tmp_path, n_docs=3)
        with ShardedCorpusValidator(dtd, shards=1) as sv:
            session = WatchSession(sv, [tmp_path])
            session.poll()
            extra = tmp_path / "extra.xml"
            extra.write_text(
                "<registry><person pid='px'/></registry>")
            delta = session.poll()
            assert delta.changed == [str(extra)]
            extra.unlink()
            delta = session.poll()
            assert delta.removed == [str(extra)]
            assert delta.changed == []

    def test_run_max_cycles(self, tmp_path):
        dtd = self._corpus_dir(tmp_path, n_docs=2)
        seen = []
        with ShardedCorpusValidator(dtd, shards=1) as sv:
            session = WatchSession(sv, [tmp_path])
            last = session.run(interval=0.0, max_cycles=3,
                               on_delta=seen.append,
                               sleep=lambda _s: None)
        assert session.cycle == 3
        assert len(seen) == 1 and last is seen[0]


# -- schema round-trip guard ------------------------------------------------


class TestSchemaRoundTrip:
    def test_unsorted_composite_key_is_refused(self):
        """``Key.__str__`` prints fields sorted; a schema whose stored
        field order differs would make node-side violation messages
        drift from the serial baseline.  The coordinator refuses it
        up front instead of silently breaking parity."""
        from repro.dtd.dtdc import DTDC
        from repro.dtd.structure import DTDStructure

        s = DTDStructure("library")
        s.define_element("library", "(entry*)")
        s.define_element("entry", "EMPTY")
        s.define_attribute("entry", "isbn")
        s.define_attribute("entry", "aisle")
        s.check()
        dtd = DTDC(s, [Key("entry", (Field("isbn"), Field("aisle")))])
        validator = ShardedCorpusValidator(dtd, shards=2)
        with pytest.raises(ReproError, match="serialization"):
            validator.validate([("d0", "<library/>")])

    def test_sorted_composite_key_is_accepted(self):
        from repro.dtd.dtdc import DTDC
        from repro.dtd.structure import DTDStructure

        s = DTDStructure("library")
        s.define_element("library", "(entry*)")
        s.define_element("entry", "EMPTY")
        s.define_attribute("entry", "isbn")
        s.define_attribute("entry", "aisle")
        s.check()
        dtd = DTDC(s, [Key("entry", (Field("aisle"), Field("isbn")))])
        with ShardedCorpusValidator(dtd, shards=2) as sv:
            report = sv.validate([("d0", "<library/>")])
        assert report.ok
