"""Tests for constraint propagation through transformations (§5's
integration question, implemented in repro.transform)."""

import pytest

from repro.constraints import (
    IDForeignKey, SetValuedForeignKey, UnaryKey, attr, elem,
)
from repro.dtd import validate
from repro.errors import ConstraintError, SchemaError
from repro.transform import (
    merge, project, rename_attributes, rename_elements,
    verify_propagation,
)
from repro.transform.merge import merge_documents
from repro.workloads import (
    book_document, book_dtdc, person_dept_export,
)


class TestRenameElements:
    def test_structure_and_constraints_follow(self, book_schema):
        renamed = rename_elements(book_schema, {"entry": "record",
                                                "ref": "bibliography"})
        s = renamed.structure
        assert s.has_element("record")
        assert not s.has_element("entry")
        assert "record" in s.subelements("book")
        strs = set(map(str, renamed.constraints))
        assert "record.isbn -> record" in strs
        assert "bibliography.to subS record.isbn" in strs

    def test_documents_revalidate_after_renaming(self, book_schema):
        mapping = {"entry": "record"}
        renamed = rename_elements(book_schema, mapping)
        doc = book_document()
        for v in doc.root.subtree():
            if v.label in mapping:
                v.label = mapping[v.label]
        assert validate(doc, renamed).ok

    def test_subelement_fields_renamed(self):
        dtd = book_dtdc().add_constraint_text(
            "section.<title> -> section")
        renamed = rename_elements(dtd, {"title": "heading"})
        assert "section.<heading> -> section" in \
            set(map(str, renamed.constraints))

    def test_non_injective_rejected(self, book_schema):
        with pytest.raises(SchemaError):
            rename_elements(book_schema, {"entry": "author"})

    def test_unknown_element_rejected(self, book_schema):
        with pytest.raises(SchemaError):
            rename_elements(book_schema, {"ghost": "x"})

    def test_root_renaming(self, book_schema):
        renamed = rename_elements(book_schema, {"book": "publication"})
        assert renamed.structure.root == "publication"


class TestRenameAttributes:
    def test_constraints_follow(self, book_schema):
        renamed = rename_attributes(book_schema, "entry",
                                    {"isbn": "isbn13"})
        strs = set(map(str, renamed.constraints))
        assert "entry.isbn13 -> entry" in strs
        assert "ref.to subS entry.isbn13" in strs
        assert renamed.structure.has_attribute("entry", "isbn13")
        assert not renamed.structure.has_attribute("entry", "isbn")

    def test_other_elements_untouched(self, book_schema):
        renamed = rename_attributes(book_schema, "entry",
                                    {"isbn": "code"})
        assert renamed.structure.has_attribute("section", "sid")

    def test_unknown_attribute_rejected(self, book_schema):
        with pytest.raises(SchemaError):
            rename_attributes(book_schema, "entry", {"nope": "x"})


class TestMerge:
    def test_disjoint_merge(self, book_schema):
        # Two L_u sources: the book DTD and a renamed copy of itself.
        other = rename_elements(book_schema, {
            t: f"x_{t}" for t in book_schema.structure.element_types})
        merged = merge(book_schema, other, root="library")
        s = merged.structure
        assert s.root == "library"
        assert s.has_element("book") and s.has_element("x_book")
        assert len(merged.constraints) == \
            2 * len(book_schema.constraints)

    def test_collision_rejected(self, book_schema):
        with pytest.raises(SchemaError):
            merge(book_schema, book_schema)

    def test_root_collision_rejected(self, book_schema, persondept):
        other, _doc = persondept
        with pytest.raises(SchemaError):
            merge(book_schema, other, root="book")

    def test_language_mixture_rejected(self, book_schema, persondept):
        # book is L_u (set-valued FK to a plain key), persondept is
        # L_id (ID constraints): the union fits no single language.
        other, _doc = persondept
        with pytest.raises(ConstraintError):
            merge(book_schema, other, root="library")
        # ... so merging the structures with compatible constraints works:
        slim = type(other)(other.structure, ())
        merged = merge(book_schema, slim, root="library")
        assert merged.language

    def test_document_merge_validates(self, book_schema, persondept):
        other, other_doc = persondept
        slim = type(other)(other.structure, ())
        merged = merge(book_schema, slim, root="library")
        doc = merge_documents(book_document(), other_doc, root="library")
        assert validate(doc, merged).ok

    def test_merged_id_clash_detected(self):
        """Document-wide ID semantics: two individually-consistent L_id
        sources can clash after merging (same ID value)."""
        from repro.oodb import export_store
        from repro.workloads import person_dept_store
        mapping = {"db": "db2", "person": "employee", "dept": "unit",
                   "name": "ename", "address": "eaddress",
                   "dname": "uname"}
        d1, t1 = export_store(person_dept_store(1, 1))
        renamed = rename_elements(export_store(person_dept_store(1, 1))[0],
                                  mapping)
        # Rebuild the second document under the renamed schema.
        _d2, t2 = export_store(person_dept_store(1, 1))
        for v in t2.root.subtree():
            v.label = mapping.get(v.label, v.label)
        merged = merge(d1, renamed, root="corp")
        doc = merge_documents(t1, t2, root="corp")
        report = validate(doc, merged)
        # Both sources use oids p0_0/d0 — a document-wide ID clash.
        assert any(v.code == "id-clash" for v in report)


class TestProject:
    def test_subtree_projection(self, book_schema):
        projected, dropped = project(book_schema, "section")
        s = projected.structure
        assert s.root == "section"
        assert s.has_element("section") and s.has_element("title")
        assert not s.has_element("entry")
        kept = set(map(str, projected.constraints))
        assert "section.sid -> section" in kept
        # entry.isbn key and ref.to FK mention dropped types.
        assert {"entry.isbn -> entry", "ref.to subS entry.isbn"} == \
            set(map(str, dropped))

    def test_dependent_constraints_dropped_transitively(self):
        # Keep ref in the projection but drop entry: the FK must go,
        # even though 'ref' survives.
        dtd = book_dtdc()
        s = dtd.structure
        # Build a variant where ref is reachable without entry.
        from repro.dtd import DTDC, DTDStructure
        v = DTDStructure("wrap")
        v.define_element("wrap", "(ref)")
        v.define_element("ref", "EMPTY")
        v.define_attribute("ref", "to", set_valued=True)
        v.define_element("entry", "EMPTY")
        v.define_attribute("entry", "isbn")
        from repro.constraints import parse_constraints as _pc
        from repro.constraints.parser import parse_constraints
        sigma = parse_constraints(
            "entry.isbn -> entry\nref.to subS entry.isbn", v)
        full = DTDC(v, sigma)
        projected, dropped = project(full, "wrap")
        assert not projected.constraints
        assert len(dropped) == 2

    def test_strict_mode(self, book_schema):
        with pytest.raises(ConstraintError):
            project(book_schema, "section", strict=True)
        # The identity projection keeps everything, so strict passes.
        projected, dropped = project(book_schema, "book", strict=True)
        assert dropped == []
        assert len(projected.constraints) == len(book_schema.constraints)

    def test_unknown_root(self, book_schema):
        with pytest.raises(SchemaError):
            project(book_schema, "ghost")


class TestVerifyPropagation:
    def test_renaming_is_lossless(self, book_schema):
        mapping = {"entry": "record"}
        renamed = rename_elements(book_schema, mapping)
        report = verify_propagation(book_schema, renamed,
                                    elem_map=mapping)
        assert report.ok, str(report)
        assert len(report.preserved) == len(book_schema.constraints)

    def test_merge_is_lossless(self, book_schema, persondept):
        other, _doc = persondept
        slim = type(other)(other.structure, ())
        merged = merge(book_schema, slim, root="library")
        report = verify_propagation(book_schema, merged)
        assert report.ok

    def test_projection_losses_reported(self, book_schema):
        projected, _dropped = project(book_schema, "section")
        report = verify_propagation(book_schema, projected)
        assert not report.ok
        lost = set(map(str, report.lost))
        assert "entry.isbn -> entry" in lost
        assert "section.sid -> section" not in lost

    def test_lid_propagation(self, persondept):
        dtd, _doc = persondept
        mapping = {"person": "employee"}
        renamed = rename_elements(dtd, mapping)
        report = verify_propagation(dtd, renamed, elem_map=mapping)
        assert report.ok, str(report)
