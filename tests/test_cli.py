"""Tests for the repro-xic command-line interface."""

import pytest

from repro.cli.main import main
from repro.workloads.book import BOOK_CONSTRAINTS_TEXT, BOOK_DTD_TEXT
from repro.workloads import book_document
from repro.xmlio import serialize


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "book.dtdc"
    path.write_text(BOOK_DTD_TEXT + "\n%% constraints\n"
                    + BOOK_CONSTRAINTS_TEXT)
    return str(path)


@pytest.fixture
def doc_file(tmp_path):
    path = tmp_path / "book.xml"
    path.write_text(serialize(book_document()))
    return str(path)


@pytest.fixture
def bad_doc_file(tmp_path):
    doc = book_document()
    doc.ext("ref")[0].set_attribute("to", ["nowhere"])
    path = tmp_path / "bad.xml"
    path.write_text(serialize(doc))
    return str(path)


class TestValidate:
    def test_valid_document(self, schema_file, doc_file, capsys):
        assert main(["--root", "book", "validate", doc_file,
                     schema_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_document(self, schema_file, bad_doc_file, capsys):
        assert main(["--root", "book", "validate", bad_doc_file,
                     schema_file]) == 1
        assert "violation" in capsys.readouterr().out

    def test_missing_file(self, schema_file):
        assert main(["validate", "/no/such/file.xml", schema_file]) == 2


class TestDescribe:
    def test_describe(self, schema_file, capsys):
        assert main(["--root", "book", "describe", schema_file]) == 0
        out = capsys.readouterr().out
        assert "P(book)" in out
        assert "entry.isbn -> entry" in out


class TestImply:
    def test_implied(self, schema_file, capsys):
        code = main(["--root", "book", "imply", schema_file,
                     "entry.isbn -> entry"])
        assert code == 0
        assert "implied" in capsys.readouterr().out

    def test_derived(self, schema_file, capsys):
        # SFK-K: the set-valued FK makes isbn derivable even without
        # the stated key; asking for an unstated fact:
        code = main(["--root", "book", "imply", schema_file,
                     "ref.to subS entry.isbn"])
        assert code == 0

    def test_not_implied(self, schema_file, capsys):
        code = main(["--root", "book", "imply", schema_file,
                     "section.sid sub entry.isbn"])
        assert code == 1
        assert "not implied" in capsys.readouterr().out

    def test_finite_flag(self, schema_file):
        assert main(["--root", "book", "imply", "--finite", schema_file,
                     "entry.isbn -> entry"]) == 0

    def test_bad_constraint_syntax(self, schema_file):
        assert main(["--root", "book", "imply", schema_file,
                     "garbage !!"]) == 2


class TestPaths:
    def test_path_type(self, schema_file, capsys):
        assert main(["--root", "book", "path-type", schema_file,
                     "book", "entry.isbn"]) == 0
        assert capsys.readouterr().out.strip() == "S"

    def test_path_imply_functional(self, schema_file, capsys):
        # entry is unique and isbn a key: key path => functional.
        code = main(["--root", "book", "path-imply", schema_file,
                     "book.entry.isbn -> book.author"])
        assert code == 0

    def test_path_imply_inclusion_not(self, schema_file):
        code = main(["--root", "book", "path-imply", schema_file,
                     "book.author sub entry.title"])
        assert code == 1

    def test_path_imply_bad_syntax(self, schema_file):
        assert main(["--root", "book", "path-imply", schema_file,
                     "no separators here"]) == 2


class TestConsistent:
    def test_consistent_schema(self, schema_file, capsys):
        assert main(["--root", "book", "consistent", schema_file]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_inconsistent_schema(self, tmp_path, capsys):
        path = tmp_path / "bad.dtdc"
        path.write_text("""
<!ELEMENT db (a, b*, c*)>
<!ELEMENT a EMPTY>
<!ATTLIST a r IDREF #REQUIRED>
<!ELEMENT b EMPTY>
<!ATTLIST b oid ID #REQUIRED>
<!ELEMENT c EMPTY>
<!ATTLIST c oid ID #REQUIRED>

%% constraints
b.oid ->id b
c.oid ->id c
a.r sub b.id
a.r sub c.id
""")
        assert main(["--root", "db", "consistent", str(path)]) == 1
        assert "INCONSISTENT" in capsys.readouterr().out


class TestImplyLanguageL:
    @pytest.fixture
    def l_schema_file(self, tmp_path):
        path = tmp_path / "pub.dtdc"
        path.write_text("""
<!ELEMENT db (publishers, editors)>
<!ELEMENT publishers (publisher*)>
<!ELEMENT publisher (pname, country, address)>
<!ELEMENT editors (editor*)>
<!ELEMENT editor (name, pname, country)>
<!ELEMENT pname (#PCDATA)> <!ELEMENT country (#PCDATA)>
<!ELEMENT address (#PCDATA)> <!ELEMENT name (#PCDATA)>

%% constraints
publisher[pname, country] -> publisher
editor[name] -> editor
editor[pname, country] sub publisher[pname, country]
""")
        return str(path)

    def test_permuted_fk_implied(self, l_schema_file, capsys):
        code = main(["--root", "db", "imply", l_schema_file,
                     "editor[country, pname] sub "
                     "publisher[country, pname]"])
        assert code == 0
        assert "implied" in capsys.readouterr().out

    def test_misaligned_not_implied(self, l_schema_file):
        assert main(["--root", "db", "imply", l_schema_file,
                     "publisher[pname, country] sub "
                     "publisher[country, pname]"]) == 1

    def test_restriction_violation_is_an_error(self, l_schema_file):
        assert main(["--root", "db", "imply", l_schema_file,
                     "publisher[pname] -> publisher"]) == 2

    def test_validate_l_document(self, l_schema_file, tmp_path, capsys):
        doc = tmp_path / "pubs.xml"
        doc.write_text("""
<db>
  <publishers>
    <publisher><pname>MK</pname><country>US</country>
      <address>CA</address></publisher>
  </publishers>
  <editors>
    <editor><name>Ed</name><pname>MK</pname><country>US</country>
    </editor>
  </editors>
</db>""")
        assert main(["--root", "db", "validate", str(doc),
                     l_schema_file]) == 0
        bad = tmp_path / "bad.xml"
        bad.write_text("""
<db>
  <publishers>
    <publisher><pname>MK</pname><country>US</country>
      <address>CA</address></publisher>
  </publishers>
  <editors>
    <editor><name>Ed</name><pname>MK</pname><country>FR</country>
    </editor>
  </editors>
</db>""")
        assert main(["--root", "db", "validate", str(bad),
                     l_schema_file]) == 1


class TestExitCodeContract:
    """validate follows the same 0/1/2 contract as lint, and --help
    documents it."""

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = " ".join(capsys.readouterr().out.split())  # un-wrap
        assert "exit status" in out
        assert "0 success" in out and "2 usage or input error" in out

    def test_validate_and_lint_agree_on_codes(self, schema_file, doc_file,
                                              bad_doc_file):
        # 0 = clean for both subcommands
        assert main(["--root", "book", "validate", doc_file,
                     schema_file]) == 0
        # 1 = findings for both
        assert main(["--root", "book", "validate", bad_doc_file,
                     schema_file]) == 1
        # 2 = input error for both
        assert main(["--root", "book", "validate", "/no/such.xml",
                     schema_file]) == 2
        assert main(["--root", "book", "lint", "/no/such.dtdc"]) == 2


class TestBenchIncremental:
    def test_smoke(self, capsys):
        assert main(["bench-incremental", "--nodes", "300",
                     "--updates", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "revalidate" in out

    def test_json_output(self, capsys):
        import json

        assert main(["bench-incremental", "--nodes", "300",
                     "--updates", "4", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["updates"] == 4
        assert data["vertices"] > 0 and data["sigma"] > 0
        assert data["incremental_us"] > 0 and data["full_us"] > 0
        assert data["speedup"] == pytest.approx(
            data["full_us"] / data["incremental_us"])


class TestProfile:
    def test_prints_span_tree_and_counters(self, schema_file, doc_file,
                                           capsys):
        assert main(["--root", "book", "profile", "--dtdc", schema_file,
                     "--doc", doc_file]) == 0
        out = capsys.readouterr().out
        assert "== spans ==" in out and "== metrics ==" in out
        # nested spans: validate encloses structure + constraint checks
        assert "validate" in out and "validate.structure" in out
        assert "evaluate" in out and "index.build" in out
        assert "session.build" in out
        # counter table rows
        assert "evaluator_vertices_visited" in out
        assert "xmlio_documents_parsed" in out

    def test_metrics_json_round_trips(self, schema_file, doc_file, capsys):
        import json

        assert main(["--root", "book", "--metrics", "json", "profile",
                     "--dtdc", schema_file, "--doc", doc_file]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {"spans", "metrics"}
        assert any(s["name"] == "validate" for s in data["spans"])
        names = {m["name"] for m in data["metrics"]}
        assert "evaluator_vertices_visited" in names

    def test_metrics_prom(self, schema_file, doc_file, capsys):
        assert main(["--root", "book", "--metrics", "prom", "profile",
                     "--dtdc", schema_file, "--doc", doc_file]) == 0
        out = capsys.readouterr().out
        assert "# TYPE evaluator_vertices_visited counter" in out

    def test_invalid_document_exits_one(self, schema_file, bad_doc_file):
        assert main(["--root", "book", "profile", "--dtdc", schema_file,
                     "--doc", bad_doc_file]) == 1

    def test_missing_file_exits_two(self, schema_file):
        assert main(["--root", "book", "profile", "--dtdc", schema_file,
                     "--doc", "/no/such.xml"]) == 2


class TestGlobalObsFlags:
    def test_trace_goes_to_stderr(self, schema_file, doc_file, capsys):
        assert main(["--root", "book", "--trace", "validate", doc_file,
                     schema_file]) == 0
        captured = capsys.readouterr()
        assert "OK" in captured.out            # stdout untouched
        assert "validate.structure" in captured.err

    def test_metrics_json_on_validate(self, schema_file, doc_file, capsys):
        import json

        assert main(["--root", "book", "--metrics", "json", "validate",
                     doc_file, schema_file]) == 0
        captured = capsys.readouterr()
        data = json.loads(captured.err)
        by_name = {m["name"]: m for m in data["metrics"]}
        assert by_name["xmlio_documents_parsed"]["value"] == 1

    def test_metrics_text_on_imply(self, schema_file, capsys):
        assert main(["--root", "book", "--metrics", "text", "imply",
                     schema_file, "entry.isbn -> entry"]) == 0
        captured = capsys.readouterr()
        assert "implication_rule_applications" in captured.err
        assert "implication_rule_applications" not in captured.out


class TestVerbosity:
    def test_verbose_progress_notes(self, schema_file, doc_file, capsys):
        assert main(["--root", "book", "-v", "validate", doc_file,
                     schema_file]) == 0
        err = capsys.readouterr().err
        assert "loaded schema" in err and "parsed" in err

    def test_default_has_no_progress_notes(self, schema_file, doc_file,
                                           capsys):
        assert main(["--root", "book", "validate", doc_file,
                     schema_file]) == 0
        assert capsys.readouterr().err == ""

    def test_quiet_suppresses_describe_diagnostics(self, tmp_path, capsys):
        import pathlib

        fixture = str(pathlib.Path(__file__).parent / "fixtures"
                      / "divergent.dtdc")
        assert main(["--root", "db", "-q", "describe", fixture]) == 0
        captured = capsys.readouterr()
        assert "P(tau)" in captured.out
        assert captured.err == ""

    def test_errors_survive_quiet(self, capsys):
        assert main(["-q", "lint", "/no/such.dtdc"]) == 2
        assert "error:" in capsys.readouterr().err
