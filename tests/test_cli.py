"""Tests for the repro-xic command-line interface."""

import pytest

from repro.cli.main import main
from repro.workloads.book import BOOK_CONSTRAINTS_TEXT, BOOK_DTD_TEXT
from repro.workloads import book_document
from repro.xmlio import serialize


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "book.dtdc"
    path.write_text(BOOK_DTD_TEXT + "\n%% constraints\n"
                    + BOOK_CONSTRAINTS_TEXT)
    return str(path)


@pytest.fixture
def doc_file(tmp_path):
    path = tmp_path / "book.xml"
    path.write_text(serialize(book_document()))
    return str(path)


@pytest.fixture
def bad_doc_file(tmp_path):
    doc = book_document()
    doc.ext("ref")[0].set_attribute("to", ["nowhere"])
    path = tmp_path / "bad.xml"
    path.write_text(serialize(doc))
    return str(path)


class TestValidate:
    def test_valid_document(self, schema_file, doc_file, capsys):
        assert main(["--root", "book", "validate", doc_file,
                     schema_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_document(self, schema_file, bad_doc_file, capsys):
        assert main(["--root", "book", "validate", bad_doc_file,
                     schema_file]) == 1
        assert "violation" in capsys.readouterr().out

    def test_missing_file(self, schema_file):
        assert main(["validate", "/no/such/file.xml", schema_file]) == 2


class TestDescribe:
    def test_describe(self, schema_file, capsys):
        assert main(["--root", "book", "describe", schema_file]) == 0
        out = capsys.readouterr().out
        assert "P(book)" in out
        assert "entry.isbn -> entry" in out


class TestImply:
    def test_implied(self, schema_file, capsys):
        code = main(["--root", "book", "imply", schema_file,
                     "entry.isbn -> entry"])
        assert code == 0
        assert "implied" in capsys.readouterr().out

    def test_derived(self, schema_file, capsys):
        # SFK-K: the set-valued FK makes isbn derivable even without
        # the stated key; asking for an unstated fact:
        code = main(["--root", "book", "imply", schema_file,
                     "ref.to subS entry.isbn"])
        assert code == 0

    def test_not_implied(self, schema_file, capsys):
        code = main(["--root", "book", "imply", schema_file,
                     "section.sid sub entry.isbn"])
        assert code == 1
        assert "not implied" in capsys.readouterr().out

    def test_finite_flag(self, schema_file):
        assert main(["--root", "book", "imply", "--finite", schema_file,
                     "entry.isbn -> entry"]) == 0

    def test_bad_constraint_syntax(self, schema_file):
        assert main(["--root", "book", "imply", schema_file,
                     "garbage !!"]) == 2


class TestPaths:
    def test_path_type(self, schema_file, capsys):
        assert main(["--root", "book", "path-type", schema_file,
                     "book", "entry.isbn"]) == 0
        assert capsys.readouterr().out.strip() == "S"

    def test_path_imply_functional(self, schema_file, capsys):
        # entry is unique and isbn a key: key path => functional.
        code = main(["--root", "book", "path-imply", schema_file,
                     "book.entry.isbn -> book.author"])
        assert code == 0

    def test_path_imply_inclusion_not(self, schema_file):
        code = main(["--root", "book", "path-imply", schema_file,
                     "book.author sub entry.title"])
        assert code == 1

    def test_path_imply_bad_syntax(self, schema_file):
        assert main(["--root", "book", "path-imply", schema_file,
                     "no separators here"]) == 2


class TestConsistent:
    def test_consistent_schema(self, schema_file, capsys):
        assert main(["--root", "book", "consistent", schema_file]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_inconsistent_schema(self, tmp_path, capsys):
        path = tmp_path / "bad.dtdc"
        path.write_text("""
<!ELEMENT db (a, b*, c*)>
<!ELEMENT a EMPTY>
<!ATTLIST a r IDREF #REQUIRED>
<!ELEMENT b EMPTY>
<!ATTLIST b oid ID #REQUIRED>
<!ELEMENT c EMPTY>
<!ATTLIST c oid ID #REQUIRED>

%% constraints
b.oid ->id b
c.oid ->id c
a.r sub b.id
a.r sub c.id
""")
        assert main(["--root", "db", "consistent", str(path)]) == 1
        assert "INCONSISTENT" in capsys.readouterr().out


class TestImplyLanguageL:
    @pytest.fixture
    def l_schema_file(self, tmp_path):
        path = tmp_path / "pub.dtdc"
        path.write_text("""
<!ELEMENT db (publishers, editors)>
<!ELEMENT publishers (publisher*)>
<!ELEMENT publisher (pname, country, address)>
<!ELEMENT editors (editor*)>
<!ELEMENT editor (name, pname, country)>
<!ELEMENT pname (#PCDATA)> <!ELEMENT country (#PCDATA)>
<!ELEMENT address (#PCDATA)> <!ELEMENT name (#PCDATA)>

%% constraints
publisher[pname, country] -> publisher
editor[name] -> editor
editor[pname, country] sub publisher[pname, country]
""")
        return str(path)

    def test_permuted_fk_implied(self, l_schema_file, capsys):
        code = main(["--root", "db", "imply", l_schema_file,
                     "editor[country, pname] sub "
                     "publisher[country, pname]"])
        assert code == 0
        assert "implied" in capsys.readouterr().out

    def test_misaligned_not_implied(self, l_schema_file):
        assert main(["--root", "db", "imply", l_schema_file,
                     "publisher[pname, country] sub "
                     "publisher[country, pname]"]) == 1

    def test_restriction_violation_is_an_error(self, l_schema_file):
        assert main(["--root", "db", "imply", l_schema_file,
                     "publisher[pname] -> publisher"]) == 2

    def test_validate_l_document(self, l_schema_file, tmp_path, capsys):
        doc = tmp_path / "pubs.xml"
        doc.write_text("""
<db>
  <publishers>
    <publisher><pname>MK</pname><country>US</country>
      <address>CA</address></publisher>
  </publishers>
  <editors>
    <editor><name>Ed</name><pname>MK</pname><country>US</country>
    </editor>
  </editors>
</db>""")
        assert main(["--root", "db", "validate", str(doc),
                     l_schema_file]) == 0
        bad = tmp_path / "bad.xml"
        bad.write_text("""
<db>
  <publishers>
    <publisher><pname>MK</pname><country>US</country>
      <address>CA</address></publisher>
  </publishers>
  <editors>
    <editor><name>Ed</name><pname>MK</pname><country>FR</country>
    </editor>
  </editors>
</db>""")
        assert main(["--root", "db", "validate", str(bad),
                     l_schema_file]) == 1


class TestExitCodeContract:
    """validate follows the same 0/1/2 contract as lint, and --help
    documents it."""

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = " ".join(capsys.readouterr().out.split())  # un-wrap
        assert "exit status" in out
        assert "0 success" in out and "2 usage or input error" in out

    def test_validate_and_lint_agree_on_codes(self, schema_file, doc_file,
                                              bad_doc_file):
        # 0 = clean for both subcommands
        assert main(["--root", "book", "validate", doc_file,
                     schema_file]) == 0
        # 1 = findings for both
        assert main(["--root", "book", "validate", bad_doc_file,
                     schema_file]) == 1
        # 2 = input error for both
        assert main(["--root", "book", "validate", "/no/such.xml",
                     schema_file]) == 2
        assert main(["--root", "book", "lint", "/no/such.dtdc"]) == 2


class TestBenchIncremental:
    def test_smoke(self, capsys):
        assert main(["bench-incremental", "--nodes", "300",
                     "--updates", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "revalidate" in out
