"""Cross-process observability: registry merging, span adoption, and
deterministic exports — the pieces the corpus validator relies on to
fold per-worker telemetry into one report."""

import json

import pytest

from repro.obs import NULL_OBS, Observability
from repro.obs.metrics import MetricsRegistry


def _value(registry, name):
    for entry in registry.to_dicts():
        if entry["name"] == name:
            return entry["value"]
    raise KeyError(name)


class TestFromDicts:
    def test_counter_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c", help="a counter").add(3)
        reg.counter("c", labels={"k": "v"}).add(2)
        back = MetricsRegistry.from_dicts(reg.to_dicts())
        assert back.to_dicts() == reg.to_dicts()

    def test_gauge_round_trip(self):
        reg = MetricsRegistry()
        reg.gauge("g", help="a gauge").set(1.5)
        back = MetricsRegistry.from_dicts(reg.to_dicts())
        assert back.to_dicts() == reg.to_dicts()

    def test_histogram_round_trip(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(0.1, 1.0), help="a histogram")
        for x in (0.05, 0.5, 5.0):
            h.observe(x)
        back = MetricsRegistry.from_dicts(reg.to_dicts())
        assert back.to_dicts() == reg.to_dicts()


class TestMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").add(3)
        b.counter("c").add(4)
        b.counter("only_b").add(1)
        a.merge(b)
        assert _value(a, "c") == 7
        assert _value(a, "only_b") == 1

    def test_labelled_counters_merge_by_labels(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", labels={"k": "x"}).add(1)
        b.counter("c", labels={"k": "y"}).add(2)
        a.merge(b)
        values = {tuple(e["labels"].items()): e["value"]
                  for e in a.to_dicts()}
        assert values[(("k", "x"),)] == 1
        assert values[(("k", "y"),)] == 2

    def test_histograms_fold(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, xs in ((a, (0.05, 0.5)), (b, (0.5, 5.0))):
            h = reg.histogram("h", buckets=(0.1, 1.0))
            for x in xs:
                h.observe(x)
        a.merge(b)
        (entry,) = a.to_dicts()
        assert entry["count"] == 4
        assert entry["sum"] == pytest.approx(6.05)
        assert entry["min"] == 0.05 and entry["max"] == 5.0
        by_le = {b["le"]: b["count"] for b in entry["buckets"]}
        assert by_le == {0.1: 1, 1.0: 3}

    def test_histogram_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(0.1, 1.0)).observe(0.5)
        b.histogram("h", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_returns_self_and_chains(self):
        a, b, c = (MetricsRegistry() for _i in range(3))
        b.counter("c").add(1)
        c.counter("c").add(2)
        assert _value(a.merge(b).merge(c), "c") == 3

    def test_null_registry_merge_is_a_noop(self):
        reg = NULL_OBS.metrics
        assert reg.merge(reg) is reg


class TestAbsorb:
    def payload(self):
        worker = Observability()
        worker.counter("docs").add(5)
        with worker.span("work"):
            with worker.span("inner"):
                pass
        return {"metrics": worker.metrics.to_dicts(),
                "spans": [s.to_dict() for s in worker.tracer.roots]}

    def test_absorb_merges_metrics_and_spans(self):
        obs = Observability()
        obs.counter("docs").add(1)
        obs.absorb(self.payload())
        assert _value(obs.metrics, "docs") == 6
        names = [root.name for root in obs.tracer.roots]
        assert "work" in names

    def test_adopted_spans_nest_under_current(self):
        obs = Observability()
        with obs.span("corpus.merge"):
            obs.absorb(self.payload())
        (root,) = obs.tracer.roots
        assert root.name == "corpus.merge"
        assert [c.name for c in root.children] == ["work"]
        assert [c.name for c in root.children[0].children] == ["inner"]

    def test_adopted_spans_keep_duration(self):
        obs = Observability()
        payload = self.payload()
        obs.absorb(payload)
        (root,) = obs.tracer.roots
        assert root.duration == pytest.approx(
            payload["spans"][0]["duration_s"])

    def test_absorb_on_disabled_handle_is_a_noop(self):
        NULL_OBS.absorb(self.payload())
        assert list(NULL_OBS.tracer.roots) == []


class TestDeterministicExports:
    def build(self):
        obs = Observability()
        obs.counter("zeta").add(1)
        obs.counter("alpha", labels={"b": "2", "a": "1"}).add(2)
        obs.histogram("h", buckets=(0.1, 1.0)).observe(0.5)
        with obs.span("s"):
            pass
        return obs

    def test_json_export_has_sorted_keys(self):
        text = self.build().to_json()
        payload = json.loads(text)
        assert text == json.dumps(payload, indent=2, sort_keys=True)

    def test_json_export_stable_across_handles(self):
        def strip_timing(payload):
            for span in payload.get("spans", []):
                span.pop("duration_s", None)
                for child in span.get("children", []):
                    child.pop("duration_s", None)
            return payload

        a = strip_timing(json.loads(self.build().to_json()))
        b = strip_timing(json.loads(self.build().to_json()))
        assert a == b

    def test_prometheus_labels_sorted(self):
        text = self.build().to_prometheus()
        line = next(l for l in text.splitlines()
                    if l.startswith("alpha{"))
        assert line.index('a="1"') < line.index('b="2"')
