"""Cross-process observability: registry merging, span adoption, and
deterministic exports — the pieces the corpus validator relies on to
fold per-worker telemetry into one report."""

import json

import pytest

from repro.obs import NULL_OBS, Observability
from repro.obs.metrics import MetricsRegistry


def _value(registry, name):
    for entry in registry.to_dicts():
        if entry["name"] == name:
            return entry["value"]
    raise KeyError(name)


class TestFromDicts:
    def test_counter_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c", help="a counter").add(3)
        reg.counter("c", labels={"k": "v"}).add(2)
        back = MetricsRegistry.from_dicts(reg.to_dicts())
        assert back.to_dicts() == reg.to_dicts()

    def test_gauge_round_trip(self):
        reg = MetricsRegistry()
        reg.gauge("g", help="a gauge").set(1.5)
        back = MetricsRegistry.from_dicts(reg.to_dicts())
        assert back.to_dicts() == reg.to_dicts()

    def test_histogram_round_trip(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(0.1, 1.0), help="a histogram")
        for x in (0.05, 0.5, 5.0):
            h.observe(x)
        back = MetricsRegistry.from_dicts(reg.to_dicts())
        assert back.to_dicts() == reg.to_dicts()


class TestMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").add(3)
        b.counter("c").add(4)
        b.counter("only_b").add(1)
        a.merge(b)
        assert _value(a, "c") == 7
        assert _value(a, "only_b") == 1

    def test_labelled_counters_merge_by_labels(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", labels={"k": "x"}).add(1)
        b.counter("c", labels={"k": "y"}).add(2)
        a.merge(b)
        values = {tuple(e["labels"].items()): e["value"]
                  for e in a.to_dicts()}
        assert values[(("k", "x"),)] == 1
        assert values[(("k", "y"),)] == 2

    def test_histograms_fold(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, xs in ((a, (0.05, 0.5)), (b, (0.5, 5.0))):
            h = reg.histogram("h", buckets=(0.1, 1.0))
            for x in xs:
                h.observe(x)
        a.merge(b)
        (entry,) = a.to_dicts()
        assert entry["count"] == 4
        assert entry["sum"] == pytest.approx(6.05)
        assert entry["min"] == 0.05 and entry["max"] == 5.0
        by_le = {b["le"]: b["count"] for b in entry["buckets"]}
        assert by_le == {0.1: 1, 1.0: 3}

    def test_histogram_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(0.1, 1.0)).observe(0.5)
        b.histogram("h", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_returns_self_and_chains(self):
        a, b, c = (MetricsRegistry() for _i in range(3))
        b.counter("c").add(1)
        c.counter("c").add(2)
        assert _value(a.merge(b).merge(c), "c") == 3

    def test_null_registry_merge_is_a_noop(self):
        reg = NULL_OBS.metrics
        assert reg.merge(reg) is reg


class TestGaugeReducers:
    """Gauge merge semantics are explicit and pinned: ``max`` is the
    default (high-water marks survive a fold), ``min``/``sum`` are
    opt-in, a never-set gauge takes the incoming value, and the result
    does not depend on merge order."""

    def two(self, a_value, b_value):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(a_value)
        b.gauge("g").set(b_value)
        return a, b

    def test_default_reducer_is_max(self):
        a, b = self.two(3, 7)
        a.merge(b)
        assert _value(a, "g") == 7
        a2, b2 = self.two(7, 3)
        a2.merge(b2)
        assert _value(a2, "g") == 7

    def test_min_reducer(self):
        a, b = self.two(3, 7)
        a.merge(b, gauges="min")
        assert _value(a, "g") == 3

    def test_sum_reducer(self):
        a, b = self.two(3, 7)
        a.merge(b, gauges="sum")
        assert _value(a, "g") == 10

    def test_fresh_gauge_takes_incoming_value(self):
        """A gauge the target never set adopts the incoming value even
        under ``max`` — max(0, incoming) must not clamp negatives."""
        a, b = MetricsRegistry(), MetricsRegistry()
        b.gauge("depth").set(-2.5)
        a.merge(b)  # default "max"
        assert _value(a, "depth") == -2.5

    def test_order_independent(self):
        """Folding N worker registries yields the same value regardless
        of merge order, for every reducer."""
        values = (4.0, -1.0, 9.0, 2.0)
        for reducer, expected in (("max", 9.0), ("min", -1.0),
                                  ("sum", 14.0)):
            results = set()
            for order in ((0, 1, 2, 3), (3, 2, 1, 0), (2, 0, 3, 1)):
                target = MetricsRegistry()
                for i in order:
                    src = MetricsRegistry()
                    src.gauge("g").set(values[i])
                    target.merge(src, gauges=reducer)
                results.add(_value(target, "g"))
            assert results == {expected}, reducer

    def test_unknown_reducer_raises(self):
        a, b = self.two(1, 2)
        with pytest.raises(ValueError, match="unknown gauge reducer"):
            a.merge(b, gauges="mean")


class TestAbsorb:
    def payload(self):
        worker = Observability()
        worker.counter("docs").add(5)
        with worker.span("work"):
            with worker.span("inner"):
                pass
        return {"metrics": worker.metrics.to_dicts(),
                "spans": [s.to_dict() for s in worker.tracer.roots]}

    def test_absorb_merges_metrics_and_spans(self):
        obs = Observability()
        obs.counter("docs").add(1)
        obs.absorb(self.payload())
        assert _value(obs.metrics, "docs") == 6
        names = [root.name for root in obs.tracer.roots]
        assert "work" in names

    def test_adopted_spans_nest_under_current(self):
        obs = Observability()
        with obs.span("corpus.merge"):
            obs.absorb(self.payload())
        (root,) = obs.tracer.roots
        assert root.name == "corpus.merge"
        assert [c.name for c in root.children] == ["work"]
        assert [c.name for c in root.children[0].children] == ["inner"]

    def test_adopted_spans_keep_duration(self):
        obs = Observability()
        payload = self.payload()
        obs.absorb(payload)
        (root,) = obs.tracer.roots
        assert root.duration == pytest.approx(
            payload["spans"][0]["duration_s"])

    def test_absorb_on_disabled_handle_is_a_noop(self):
        NULL_OBS.absorb(self.payload())
        assert list(NULL_OBS.tracer.roots) == []


class TestDeterministicExports:
    def build(self):
        obs = Observability()
        obs.counter("zeta").add(1)
        obs.counter("alpha", labels={"b": "2", "a": "1"}).add(2)
        obs.histogram("h", buckets=(0.1, 1.0)).observe(0.5)
        with obs.span("s"):
            pass
        return obs

    def test_json_export_has_sorted_keys(self):
        text = self.build().to_json()
        payload = json.loads(text)
        assert text == json.dumps(payload, indent=2, sort_keys=True)

    def test_json_export_stable_across_handles(self):
        def strip_timing(payload):
            for span in payload.get("spans", []):
                span.pop("duration_s", None)
                for child in span.get("children", []):
                    child.pop("duration_s", None)
            return payload

        a = strip_timing(json.loads(self.build().to_json()))
        b = strip_timing(json.loads(self.build().to_json()))
        assert a == b

    def test_prometheus_labels_sorted(self):
        text = self.build().to_prometheus()
        line = next(l for l in text.splitlines()
                    if l.startswith("alpha{"))
        assert line.index('a="1"') < line.index('b="2"')
