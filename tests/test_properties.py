"""Property-based tests (hypothesis) on core invariants:

- Glushkov matcher vs direct NFA simulation vs word sampling;
- occurrence bounds vs actual counts on sampled words;
- indexed constraint checker vs the naive executable specification;
- soundness of the L_u implication deciders against random models;
- exhaustive model search never contradicts the finite decider;
- FD implication (Armstrong closure) vs the chase;
- serializer/parser round-trip on random trees.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (
    SetValuedForeignKey, UnaryForeignKey, UnaryKey, attr, check,
    check_naive,
)
from repro.implication.lu import LuEngine
from repro.implication.models import AbstractModel, materialize
from repro.implication.search import random_counterexample
from repro.regexlang.ast import Atom, Concat, Epsilon, Star, Union
from repro.regexlang.automaton import Matcher
from repro.regexlang.glushkov import GlushkovNFA
from repro.regexlang.properties import occurrence_bounds
from repro.workloads.generators import (
    _random_word, random_lu_implication_instance,
)

ALPHABET = ("a", "b", "c")


def regexes(depth=4):
    leaf = st.one_of(
        st.just(Epsilon()),
        st.sampled_from([Atom(s) for s in ALPHABET]),
    )
    return st.recursive(
        leaf,
        lambda inner: st.one_of(
            st.builds(Union, inner, inner),
            st.builds(Concat, inner, inner),
            st.builds(Star, inner),
        ),
        max_leaves=8)


words = st.lists(st.sampled_from(ALPHABET), max_size=6)


class TestRegexProperties:
    @given(regexes(), words)
    @settings(max_examples=200, deadline=None)
    def test_matcher_agrees_with_nfa(self, regex, word):
        assert Matcher(regex).matches(word) == \
            GlushkovNFA(regex).accepts(word)

    @given(regexes(), st.integers(0, 2**31))
    @settings(max_examples=150, deadline=None)
    def test_sampled_words_are_members(self, regex, seed):
        word = _random_word(regex, random.Random(seed), budget=10)
        assert Matcher(regex).matches(word)

    @given(regexes(), st.sampled_from(ALPHABET), st.integers(0, 2**31))
    @settings(max_examples=150, deadline=None)
    def test_occurrence_bounds_hold_on_samples(self, regex, symbol, seed):
        lo, hi = occurrence_bounds(regex, symbol)
        word = _random_word(regex, random.Random(seed), budget=10)
        count = word.count(symbol)
        assert count >= lo
        if hi is not None:
            assert count <= hi


def abstract_models():
    """Random tiny abstract models over two types with fixed fields."""
    values = st.sampled_from(["u", "v", "w"])
    single = st.fixed_dictionaries({"k": values, "f": values})
    setv = st.frozensets(values, max_size=3)

    def build(t_rows, s_rows):
        m = AbstractModel()
        m.set_valued.add(("t", attr("s")))
        m.set_valued.add(("u", attr("s")))
        for row in t_rows:
            m.add("t", k=row["k"], f=row["f"])
        for row, ss in s_rows:
            e = m.add("u", k=row["k"], f=row["f"])
            e.values[attr("s")] = ss
        return m

    rows_t = st.lists(single, max_size=3)
    rows_s = st.lists(st.tuples(single, setv), max_size=3)
    return st.builds(build, rows_t, rows_s)


CONSTRAINTS = [
    UnaryKey("t", attr("k")),
    UnaryKey("u", attr("k")),
    UnaryForeignKey("t", attr("f"), "u", attr("k")),
    UnaryForeignKey("u", attr("f"), "t", attr("k")),
]


class TestCheckerProperties:
    @given(abstract_models())
    @settings(max_examples=100, deadline=None)
    def test_indexed_equals_naive_on_documents(self, model):
        dtd, tree = materialize(model)
        for constraint in CONSTRAINTS:
            fast = check(tree, [constraint], dtd.structure).ok
            naive = check_naive(tree, [constraint], dtd.structure).ok
            assert fast == naive, str(constraint)

    @given(abstract_models())
    @settings(max_examples=100, deadline=None)
    def test_abstract_evaluation_matches_document_checker(self, model):
        dtd, tree = materialize(model)
        for constraint in CONSTRAINTS:
            assert model.satisfies(constraint) == \
                check(tree, [constraint], dtd.structure).ok, \
                str(constraint)


class TestImplicationSoundness:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_finite_decider_sound_on_random_models(self, seed):
        """If Σ ⊨_f φ per the decider, no sampled finite model of Σ may
        violate φ — i.e. the randomized counterexample search must fail."""
        sigma, phi = random_lu_implication_instance(
            seed, n_types=3, n_constraints=6)
        engine = LuEngine(sigma)
        if engine.finitely_implies(phi):
            witness = random_counterexample(sigma, phi, trials=150,
                                            max_elements=2,
                                            domain_size=2, seed=seed)
            assert witness is None, (
                f"decider says implied but found model:\n{witness}")

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_found_models_refute_honestly(self, seed):
        """Any model the search returns really is a counterexample, so
        the decider must agree it is not finitely implied."""
        sigma, phi = random_lu_implication_instance(
            seed, n_types=3, n_constraints=6)
        witness = random_counterexample(sigma, phi, trials=60,
                                        max_elements=2, domain_size=2,
                                        seed=seed)
        if witness is not None:
            engine = LuEngine(sigma)
            assert not engine.finitely_implies(phi)
            assert not engine.implies(phi)

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_unrestricted_entails_finite(self, seed):
        sigma, phi = random_lu_implication_instance(
            seed, n_types=4, n_constraints=8)
        engine = LuEngine(sigma)
        if engine.implies(phi):
            assert engine.finitely_implies(phi)


class TestFdProperties:
    @given(st.lists(
        st.tuples(st.frozensets(st.sampled_from("abcd"), min_size=1,
                                max_size=2),
                  st.frozensets(st.sampled_from("abcd"), min_size=1,
                                max_size=2)),
        max_size=4),
        st.frozensets(st.sampled_from("abcd"), min_size=1, max_size=2),
        st.frozensets(st.sampled_from("abcd"), min_size=1, max_size=2))
    @settings(max_examples=80, deadline=None)
    def test_fd_closure_agrees_with_chase(self, fd_pairs, lhs, rhs):
        from repro.relational import (
            FD, ChaseOutcome, Database, RelationSchema, chase, fd_implies,
        )
        fds = [FD("r", a, b) for a, b in fd_pairs]
        phi = FD("r", lhs, rhs)
        database = Database([RelationSchema("r", tuple("abcd"))])
        result = chase(database, fds, [], phi, max_steps=50)
        expected = ChaseOutcome.IMPLIED if fd_implies(fds, phi) \
            else ChaseOutcome.NOT_IMPLIED
        assert result.outcome is expected


class TestSerializationRoundtrip:
    @given(abstract_models())
    @settings(max_examples=80, deadline=None)
    def test_xml_roundtrip_preserves_model(self, model):
        from repro.xmlio import parse_document, serialize
        dtd, tree = materialize(model)
        again = parse_document(serialize(tree), dtd.structure)
        assert [v.label for v in again.root.subtree()] == \
            [v.label for v in tree.root.subtree()]
        for before, after in zip(tree.root.subtree(),
                                 again.root.subtree()):
            for name, values in before.attributes.items():
                if values:
                    assert after.attr_or_empty(name) == values


class TestPathSoundnessProperties:
    """Whatever the §4 deciders call implied must hold on random valid
    documents of the school schema."""

    @staticmethod
    def _school_dtdc():
        from repro.constraints.parser import parse_constraints
        from repro.dtd import DTDC, DTDStructure
        s = DTDStructure("school")
        s.define_element("school", "(student*, teacher*, course*)")
        for t in ("student", "teacher", "course"):
            s.define_element(t, "EMPTY")
            s.define_attribute(t, "oid", kind="ID")
        s.define_attribute("student", "taking", set_valued=True,
                           kind="IDREF")
        s.define_attribute("teacher", "teaching", set_valued=True,
                           kind="IDREF")
        s.define_attribute("course", "taken_by", set_valued=True,
                           kind="IDREF")
        s.define_attribute("course", "taught_by", set_valued=True,
                           kind="IDREF")
        return DTDC(s, parse_constraints("""
            student.oid ->id student
            teacher.oid ->id teacher
            course.oid ->id course
            student.taking inv course.taken_by
            teacher.teaching inv course.taught_by
        """, s))

    @staticmethod
    def _random_school_doc(seed):
        """A random *valid* school document: inverse-consistent links."""
        from repro.datamodel import TreeBuilder
        rng = random.Random(seed)
        n_students = rng.randint(0, 3)
        n_teachers = rng.randint(0, 2)
        n_courses = rng.randint(0, 3)
        taking = {(s, c) for s in range(n_students)
                  for c in range(n_courses) if rng.random() < 0.4}
        teaching = {(t, c) for t in range(n_teachers)
                    for c in range(n_courses) if rng.random() < 0.4}
        b = TreeBuilder("school")
        for s in range(n_students):
            b.leaf("student", oid=f"s{s}",
                   taking=[f"c{c}" for (ss, c) in taking if ss == s])
        for t in range(n_teachers):
            b.leaf("teacher", oid=f"t{t}",
                   teaching=[f"c{c}" for (tt, c) in teaching if tt == t])
        for c in range(n_courses):
            b.leaf("course", oid=f"c{c}",
                   taken_by=[f"s{s}" for (s, cc) in taking if cc == c],
                   taught_by=[f"t{t}" for (t, cc) in teaching if cc == c])
        return b.tree

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_implied_inverses_hold_on_random_documents(self, seed):
        from repro.dtd import validate
        from repro.paths import (
            PathImplicationEngine, PathInverse, parse_path,
            path_constraint_holds,
        )
        dtd = self._school_dtdc()
        doc = self._random_school_doc(seed)
        assert validate(doc, dtd).ok
        engine = PathImplicationEngine(dtd)
        candidates = [
            PathInverse("student", parse_path("taking"),
                        "course", parse_path("taken_by")),
            PathInverse("student", parse_path("taking.taught_by"),
                        "teacher", parse_path("teaching.taken_by")),
            PathInverse("teacher", parse_path("teaching.taken_by"),
                        "student", parse_path("taking.taught_by")),
            PathInverse("student", parse_path("taking.taught_by"),
                        "teacher", parse_path("teaching.taught_by")),
        ]
        for phi in candidates:
            if engine.implies(phi):
                assert path_constraint_holds(dtd, doc, phi), str(phi)


class TestTransformProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_rename_roundtrip_preserves_constraints(self, seed):
        """Renaming then renaming back is the identity on Σ."""
        from repro.dtd import DTDC, DTDStructure
        from repro.transform import rename_elements
        from repro.workloads.generators import random_lu_sigma

        sigma = random_lu_sigma(seed, n_types=3, n_constraints=6,
                                with_inverses=False)
        s = DTDStructure("t0")
        types = {c.element for c in sigma} | \
            {getattr(c, "target", "t0") for c in sigma} | {"t0"}
        s.define_element("t0", "(" + ", ".join(
            f"{t}*" for t in sorted(types - {"t0"})) + ")"
            if len(types) > 1 else "EMPTY")
        attrs = {}
        from repro.implication.lu import _Arities
        arities = _Arities()
        arities.scan(sigma)
        for t in sorted(types - {"t0"}):
            s.define_element(t, "EMPTY")
        for (t, f) in sorted(arities.single, key=str):
            s.define_attribute(t, f.name)
        for (t, f) in sorted(arities.set_valued, key=str):
            s.define_attribute(t, f.name, set_valued=True)
        del attrs
        dtd = DTDC(s, sigma)
        forward = {t: f"re_{t}" for t in types}
        backward = {v: k for k, v in forward.items()}
        there = rename_elements(dtd, forward)
        back = rename_elements(there, backward)
        assert set(map(str, back.constraints)) == \
            set(map(str, dtd.constraints))
        assert back.structure.element_types == s.element_types


class TestIndProperties:
    @given(st.lists(st.tuples(st.sampled_from("rs"),
                              st.sampled_from("ab"),
                              st.sampled_from("rs"),
                              st.sampled_from("ab")),
                    max_size=4),
           st.tuples(st.sampled_from("rs"), st.sampled_from("ab"),
                     st.sampled_from("rs"), st.sampled_from("ab")))
    @settings(max_examples=80, deadline=None)
    def test_ind_axioms_agree_with_chase(self, stated, query):
        """CFP rule-based IND implication == the chase, on unary
        single-IND-per-step instances (where the chase terminates)."""
        from repro.relational import (
            IND, ChaseOutcome, Database, RelationSchema, chase,
            ind_implies,
        )
        sigma = [IND(r, (a,), s, (b,)) for (r, a, s, b) in stated]
        phi = IND(query[0], (query[1],), query[2], (query[3],))
        database = Database([RelationSchema("r", ("a", "b")),
                             RelationSchema("s", ("a", "b"))])
        result = chase(database, [], sigma, phi,
                       max_steps=100, max_rows=500)
        if result.outcome is ChaseOutcome.UNKNOWN:
            return  # IND-only chase can still blow the budget; skip
        rule_based = ind_implies(sigma, phi)
        chase_based = result.outcome is ChaseOutcome.IMPLIED
        assert rule_based == chase_based, f"{sigma} |= {phi}"


class TestLanguageSubsetProperties:
    @given(regexes(), regexes(), st.integers(0, 2**31))
    @settings(max_examples=120, deadline=None)
    def test_subset_respected_by_samples(self, r1, r2, seed):
        from repro.regexlang.properties import language_subset
        if language_subset(r1, r2):
            word = _random_word(r1, random.Random(seed), budget=8)
            assert Matcher(r2).matches(word), (r1, r2, word)

    @given(regexes(), regexes(), st.integers(0, 2**31))
    @settings(max_examples=120, deadline=None)
    def test_intersection_respected_by_samples(self, r1, r2, seed):
        from repro.regexlang.properties import languages_intersect
        word = _random_word(r1, random.Random(seed), budget=8)
        if Matcher(r2).matches(word):
            assert languages_intersect(r1, r2)


class TestLidSoundnessProperties:
    """Random L_id schemas + Σ-consistent random documents: every
    constraint in the I_id closure must hold (soundness of Prop 3.1's
    axioms, incl. the documented completions)."""

    @staticmethod
    def _random_lid_instance(seed):
        from repro.constraints import (
            IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
        )
        from repro.datamodel import TreeBuilder
        from repro.dtd import DTDC, DTDStructure

        rng = random.Random(seed)
        n_types = rng.randint(2, 4)
        types = [f"t{i}" for i in range(n_types)]
        s = DTDStructure("db")
        s.define_element("db", "(" + ", ".join(
            f"{t}*" for t in types) + ")")
        sigma = []
        singles = {}
        setvs = {}
        inverses = []
        for t in types:
            s.define_element(t, "EMPTY")
            s.define_attribute(t, "oid", kind="ID")
            sigma.append(IDConstraint(t))
        for t in types:
            if rng.random() < 0.7:
                target = rng.choice(types)
                s.define_attribute(t, "ref", kind="IDREF")
                sigma.append(IDForeignKey(t, attr("ref"), target))
                singles[t] = target
            if rng.random() < 0.7:
                target = rng.choice(types)
                s.define_attribute(t, "refs", set_valued=True,
                                   kind="IDREF")
                sigma.append(IDSetValuedForeignKey(t, attr("refs"),
                                                   target))
                setvs[t] = target
        # One inverse between two distinct types with fresh attributes.
        if n_types >= 2 and rng.random() < 0.6:
            a, b = rng.sample(types, 2)
            s.define_attribute(a, "fwd", set_valued=True, kind="IDREF")
            s.define_attribute(b, "back", set_valued=True, kind="IDREF")
            from repro.constraints import IDInverse as _Inv
            sigma.append(_Inv(a, attr("fwd"), b, attr("back")))
            inverses.append((a, b))

        # Build a Σ-consistent document.
        n_per_type = {t: rng.randint(1, 3) for t in types}
        oids = {t: [f"{t}_{i}" for i in range(n_per_type[t])]
                for t in types}
        pairs = {}
        for (a, b) in inverses:
            pairs[(a, b)] = {(x, y) for x in oids[a] for y in oids[b]
                             if rng.random() < 0.4}
        builder = TreeBuilder("db")
        for t in types:
            for oid in oids[t]:
                attrs = {"oid": oid}
                if t in singles:
                    attrs["ref"] = rng.choice(oids[singles[t]])
                if t in setvs:
                    attrs["refs"] = [o for o in oids[setvs[t]]
                                     if rng.random() < 0.5]
                for (a, b) in inverses:
                    if t == a:
                        attrs["fwd"] = [y for (x, y) in pairs[(a, b)]
                                        if x == oid]
                    if t == b:
                        attrs["back"] = [x for (x, y) in pairs[(a, b)]
                                        if y == oid]
                builder.leaf(t, attrs=attrs)
        return DTDC(s, sigma), builder.tree

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_closure_sound_on_consistent_documents(self, seed):
        from repro.dtd import validate
        from repro.implication.lid import ID_FIELD, LidEngine

        dtd, doc = self._random_lid_instance(seed)
        assert validate(doc, dtd).ok, f"generator bug at seed {seed}"
        engine = LidEngine(dtd.constraints)
        derived = [c for c in engine.derived_constraints()
                   if getattr(c, "field", None) != ID_FIELD]
        report = check(doc, derived, dtd.structure)
        assert report.ok, f"seed {seed}: {report}"


class TestParserRobustness:
    @given(st.text(max_size=80))
    @settings(max_examples=300, deadline=None)
    def test_parser_raises_only_xml_errors(self, text):
        """Arbitrary input either parses or raises XMLSyntaxError —
        never an internal exception."""
        from repro.errors import XMLSyntaxError
        from repro.xmlio import parse_document
        try:
            parse_document(text)
        except XMLSyntaxError:
            pass

    @given(st.text(alphabet="<>&'\"/a b=!-[]?", max_size=60))
    @settings(max_examples=300, deadline=None)
    def test_parser_robust_on_markup_soup(self, text):
        from repro.errors import XMLSyntaxError
        from repro.xmlio import parse_document
        try:
            parse_document(text)
        except XMLSyntaxError:
            pass
