"""Tests for :mod:`repro.stream` — the compiled per-label plan and the
single-pass streaming validator.

The load-bearing promise is *byte identity*: for every document,
``StreamValidator(...).validate_text(text).to_json()`` equals the batch
``validate(parse_document(text, S), dtd).to_json()`` — same violations,
same messages, same order.  The randomized side of that promise lives in
``test_stream_equivalence.py``; this file pins the deliberate cases and
the plumbing (plan compilation, pickling, the facade, interning, obs).
"""

import pickle

import pytest

from repro import Validator
from repro.dtd.validate import validate
from repro.errors import XMLSyntaxError
from repro.obs import Observability
from repro.stream import StreamPlan, StreamValidator, compile_plan
from repro.xmlio import serialize
from repro.xmlio.dtdparse import parse_dtdc
from repro.xmlio.parser import parse_document

LIB_SCHEMA = """
<!ELEMENT library (entry*, ref*)>
<!ELEMENT entry (#PCDATA)?>
<!ELEMENT ref EMPTY>
<!ATTLIST entry isbn CDATA #REQUIRED shelf CDATA #REQUIRED>
<!ATTLIST ref to CDATA #REQUIRED>
%% constraints
entry.isbn -> entry
ref.to sub entry.isbn
"""


@pytest.fixture(scope="module")
def lib():
    return parse_dtdc(LIB_SCHEMA)


def _both(dtd, text):
    """(batch_json, stream_json) for one document/schema pair."""
    batch = validate(parse_document(text, dtd.structure), dtd)
    stream = StreamValidator(compile_plan(dtd)).validate_text(text)
    return batch.to_json(), stream.to_json()


# -- the plan ---------------------------------------------------------------


class TestStreamPlan:
    def test_compile_once_per_schema(self, lib):
        plan = compile_plan(lib)
        assert isinstance(plan, StreamPlan)
        assert plan.root == "library"
        assert set(plan.labels) == {"library", "entry", "ref"}
        # both constraints touch entry; only the inclusion touches ref
        assert len(plan.labels["entry"].evaluators) == 2
        assert len(plan.labels["ref"].evaluators) == 1
        assert plan.labels["library"].evaluators == ()

    def test_relevant_labels(self, lib):
        plan = compile_plan(lib)
        assert plan.relevant == {"entry", "ref"}

    def test_plan_survives_pickling(self, lib):
        plan = compile_plan(lib)
        _ = plan.matchers  # force the lazy table, then drop it in transit
        clone = pickle.loads(pickle.dumps(plan))
        assert clone._matchers is None
        text = ('<library><entry isbn="1" shelf="a">x</entry>'
                '<ref to="1"/></library>')
        assert StreamValidator(clone).validate_text(text).to_json() \
            == StreamValidator(plan).validate_text(text).to_json()


# -- byte identity on deliberate cases --------------------------------------


class TestByteIdentity:
    def test_book_fixture(self, book):
        dtd, doc = book
        b, s = _both(dtd, serialize(doc))
        assert b == s

    def test_valid_library(self, lib):
        b, s = _both(lib, '<library><entry isbn="1" shelf="a">x</entry>'
                          '<ref to="1"/></library>')
        assert b == s

    @pytest.mark.parametrize("text", [
        # wrong root + undeclared elements carrying children/attributes
        '<shelf><widget size="3"><gear/></widget></shelf>',
        # content model stuck mid-word
        '<library><ref to="1"/><entry isbn="1" shelf="a"/></library>',
        # duplicate keys and dangling references
        '<library><entry isbn="1" shelf="a"/>'
        '<entry isbn="1" shelf="b"/><ref to="9"/></library>',
        # empty root: content model still consulted
        '<library/>',
        # missing, undeclared and single-vs-multi-valued attributes
        '<library><entry isbn="1 2" shelf="a" color="red"/></library>',
        # text where the model allows none
        '<library><entry isbn="1" shelf="a"/>oops</library>',
    ])
    def test_invalid_documents(self, lib, text):
        b, s = _both(lib, text)
        assert b == s

    def test_keep_whitespace_parity(self, lib):
        text = '<library>\n  <entry isbn="1" shelf="a"/>\n</library>'
        batch = validate(parse_document(text, lib.structure,
                                        keep_whitespace=True), lib)
        stream = StreamValidator(compile_plan(lib)) \
            .validate_text(text, keep_whitespace=True)
        assert batch.to_json() == stream.to_json()


class TestWellformedness:
    """Malformed input raises the same ``XMLSyntaxError`` (message and
    all) the tree parser raises."""

    @pytest.mark.parametrize("text", [
        "<a></b>",
        "</a>",
        "<a/><b/>",
        "<a>",
        "",
        "just text",
        "<a></a>trailing",
    ])
    def test_same_error_as_parser(self, lib, text):
        with pytest.raises(XMLSyntaxError) as batch_err:
            parse_document(text, lib.structure)
        with pytest.raises(XMLSyntaxError) as stream_err:
            StreamValidator(compile_plan(lib)).validate_text(text)
        assert str(stream_err.value) == str(batch_err.value)


# -- the facade -------------------------------------------------------------


class TestCheckStream:
    def test_text_input(self, lib):
        report = Validator(lib).check_stream(
            '<library><entry isbn="1" shelf="a"/></library>')
        assert report.ok

    def test_path_input(self, lib, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text('<library><entry isbn="1" shelf="a"/>'
                        '<ref to="9"/></library>')
        report = Validator(lib).check_stream(path)
        assert not report.ok
        assert report.violations[0].code == "foreign-key"

    def test_matches_validate(self, book):
        dtd, doc = book
        text = serialize(doc)
        v = Validator(dtd)
        assert v.check_stream(text).to_json() == v.validate(
            parse_document(text, dtd.structure)).to_json()

    def test_plan_cached_on_validator(self, lib):
        v = Validator(lib)
        v.check_stream("<library/>")
        plan = v._stream_plan
        v.check_stream("<library/>")
        assert v._stream_plan is plan


# -- label interning --------------------------------------------------------


class TestInterning:
    def test_tokenizer_interns_names(self):
        from repro.xmlio.tokenizer import Tokenizer

        tokens = list(Tokenizer(
            '<a><b x="1"/><b x="2"/></a>').tokens())
        starts = [t for t in tokens if t.kind == "empty"]
        assert starts[0].value is starts[1].value
        assert starts[0].attributes[0][0] is starts[1].attributes[0][0]

    def test_tree_interns_labels(self):
        from repro.datamodel.tree import DataTree

        t = DataTree("a")
        v1 = t.create_under(t.root, "b")
        v2 = t.create_under(t.root, "b")
        assert v1.label is v2.label


# -- observability ----------------------------------------------------------


class TestStreamObservability:
    def test_counters_and_spans(self, lib):
        obs = Observability()
        StreamValidator(compile_plan(lib), obs=obs).validate_text(
            '<library><entry isbn="1" shelf="a">x</entry>'
            '<ref to="1"/></library>')
        metrics = {m["name"]: m for m in obs.metrics.to_dicts()
                   if not m["labels"]}
        assert metrics["stream_events"]["value"] >= 5
        assert metrics["stream_elements"]["value"] == 3
        names = set()
        todo = list(obs.tracer.to_dicts())
        while todo:
            span = todo.pop()
            names.add(span["name"])
            todo.extend(span["children"])
        assert {"stream.validate", "stream.emit",
                "stream.dispatch"} <= names

    def test_no_obs_still_validates(self, lib):
        report = StreamValidator(compile_plan(lib)).validate_text(
            "<library/>")
        assert report.ok  # (entry*, ref*) accepts the empty word
