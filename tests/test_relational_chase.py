"""Tests for the chase over FDs + INDs."""

from repro.relational import (
    FD, IND, ChaseOutcome, Database, RelationSchema, chase,
)


def db(*rels):
    return Database([RelationSchema(name, attrs) for name, attrs in rels])


class TestFdGoals:
    def test_fd_transitivity_established(self):
        database = db(("r", ("a", "b", "c")))
        fds = [FD("r", frozenset("a"), frozenset("b")),
               FD("r", frozenset("b"), frozenset("c"))]
        result = chase(database, fds, [], FD("r", frozenset("a"),
                                             frozenset("c")))
        assert result.outcome is ChaseOutcome.IMPLIED

    def test_fd_refuted_with_model(self):
        database = db(("r", ("a", "b", "c")))
        fds = [FD("r", frozenset("a"), frozenset("b"))]
        result = chase(database, fds, [], FD("r", frozenset("b"),
                                             frozenset("a")))
        assert result.outcome is ChaseOutcome.NOT_IMPLIED
        model = result.model
        rows = model.relation_rows("r")
        assert len(rows) == 2
        # The model genuinely violates b -> a: same b, different a.
        pos_a, pos_b = 0, 1
        (r1, r2) = sorted(rows)
        assert r1[pos_b] == r2[pos_b]
        assert r1[pos_a] != r2[pos_a]


class TestIndGoals:
    def test_ind_transitivity_established(self):
        database = db(("a", ("x",)), ("b", ("u",)), ("c", ("s",)))
        inds = [IND("a", ("x",), "b", ("u",)),
                IND("b", ("u",), "c", ("s",))]
        result = chase(database, [], inds, IND("a", ("x",), "c", ("s",)))
        assert result.outcome is ChaseOutcome.IMPLIED

    def test_ind_refuted(self):
        database = db(("a", ("x",)), ("b", ("u",)))
        inds = [IND("a", ("x",), "b", ("u",))]
        result = chase(database, [], inds, IND("b", ("u",), "a", ("x",)))
        assert result.outcome is ChaseOutcome.NOT_IMPLIED


class TestInteraction:
    def test_fd_ind_interaction(self):
        """FDs merging nulls can complete an IND goal."""
        database = db(("r", ("a", "b")), ("s", ("u",)))
        fds = [FD("r", frozenset("a"), frozenset("b"))]
        inds = [IND("r", ("b",), "s", ("u",))]
        # r[a] sub s[u]? Not implied: a and b are unrelated values.
        result = chase(database, fds, inds, IND("r", ("a",), "s", ("u",)))
        assert result.outcome is ChaseOutcome.NOT_IMPLIED

    def test_budget_exhaustion_reports_unknown(self):
        """A growing chase (the classic FD+IND non-termination) stops
        honestly at the budget."""
        database = db(("r", ("a", "b")))
        # r[b] sub r[a] with a key forces an infinite forward chain.
        fds = [FD("r", frozenset("a"), frozenset(("a", "b")))]
        inds = [IND("r", ("b",), "r", ("a",))]
        result = chase(database, fds, inds,
                       IND("r", ("a",), "r", ("b",)),
                       max_steps=25, max_rows=100)
        assert result.outcome in (ChaseOutcome.UNKNOWN,
                                  ChaseOutcome.NOT_IMPLIED)

    def test_steps_reported(self):
        database = db(("r", ("a",)))
        result = chase(database, [], [], IND("r", ("a",), "r", ("a",)))
        assert result.outcome is ChaseOutcome.IMPLIED
        assert result.steps >= 1


class TestTerminationAnalysis:
    def test_acyclic_ind_set_terminates(self):
        from repro.relational.chase import chase_terminates
        database = db(("a", ("x",)), ("b", ("u", "w")), ("c", ("s",)))
        inds = [IND("a", ("x",), "b", ("u",)),
                IND("b", ("u",), "c", ("s",))]
        assert chase_terminates(database, inds)

    def test_gap_instance_flagged(self):
        """The Theorem 3.6 divergence: r[b] ⊆ r[a] with a fresh-null
        position — a cycle through an existential edge."""
        from repro.relational.chase import chase_terminates
        database = db(("r", ("a", "b")))
        inds = [IND("r", ("b",), "r", ("a",))]
        assert not chase_terminates(database, inds)

    def test_full_cover_self_ind_is_safe(self):
        """A self-IND covering all attributes copies values only — no
        existential edge, hence weakly acyclic."""
        from repro.relational.chase import chase_terminates
        database = db(("r", ("a", "b")))
        inds = [IND("r", ("a", "b"), "r", ("b", "a"))]
        assert chase_terminates(database, inds)

    def test_prediction_matches_behaviour(self):
        """Where the analysis promises termination, the chase delivers a
        definite answer; where it warns, the gap instance indeed hits
        the budget."""
        from repro.relational.chase import chase_terminates
        database = db(("r", ("a", "b")))
        safe_inds = [IND("r", ("a", "b"), "r", ("b", "a"))]
        assert chase_terminates(database, safe_inds)
        result = chase(database, [], safe_inds,
                       IND("r", ("b",), "r", ("a",)), max_steps=500)
        assert result.outcome is not ChaseOutcome.UNKNOWN
        risky = [IND("r", ("b",), "r", ("a",))]
        fds = [FD("r", frozenset("a"), frozenset(("a", "b")))]
        assert not chase_terminates(database, risky)
        diverging = chase(database, fds, risky,
                          IND("r", ("a",), "r", ("b",)),
                          max_steps=30, max_rows=100)
        assert diverging.outcome is ChaseOutcome.UNKNOWN
