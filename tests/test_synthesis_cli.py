"""Tests for ``repro-xic synth``, ``lint --witness``, and the shared
satisfiability core behind ``repro-xic consistent``.

Also carries the fixture verdict guard: every checked-in ``.dtdc``
must earn a *definitive* SAT/UNSAT verdict (or be rejected as
unparseable) — an UNKNOWN on a fixture means the synthesis machinery
regressed on a schema it used to decide.
"""

import json
import pathlib

import pytest

from repro.cli.main import main
from repro.dtd.validate import validate
from repro.synthesis import Verdict, check_satisfiability
from repro.xmlio.dtdparse import parse_dtdc
from repro.xmlio.parser import parse_document

REPO = pathlib.Path(__file__).resolve().parent.parent
ALL_SCHEMAS = sorted(
    list((REPO / "tests" / "fixtures").glob("*.dtdc"))
    + list((REPO / "examples").glob("*.dtdc")))


def fixture(name: str) -> str:
    return str(REPO / "tests" / "fixtures" / name)


class TestSynthText:
    def test_sat_prints_witness(self, capsys):
        assert main(["synth", fixture("book.dtdc")]) == 0
        out = capsys.readouterr().out
        assert "SAT" in out
        assert "<book>" in out and "isbn=" in out

    def test_unsat_prints_core(self, capsys):
        assert main(["synth", fixture("inconsistent.dtdc")]) == 1
        out = capsys.readouterr().out
        assert "UNSAT" in out
        assert "a.r sub b.id" in out and "a.r sub c.id" in out

    def test_missing_file_exits_two(self):
        assert main(["synth", "/no/such/schema.dtdc"]) == 2

    def test_unparseable_schema_exits_two(self, tmp_path):
        bad = tmp_path / "bad.dtdc"
        bad.write_text("this is not a DTD at all")
        assert main(["synth", str(bad)]) == 2


class TestSynthJson:
    def test_sat_payload(self, capsys):
        assert main(["synth", fixture("book.dtdc"),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "sat"
        assert payload["schema"].endswith("book.dtdc")
        assert payload["witness"].lstrip().startswith("<book>")
        assert set(payload["exercised"]) \
            == {"entry.isbn -> entry", "section.sid -> section",
                "ref.to subS entry.isbn"}
        assert all(payload["exercised"].values())

    def test_unsat_payload(self, capsys):
        assert main(["synth", fixture("inconsistent.dtdc"),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "unsat"
        assert payload["witness"] is None
        assert sorted(payload["unsat_core"]["constraints"]) \
            == ["a.r sub b.id", "a.r sub c.id"]

    def test_per_constraint(self, capsys):
        assert main(["synth", fixture("book.dtdc"), "--format", "json",
                     "--per-constraint"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rows = payload["per_constraint"]
        assert len(rows) == 3
        assert all(row["witness"] for row in rows)
        assert all(row["exercised"] for row in rows)


class TestSynthWitnessFile:
    def test_witness_file_validates_clean(self, tmp_path, capsys):
        out_path = tmp_path / "witness.xml"
        assert main(["synth", fixture("book.dtdc"),
                     "--witness", str(out_path)]) == 0
        dtd = parse_dtdc(
            pathlib.Path(fixture("book.dtdc")).read_text())
        tree = parse_document(out_path.read_text(), dtd.structure)
        report = validate(tree, dtd)
        assert report.ok and not list(report.violations)

    def test_no_witness_file_on_unsat(self, tmp_path, capsys):
        out_path = tmp_path / "witness.xml"
        assert main(["synth", fixture("inconsistent.dtdc"),
                     "--witness", str(out_path)]) == 1
        assert not out_path.exists()


class TestLintWitness:
    def test_inconsistent_gets_core_and_repaired_witness(self, capsys):
        assert main(["lint", fixture("inconsistent.dtdc"),
                     "--witness", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        incons = [d for d in payload["diagnostics"]
                  if d["code"] == "XIC303"]
        assert incons
        assert any("unsat core" in (d.get("evidence_note") or "")
                   for d in incons)

    def test_divergent_gets_prefix_document(self, capsys):
        assert main(["lint", fixture("divergent.dtdc"),
                     "--witness", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        diverge = [d for d in payload["diagnostics"]
                   if d["code"] == "XIC302" and d.get("evidence")]
        assert diverge
        assert "<tau" in diverge[0]["evidence"]

    def test_text_mode_prints_evidence_blocks(self, capsys):
        assert main(["lint", fixture("divergent.dtdc"),
                     "--witness"]) == 1
        out = capsys.readouterr().out
        assert "evidence" in out and "<tau" in out

    def test_without_flag_no_evidence(self, capsys):
        assert main(["lint", fixture("divergent.dtdc"),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert all("evidence" not in d for d in payload["diagnostics"])


class TestLintUnknownCodes:
    def test_unknown_select_exits_two(self, capsys):
        assert main(["lint", fixture("clean.dtdc"),
                     "--select", "XIC999"]) == 2
        assert "XIC999" in capsys.readouterr().err

    def test_unknown_ignore_exits_two(self, capsys):
        assert main(["lint", fixture("clean.dtdc"),
                     "--ignore", "XIC404"]) == 2
        assert "XIC404" in capsys.readouterr().err

    def test_known_prefix_still_selects(self, capsys):
        # Family prefixes stay valid selectors.
        assert main(["lint", fixture("divergent.dtdc"),
                     "--select", "XIC3"]) == 1

    def test_mixed_known_unknown_is_rejected(self, capsys):
        assert main(["lint", fixture("clean.dtdc"),
                     "--select", "XIC3,XIC909"]) == 2
        assert "XIC909" in capsys.readouterr().err


class TestConsistentAgreement:
    def test_consistent_routes_through_shared_core(self, capsys):
        assert main(["consistent", fixture("clean.dtdc"),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["consistent"] is True
        assert payload["verdict"] == "sat"

    def test_inconsistent_reports_core(self, capsys):
        assert main(["consistent", fixture("inconsistent.dtdc"),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["consistent"] is False
        assert payload["unsat_core"]["constraints"]

    @pytest.mark.parametrize("path", ALL_SCHEMAS, ids=lambda p: p.name)
    def test_consistent_and_synth_agree(self, path, capsys):
        consistent = main(["consistent", str(path)])
        capsys.readouterr()
        synth = main(["synth", str(path)])
        capsys.readouterr()
        if consistent == 2 or synth == 2:
            assert consistent == synth == 2
        else:
            # consistent: 0 = SAT, 1 = UNSAT; synth must match.
            assert synth == consistent


class TestFixtureVerdictGuard:
    @pytest.mark.parametrize("path", ALL_SCHEMAS, ids=lambda p: p.name)
    def test_every_schema_gets_a_definitive_verdict(self, path):
        try:
            dtd = parse_dtdc(path.read_text(), check=False)
        except Exception:
            return  # rejected at parse time: that is definitive too
        report = check_satisfiability(dtd)
        assert report.verdict in (Verdict.SAT, Verdict.UNSAT), path.name
        if report.verdict is Verdict.SAT:
            assert report.witness is not None
            assert validate(report.witness, dtd).ok
        else:
            assert report.core is not None
