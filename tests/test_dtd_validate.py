"""Unit tests for document validity (Definition 2.4)."""

import pytest

from repro.datamodel import TreeBuilder
from repro.dtd import DTDC, validate
from repro.dtd.validate import validate_strict, validate_structure
from repro.errors import ValidationError
from repro.workloads import book_document, book_dtdc


def break_tree(mutator):
    """Apply a mutator to a fresh book document and return the report."""
    dtd = book_dtdc()
    doc = book_document()
    mutator(doc)
    return validate(doc, dtd)


class TestStructural:
    def test_valid_book(self, book):
        dtd, doc = book
        report = validate(doc, dtd)
        assert report.ok
        assert bool(report)

    def test_wrong_root(self, book_schema):
        b = TreeBuilder("entry")
        report = validate_structure(b.tree, book_schema.structure)
        assert any(v.code == "root" for v in report)

    def test_undeclared_element(self):
        def mutate(doc):
            doc.root.append(doc.create("alien"))
        report = break_tree(mutate)
        assert any(v.code == "element" for v in report)

    def test_content_model_violation(self):
        def mutate(doc):
            # A second entry violates (entry, author*, section*, ref).
            extra = doc.create("entry")
            extra.set_attribute("isbn", "x")
            doc.root.append(extra)
        report = break_tree(mutate)
        assert any(v.code == "content-model" for v in report)

    def test_content_model_diagnostics(self):
        def mutate(doc):
            doc.root.append(doc.create("author"))  # author after ref
        report = break_tree(mutate)
        msgs = [v.message for v in report.by_code("content-model")]
        assert msgs and "stuck after" in msgs[0]

    def test_missing_attribute(self):
        def mutate(doc):
            doc.ext("entry")[0].del_attribute("isbn")
        report = break_tree(mutate)
        assert any("missing attribute" in v.message for v in report)

    def test_undeclared_attribute(self):
        def mutate(doc):
            doc.ext("entry")[0].set_attribute("extra", "x")
        report = break_tree(mutate)
        assert any("undeclared attribute" in v.message for v in report)

    def test_single_valued_arity(self):
        def mutate(doc):
            doc.ext("entry")[0].set_attribute("isbn", ["a", "b"])
        report = break_tree(mutate)
        assert any("holds 2 values" in v.message for v in report)


class TestConstraintsDuringValidation:
    def test_key_violation_reported(self):
        def mutate(doc):
            sections = doc.ext("section")
            sections[1].set_attribute("sid", sections[0].single("sid"))
        report = break_tree(mutate)
        assert any(v.code == "key" for v in report)

    def test_set_fk_violation_reported(self):
        def mutate(doc):
            doc.ext("ref")[0].set_attribute("to", ["nowhere"])
        report = break_tree(mutate)
        assert any(v.code == "set-foreign-key" for v in report)

    def test_breakdown_properties(self):
        def mutate(doc):
            doc.ext("ref")[0].set_attribute("to", ["nowhere"])
            doc.ext("entry")[0].del_attribute("isbn")
        report = break_tree(mutate)
        assert report.structural
        assert report.constraint


class TestStrict:
    def test_strict_passes_silently(self, book):
        dtd, doc = book
        validate_strict(doc, dtd)

    def test_strict_raises_with_report(self):
        dtd = book_dtdc()
        doc = book_document()
        doc.ext("ref")[0].set_attribute("to", ["nowhere"])
        with pytest.raises(ValidationError) as exc:
            validate_strict(doc, dtd)
        assert not exc.value.report.ok


class TestDtdcClass:
    def test_language_detection(self, book_schema, persondept):
        from repro.constraints import Language
        assert book_schema.language is Language.LU
        dtd, _doc = persondept
        assert dtd.language is Language.LID

    def test_with_constraints_rechecks(self, book_schema):
        from repro.constraints import UnaryKey, attr
        from repro.errors import ConstraintError
        with pytest.raises(ConstraintError):
            book_schema.with_constraints(
                [UnaryKey("entry", attr("ghost"))])

    def test_add_constraint_text(self, book_schema):
        richer = book_schema.add_constraint_text(
            "section.<title> -> section")
        assert len(richer.constraints) == \
            len(book_schema.constraints) + 1

    def test_describe(self, book_schema):
        text = book_schema.describe()
        assert "entry.isbn -> entry" in text
        assert "P(book)" in text


class TestLint:
    def test_deterministic_models_clean(self, book_schema):
        from repro.dtd.validate import lint_structure
        assert lint_structure(book_schema.structure) == []

    def test_ambiguous_model_flagged(self):
        from repro.dtd import DTDStructure
        from repro.dtd.validate import lint_structure
        s = DTDStructure("r")
        s.define_element("r", "((a, b) | (a, c))")
        s.define_element("a", "EMPTY")
        s.define_element("b", "EMPTY")
        s.define_element("c", "EMPTY")
        warnings = lint_structure(s)
        assert len(warnings) == 1
        assert "'r'" in warnings[0]
