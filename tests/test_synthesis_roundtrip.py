"""Property-based round trips for witness synthesis.

Random satisfiable schemas must yield witnesses every pipeline agrees
are clean: batch validation, the streaming validator over the
serialized text, and a DocumentSession replay — with byte-identical
reports.  And on random *unsatisfiable* schemas, removing the reported
unsat core must restore satisfiability (the ISSUE acceptance bar).
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dtd.dtdc import DTDC
from repro.dtd.validate import validate
from repro.incremental.session import DocumentSession
from repro.stream import StreamValidator, compile_plan
from repro.synthesis import Verdict, check_satisfiability
from repro.workloads.generators import (
    random_check_sigma, random_satisfiable_dtdc, random_structure,
    random_valid_document,
)
from repro.xmlio import serialize
from repro.xmlio.parser import parse_document

seeds = st.integers(0, 2**20)


def _sat_instance(seed: int) -> "tuple[DTDC, object] | None":
    try:
        dtd = random_satisfiable_dtdc(seed=seed)
    except RuntimeError:  # no SAT sample within the attempt budget
        return None
    doc = random_valid_document(dtd, seed=seed)
    return None if doc is None else (dtd, doc)


class TestWitnessRoundTrip:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_witness_validates_clean_in_batch(self, seed):
        instance = _sat_instance(seed)
        assume(instance is not None)
        dtd, doc = instance
        report = validate(doc, dtd)
        assert report.ok and not list(report.violations)

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_streaming_report_is_byte_identical(self, seed):
        instance = _sat_instance(seed)
        assume(instance is not None)
        dtd, doc = instance
        text = serialize(doc)
        batch = validate(parse_document(text, dtd.structure), dtd)
        stream = StreamValidator(compile_plan(dtd)).validate_text(text)
        assert stream.to_json() == batch.to_json()
        assert stream.ok

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_session_replay_is_clean_and_identical(self, seed):
        instance = _sat_instance(seed)
        assume(instance is not None)
        dtd, doc = instance
        text = serialize(doc)
        tree = parse_document(text, dtd.structure)
        session = DocumentSession(tree, dtd.constraints, dtd.structure)
        first = session.validate()
        replay = session.revalidate() if hasattr(session, "revalidate") \
            else session.validate()
        assert first.ok
        assert [v.to_dict() for v in first.violations] \
            == [v.to_dict() for v in replay.violations]

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_check_satisfiability_witness_round_trips_through_text(
            self, seed):
        """The analysis's own witness survives serialize → parse →
        validate without picking up violations."""
        try:
            dtd = random_satisfiable_dtdc(seed=seed)
        except RuntimeError:
            assume(False)
        report = check_satisfiability(dtd)
        assert report.verdict is Verdict.SAT
        text = serialize(report.witness)
        reparsed = parse_document(text, dtd.structure)
        assert validate(reparsed, dtd).ok


def _unsat_schema(depth: int, fillers: int, benign: bool) -> str:
    """A randomized member of the UNSAT family: a *required* type ``a``
    whose IDREF attribute is included in the ID of two distinct types —
    the L_id multi-target degeneracy forces ``ext(a)`` empty, yet the
    content models force ``a`` to occur.  ``depth`` nests ``a`` under a
    chain, ``fillers`` adds harmless optional types, ``benign`` adds a
    consistent extra reference."""
    chain = [f"x{i}" for i in range(depth)]
    filler_types = [f"f{i}" for i in range(fillers)]
    root_word = ", ".join(
        [chain[0] if chain else "a", "b*", "c*"]
        + (["d*"] if benign else [])
        + [f"{f}*" for f in filler_types])
    lines = [f"<!ELEMENT db ({root_word})>"]
    for here, nxt in zip(chain, chain[1:] + ["a"]):
        lines.append(f"<!ELEMENT {here} ({nxt})>")
    lines += ["<!ELEMENT a (#PCDATA)>",
              "<!ATTLIST a r IDREF #REQUIRED>",
              "<!ELEMENT b (#PCDATA)>",
              "<!ATTLIST b oid ID #REQUIRED>",
              "<!ELEMENT c (#PCDATA)>",
              "<!ATTLIST c oid ID #REQUIRED>"]
    sigma = ["b.oid ->id b", "c.oid ->id c",
             "a.r sub b.id", "a.r sub c.id"]
    if benign:
        lines += ["<!ELEMENT d (#PCDATA)>",
                  "<!ATTLIST d oid ID #REQUIRED>",
                  "<!ATTLIST d ref IDREF #IMPLIED>"]
        sigma += ["d.oid ->id d", "d.ref sub b.id"]
    for f in filler_types:
        lines.append(f"<!ELEMENT {f} (#PCDATA)>")
    return "\n".join(lines) + "\n\n%% constraints\n" + "\n".join(sigma)


class TestUnsatCoreProperty:
    @given(st.integers(0, 2), st.integers(0, 3), st.booleans())
    @settings(max_examples=24, deadline=None)
    def test_core_removal_restores_sat(self, depth, fillers, benign):
        from repro.xmlio.dtdparse import parse_dtdc

        dtd = parse_dtdc(_unsat_schema(depth, fillers, benign),
                         check=False)
        report = check_satisfiability(dtd)
        assert report.verdict is Verdict.UNSAT
        core = report.core
        assert core is not None and core.constraints
        kept = tuple(c for c in dtd.constraints
                     if not any(c is m for m in core.constraints))
        repaired = check_satisfiability(
            DTDC(dtd.structure, kept, check=False))
        assert repaired.verdict is Verdict.SAT
        # The benign extras never land in the core.
        assert all(str(m).startswith("a.r sub ")
                   for m in core.constraints)

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_random_schemas_never_go_unknown_analytically(self, seed):
        """The analytic screen (no synthesis) is total: every
        well-formed random schema gets SAT or UNSAT, never a crash."""
        from repro.errors import ConstraintError

        structure = random_structure(seed, n_types=5)
        sigma = random_check_sigma(structure, seed, n_constraints=6)
        try:
            dtd = DTDC(structure, tuple(sigma))
        except ConstraintError:
            assume(False)
        report = check_satisfiability(dtd, synthesize=False)
        assert report.verdict in (Verdict.SAT, Verdict.UNSAT)
