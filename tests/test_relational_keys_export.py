"""Tests for relational keys/foreign keys (Cor 3.5/3.7/3.9) and the
relational -> XML export (the publisher/editor example)."""

import pytest

from repro.dtd import validate
from repro.errors import ImplicationError
from repro.relational import (
    RelationalForeignKey, RelationalKey, RelationalKeyFKEngine,
    export_database, export_schema,
)
from repro.relational.chase import ChaseOutcome
from repro.relational.keys import coincide_under_primary


class TestUnaryModes:
    def sigma(self):
        return [RelationalKey("s", frozenset("k")),
                RelationalForeignKey("r", ("x",), "s", ("k",))]

    def test_unary_primary_coincide(self, publisher):
        database, _c, _i = publisher
        engine = RelationalKeyFKEngine(database, self.sigma(),
                                       mode="unary-primary")
        phi = RelationalForeignKey("r", ("x",), "s", ("k",))
        assert engine.implies(phi)
        assert engine.finitely_implies(phi)

    def test_unary_divergence(self, publisher):
        database, _c, _i = publisher
        sigma = [RelationalKey("r", frozenset("a")),
                 RelationalKey("r", frozenset("b")),
                 RelationalForeignKey("r", ("a",), "r", ("b",))]
        engine = RelationalKeyFKEngine(database, sigma, mode="unary")
        phi = RelationalForeignKey("r", ("b",), "r", ("a",))
        assert not engine.implies(phi)
        assert engine.finitely_implies(phi)

    def test_unary_mode_rejects_composites(self, publisher):
        database, constraints, _i = publisher
        with pytest.raises(ImplicationError):
            RelationalKeyFKEngine(database, constraints, mode="unary")


class TestPrimaryMode:
    def test_publisher_example(self, publisher):
        database, constraints, _i = publisher
        engine = RelationalKeyFKEngine(database, constraints,
                                       mode="primary")
        assert engine.implies(
            RelationalKey("publisher", frozenset(("country", "pname"))))
        assert engine.implies(RelationalForeignKey(
            "editor", ("country", "pname"),
            "publisher", ("country", "pname")))
        # A misaligned self-inclusion is well-formed but not derivable.
        assert not engine.implies(RelationalForeignKey(
            "publisher", ("pname", "country"),
            "publisher", ("country", "pname")))
        # Targeting a non-primary key set is a restriction violation.
        from repro.errors import PrimaryKeyRestrictionError
        with pytest.raises(PrimaryKeyRestrictionError):
            engine.implies(RelationalForeignKey(
                "publisher", ("pname", "country"),
                "editor", ("pname", "country")))

    def test_cor_3_9_coincidence(self, publisher):
        database, constraints, _i = publisher
        queries = [
            RelationalKey("publisher", frozenset(("pname", "country"))),
            RelationalForeignKey("editor", ("pname", "country"),
                                 "publisher", ("pname", "country")),
        ]
        assert coincide_under_primary(database, constraints, queries)


class TestGeneralMode:
    def test_exact_methods_refuse(self, publisher):
        database, constraints, _i = publisher
        engine = RelationalKeyFKEngine(database, constraints,
                                       mode="general")
        phi = RelationalKey("editor", frozenset(("name",)))
        with pytest.raises(ImplicationError):
            engine.implies(phi)
        with pytest.raises(ImplicationError):
            engine.finitely_implies(phi)

    def test_chase_answers(self, publisher):
        database, constraints, _i = publisher
        engine = RelationalKeyFKEngine(database, constraints,
                                       mode="general")
        assert engine.chase_implies(
            RelationalKey("editor", frozenset(("name",)))).outcome is \
            ChaseOutcome.IMPLIED
        refuted = engine.chase_implies(
            RelationalKey("editor", frozenset(("pname",))))
        assert refuted.outcome is ChaseOutcome.NOT_IMPLIED

    def test_dependency_translation(self, publisher):
        database, constraints, _i = publisher
        engine = RelationalKeyFKEngine(database, constraints,
                                       mode="general")
        fds, inds = engine.to_dependencies()
        assert len(fds) == 2 and len(inds) == 1
        assert fds[0].rhs == frozenset(("pname", "country", "address"))


class TestExport:
    def test_schema_shape(self, publisher):
        database, constraints, _i = publisher
        dtd = export_schema(database, constraints)
        s = dtd.structure
        assert s.root == "db"
        assert {"publishers", "publisher", "editors", "editor"} <= \
            s.element_types
        assert s.subelements("publisher") == \
            {"pname", "country", "address"}
        strs = set(map(str, dtd.constraints))
        assert "publisher[<country>, <pname>] -> publisher" in strs

    def test_export_valid_document(self, publisher):
        database, constraints, instance = publisher
        dtd, tree = export_database(instance, constraints)
        report = validate(tree, dtd)
        assert report.ok, str(report)

    def test_export_detects_violations(self, publisher):
        database, constraints, instance = publisher
        # A dangling editor breaks the composite foreign key.
        instance.add_row("editor", {"name": "Rogue", "pname": "Ghost",
                                    "country": "ZZ"})
        dtd, tree = export_database(instance, constraints)
        report = validate(tree, dtd)
        assert any(v.code == "foreign-key" for v in report)

    def test_key_violation_survives_export(self, publisher):
        database, constraints, instance = publisher
        instance.add_row("publisher", {
            "pname": "Publisher 0", "country": "US",
            "address": "different address"})
        dtd, tree = export_database(instance, constraints)
        assert any(v.code == "key" for v in validate(tree, dtd))
