"""Shared fixtures: the paper's running examples."""

import pytest

from repro.workloads import (
    book_document, book_dtdc, person_dept_export, person_dept_schema,
    person_dept_store, publisher_constraints, publisher_database,
    publisher_instance,
)


@pytest.fixture(autouse=True)
def _codegen_cache_in_tmp(tmp_path_factory, monkeypatch):
    """Keep the codegen source cache out of the developer's real
    ``~/.cache`` for the whole suite (one shared per-session directory,
    so cross-test reuse still exercises the disk-cache hit path)."""
    monkeypatch.setenv(
        "REPRO_CODEGEN_CACHE",
        str(tmp_path_factory.getbasetemp() / "codegen-cache"))
    yield


@pytest.fixture
def book():
    """(DTD^C, document) for the §2.4 book example."""
    return book_dtdc(), book_document()


@pytest.fixture
def book_schema():
    return book_dtdc()


@pytest.fixture
def persondept():
    """(DTD^C, document) for the §2.4 person/dept export D_o."""
    return person_dept_export()


@pytest.fixture
def persondept_store():
    return person_dept_store()


@pytest.fixture
def persondept_schema():
    return person_dept_schema()


@pytest.fixture
def publisher():
    """(database, constraints, instance) for the publisher example."""
    return (publisher_database(), publisher_constraints(),
            publisher_instance())
