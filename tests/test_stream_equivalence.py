"""Property-based equivalence: streaming vs batch vs incremental.

The streaming validator's whole contract is that nobody can tell it
apart from the batch pipeline.  These tests drive that with hypothesis
over the workload generators: random structures, random Σ aligned to
them, random documents (structurally valid by construction but riddled
with constraint violations by design), and assert byte-for-byte equal
reports — ``to_json()`` includes violation order, so any drift in
evaluator feeding order fails here.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.corpus import CorpusValidator
from repro.constraints.checker import check
from repro.dtd.dtdc import DTDC
from repro.dtd.validate import validate
from repro.incremental.session import DocumentSession
from repro.stream import StreamValidator, compile_plan
from repro.workloads.generators import (
    random_check_sigma, random_corpus, random_document, random_structure,
)
from repro.xmlio import serialize
from repro.xmlio.parser import parse_document

seeds = st.integers(0, 2**31 - 1)


def _instance(seed: int) -> "tuple[DTDC, str] | None":
    """One (schema, document text) pair from the workload generators,
    or None when the sampled Σ is not well-formed for the structure
    (a foreign key referencing a non-key, say)."""
    from repro.errors import ConstraintError

    structure = random_structure(seed, n_types=5)
    sigma = random_check_sigma(structure, seed, n_constraints=6)
    try:
        dtd = DTDC(structure, sigma)
    except ConstraintError:
        return None
    text = serialize(random_document(structure, seed + 1,
                                     size_budget=80))
    return dtd, text


class TestStreamBatchEquivalence:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_report_is_byte_identical(self, seed):
        instance = _instance(seed)
        assume(instance is not None)
        dtd, text = instance
        batch = validate(parse_document(text, dtd.structure), dtd)
        stream = StreamValidator(compile_plan(dtd)).validate_text(text)
        assert stream.to_json() == batch.to_json()

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_codegen_report_is_byte_identical(self, seed):
        """The generated validator is indistinguishable too — same
        random instances, byte-for-byte equal reports over both the
        str scanner and the zero-copy bytes scanner."""
        from repro.codegen import CodegenValidator, CompileError
        from repro.server.registry import as_handle

        instance = _instance(seed)
        assume(instance is not None)
        dtd, text = instance
        handle = as_handle(dtd)
        try:
            cg = CodegenValidator(handle)
        except CompileError:
            assume(False)
        batch = validate(parse_document(text, dtd.structure), dtd)
        assert cg.validate_text(text).to_json() == batch.to_json()
        assert cg.validate_bytes(
            text.encode("utf-8")).to_json() == batch.to_json()

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_constraint_portion_matches_check(self, seed):
        """The Σ half of the streamed report equals a standalone
        ``check()`` — same violations, same order."""
        instance = _instance(seed)
        assume(instance is not None)
        dtd, text = instance
        tree = parse_document(text, dtd.structure)
        checked = check(tree, dtd.constraints, dtd.structure)
        stream = StreamValidator(compile_plan(dtd)).validate_text(text)
        assert [v.to_dict() for v in stream.constraint] \
            == [v.to_dict() for v in checked.violations]

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_matches_incremental_session(self, seed):
        """A DocumentSession built over the parsed tree reports the
        same Σ violations the stream does."""
        instance = _instance(seed)
        assume(instance is not None)
        dtd, text = instance
        tree = parse_document(text, dtd.structure)
        session = DocumentSession(tree, dtd.constraints, dtd.structure)
        stream = StreamValidator(compile_plan(dtd)).validate_text(text)
        assert [v.to_dict() for v in stream.constraint] \
            == [v.to_dict() for v in session.validate().violations]


class TestCorpusModeEquivalence:
    @given(st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_corpus_verdicts_identical(self, seed):
        dtd, docs = random_corpus(n_docs=6, doc_vertices=40,
                                  invalid_fraction=0.5, seed=seed)
        batch = CorpusValidator(dtd).validate(docs)
        stream = CorpusValidator(dtd, stream=True).validate(docs)
        assert stream.verdicts_json() == batch.verdicts_json()

    @given(st.integers(0, 2**16))
    @settings(max_examples=6, deadline=None)
    def test_corpus_codegen_verdicts_identical(self, seed):
        dtd, docs = random_corpus(n_docs=6, doc_vertices=40,
                                  invalid_fraction=0.5, seed=seed)
        batch = CorpusValidator(dtd).validate(docs)
        codegen = CorpusValidator(dtd, engine="codegen").validate(docs)
        assert codegen.verdicts_json() == batch.verdicts_json()
