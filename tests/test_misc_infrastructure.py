"""Tests for cross-cutting infrastructure: errors, derivations,
violation reports, matcher cache, CLI path-constraint parsing."""

import pytest

from repro.errors import (
    ConstraintError, ConstraintSyntaxError, DataModelError, ParseError,
    ReproError, SchemaError, ValidationError, XMLSyntaxError,
)
from repro.implication.result import Derivation, ImplicationResult, given


class TestErrorHierarchy:
    def test_everything_is_reproerror(self):
        for exc_type in (ParseError, XMLSyntaxError, ConstraintSyntaxError,
                         DataModelError, SchemaError, ConstraintError):
            assert issubclass(exc_type, ReproError)

    def test_parse_error_position_rendering(self):
        exc = ParseError("bad thing", line=3, column=7)
        assert "line 3" in str(exc)
        assert "column 7" in str(exc)
        assert exc.line == 3

    def test_one_catch_all(self):
        with pytest.raises(ReproError):
            raise XMLSyntaxError("boom")

    def test_validation_error_carries_report(self):
        from repro.constraints.violations import ViolationReport
        report = ViolationReport()
        report.add("key", "oops")
        exc = ValidationError(report)
        assert exc.report is report


class TestDerivations:
    def tree(self):
        leaf1 = given("a sub b")
        leaf2 = given("b sub c")
        return Derivation("a sub c", "UFK-trans", (leaf1, leaf2))

    def test_steps_order(self):
        d = self.tree()
        steps = d.steps()
        assert [s.rule for s in steps] == ["given", "given", "UFK-trans"]
        assert steps[-1] is d

    def test_pretty_indentation(self):
        text = self.tree().pretty()
        lines = text.splitlines()
        assert lines[0].startswith("a sub c")
        assert lines[1].startswith("  ")

    def test_result_explain(self):
        yes = ImplicationResult(True, derivation=self.tree())
        assert "UFK-trans" in yes.explain()
        no = ImplicationResult(False, reason="no path",
                               counterexample="M")
        assert "no path" in no.explain()
        assert "M" in no.explain()
        assert bool(yes) and not bool(no)


class TestViolationReports:
    def test_merge_and_by_code(self):
        from repro.constraints.violations import ViolationReport
        a = ViolationReport()
        a.add("key", "dup", "k1", ())
        b = ViolationReport()
        b.add("foreign-key", "dangle", "f1", ())
        a.merge(b)
        assert len(a) == 2
        assert len(a.by_code("key")) == 1
        assert not a.ok
        assert "2 violation(s)" in str(a)

    def test_vertices_accept_objects_and_ints(self):
        from repro.constraints.violations import ViolationReport
        from repro.datamodel import DataTree
        tree = DataTree("r")
        report = ViolationReport()
        report.add("x", "m", vertices=(tree.root, 7))
        assert report.violations[0].vertices == (tree.root.vid, 7)


class TestMatcherCache:
    def test_clear(self):
        from repro.regexlang import parse_regex
        from repro.regexlang.automaton import (
            clear_matcher_cache, matcher_for,
        )
        r = parse_regex("(a, b)")
        m1 = matcher_for(r)
        clear_matcher_cache()
        m2 = matcher_for(r)
        assert m1 is not m2


class TestCliPathParsing:
    def test_parse_path_constraint_forms(self):
        from repro.cli.main import _parse_path_constraint
        from repro.paths import PathFunctional, PathInclusion, PathInverse
        f = _parse_path_constraint("book.entry.isbn -> book.author")
        assert isinstance(f, PathFunctional)
        i = _parse_path_constraint("book.ref.to sub entry.ε")
        assert isinstance(i, PathInclusion)
        v = _parse_path_constraint("a.x inv b.y")
        assert isinstance(v, PathInverse)

    def test_functional_needs_one_element(self):
        from repro.cli.main import _parse_path_constraint
        with pytest.raises(ReproError):
            _parse_path_constraint("a.x -> b.y")

    def test_unparseable(self):
        from repro.cli.main import _parse_path_constraint
        with pytest.raises(ReproError):
            _parse_path_constraint("gibberish")


class TestPackageSurface:
    def test_all_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro
        assert repro.__version__.count(".") == 2

    def test_transform_surface(self):
        from repro import transform
        for name in transform.__all__:
            assert hasattr(transform, name), name
