"""Tests for :mod:`repro.synthesis` — satisfiability + witnesses.

The contract under test is the ISSUE acceptance bar: every SAT verdict
ships a witness document the validator accepts with **zero**
violations, and every UNSAT verdict ships an unsat core whose removal
makes the schema satisfiable.
"""

import pathlib

import pytest

from repro.constraints.checker import check
from repro.dtd.dtdc import DTDC
from repro.dtd.validate import validate
from repro.implication.lowering import lower_model
from repro.implication.models import AbstractModel
from repro.synthesis import (
    SkeletonBuilder, Verdict, check_satisfiability, generating_types,
    per_constraint_witnesses, reachable_types, synthesize_witness,
)
from repro.synthesis.reachability import has_word_over, word_with
from repro.synthesis.values import assign_values
from repro.xmlio.dtdparse import parse_dtd, parse_dtdc

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

SAT_FIXTURES = ["book.dtdc", "clean.dtdc", "divergent.dtdc",
                "redundant.dtdc"]


def load(name: str) -> DTDC:
    return parse_dtdc((FIXTURES / name).read_text(), check=False)


class TestReachability:
    STRUCTURE = """\
<!ELEMENT db (a, b*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (c)>
<!ELEMENT c (c)>
<!ELEMENT orphan (#PCDATA)>
"""

    def test_reachable_excludes_orphans(self):
        s = parse_dtd(self.STRUCTURE, root="db")
        assert reachable_types(s) == {"db", "a", "b", "c"}

    def test_generating_excludes_bottomless_recursion(self):
        # c only derives the infinite tree c(c(c(...))): not generating,
        # and b requires c so b is not generating either.
        s = parse_dtd(self.STRUCTURE, root="db")
        gen = generating_types(s)
        assert "c" not in gen and "b" not in gen
        assert {"db", "a", "orphan"} <= gen

    def test_generating_respects_exclusions(self):
        s = parse_dtd(self.STRUCTURE, root="db")
        assert "a" not in generating_types(s, excluded=frozenset(["a"]))
        # db *requires* a, so excluding a kills db too.
        assert "db" not in generating_types(s, excluded=frozenset(["a"]))

    def test_has_word_over_restriction(self):
        s = parse_dtd(self.STRUCTURE, root="db")
        model = s.content("db")  # (a, b*)
        assert has_word_over(model, frozenset(["a"]))
        assert not has_word_over(model, frozenset(["b"]))

    def test_word_with_packs_required_counts(self):
        s = parse_dtd("<!ELEMENT db (a, b*)>\n<!ELEMENT a EMPTY>\n"
                      "<!ELEMENT b EMPTY>", root="db")
        costs = {"a": 1.0, "b": 1.0}
        allowed = frozenset(["a", "b"])
        word = word_with(s.content("db"), {"b": 3}, costs, allowed)
        assert word is not None and word.count("b") == 3

    def test_word_with_unsatisfiable_count(self):
        s = parse_dtd("<!ELEMENT db (a)>\n<!ELEMENT a EMPTY>", root="db")
        assert word_with(s.content("db"), {"a": 2}, {"a": 1.0},
                         frozenset(["a"])) is None


class TestSkeletonBuilder:
    def test_minimal_build_validates_after_value_chase(self):
        # The skeleton realizes the content models; required attributes
        # arrive with the value chase.
        dtd = load("book.dtdc")
        tree = SkeletonBuilder(dtd.structure).build({})
        assign_values(tree, dtd)
        assert validate(tree, dtd).ok

    def test_multiplicities_are_met(self):
        dtd = load("book.dtdc")
        builder = SkeletonBuilder(dtd.structure)
        tree = builder.build({"author": 3, "section": 2})
        assert len(tree.ext("author")) >= 3
        assert len(tree.ext("section")) >= 2
        assign_values(tree, dtd)
        assert validate(tree, dtd).ok

    def test_impossible_multiplicity_is_refused(self):
        # entry occurs exactly once under the unique root and never
        # recurs: a second one cannot exist in any document.
        dtd = load("book.dtdc")
        assert SkeletonBuilder(dtd.structure).build({"entry": 2}) is None

    def test_root_cannot_be_doubled(self):
        dtd = load("book.dtdc")
        builder = SkeletonBuilder(dtd.structure)
        assert builder.build({"book": 2}) is None

    def test_recursive_growth(self):
        # e only recurs through its own star: growth must graft under
        # an existing e, not along the (saturated) root path.
        s = parse_dtd("<!ELEMENT db (e)>\n<!ELEMENT e (e*)>", root="db")
        tree = SkeletonBuilder(s).build({"e": 4})
        assert tree is not None and len(tree.ext("e")) >= 4

    def test_excluded_type_never_appears(self):
        dtd = load("book.dtdc")
        builder = SkeletonBuilder(dtd.structure,
                                  excluded=frozenset(["author"]))
        tree = builder.build({"section": 2})
        assert tree is not None and not tree.ext("author")
        assert len(tree.ext("section")) >= 2

    def test_excluding_a_required_type_kills_the_build(self):
        # ref is mandatory under book: excluding it leaves nothing.
        dtd = load("book.dtdc")
        builder = SkeletonBuilder(dtd.structure,
                                  excluded=frozenset(["ref"]))
        assert builder.build({}) is None


class TestSatVerdicts:
    @pytest.mark.parametrize("name", SAT_FIXTURES)
    def test_sat_witness_validates_clean(self, name):
        dtd = load(name)
        report = check_satisfiability(dtd)
        assert report.verdict is Verdict.SAT
        result = validate(report.witness, dtd)
        assert result.ok and not list(result.violations)

    @pytest.mark.parametrize("name", SAT_FIXTURES)
    def test_sat_witness_exercises_every_constraint(self, name):
        report = check_satisfiability(load(name))
        assert report.exercised
        assert all(report.exercised.values())

    def test_unsat_core_removal_restores_sat(self):
        dtd = load("inconsistent.dtdc")
        report = check_satisfiability(dtd)
        assert report.verdict is Verdict.UNSAT
        core = report.core
        assert core is not None and core.constraints
        kept = tuple(c for c in dtd.constraints
                     if not any(c is m for m in core.constraints))
        repaired = check_satisfiability(
            DTDC(dtd.structure, kept, check=False))
        assert repaired.verdict is Verdict.SAT

    def test_unsat_core_members_are_each_necessary(self):
        # A union of minimal conflict sets: putting any single core
        # member back into the repaired Σ must not re-break it on its
        # own unless its whole MUS comes back — but removing any one
        # member from Σ entirely must leave the rest of the core
        # insufficient only when the core is a single MUS.  The cheap,
        # always-true direction: the core is non-redundant, i.e. no
        # proper superset of (Σ ∖ core) obtained by re-adding *all*
        # core members is SAT.
        dtd = load("inconsistent.dtdc")
        report = check_satisfiability(dtd, synthesize=False)
        assert not report.satisfiable

    def test_structural_unsat_reports_productions(self):
        dtd = parse_dtdc("<!ELEMENT db (a)>\n<!ELEMENT a (a)>\n"
                         "%% constraints\n", check=False)
        report = check_satisfiability(dtd)
        assert report.verdict is Verdict.UNSAT
        assert report.core is not None
        assert "a" in report.core.productions
        assert not report.core.constraints

    def test_report_to_dict_is_json_shaped(self):
        report = check_satisfiability(load("book.dtdc"))
        payload = report.to_dict()
        assert payload["verdict"] == "sat"
        assert payload["witness_vertices"] == report.witness.size()
        unsat = check_satisfiability(load("inconsistent.dtdc")).to_dict()
        assert unsat["verdict"] == "unsat"
        assert unsat["unsat_core"]["constraints"]


class TestSynthesizeWitness:
    def test_sigma_is_fully_satisfied(self):
        dtd = load("redundant.dtdc")
        tree, exercised, _rounds = synthesize_witness(dtd)
        assert tree is not None
        assert check(tree, dtd.constraints, dtd.structure).ok
        assert set(exercised) == {str(c) for c in dtd.constraints}

    def test_per_constraint_witnesses(self):
        dtd = load("book.dtdc")
        rows = per_constraint_witnesses(dtd)
        assert len(rows) == len(dtd.constraints)
        for row in rows:
            assert row["witness"] is not None
            assert validate(row["witness"], dtd).ok

    def test_assign_values_reports_growth_hints_as_ints(self):
        dtd = load("book.dtdc")
        tree = SkeletonBuilder(dtd.structure).build(
            {c.element: 1 for c in dtd.constraints})
        hints = assign_values(tree, dtd)
        assert all(isinstance(n, int) for n in hints.values())


class TestLowerModel:
    def test_lowered_model_realizes_rows(self):
        dtd = load("clean.dtdc")
        model = AbstractModel()
        for i in range(3):
            model.add("person", oid=f"p{i}")
        model.add("dept", manager="p1")
        tree = lower_model(model, dtd.structure)
        assert tree is not None
        assert len(tree.ext("person")) >= 3
        assert {"p0", "p1", "p2"} <= tree.ext_values("person", "oid")

    def test_undeclared_type_is_rejected(self):
        dtd = load("clean.dtdc")
        model = AbstractModel()
        model.add("nonexistent")
        assert lower_model(model, dtd.structure) is None
