"""Tests for I_p: multi-attribute primary keys/foreign keys (§3.3,
Theorem 3.8, Corollary 3.9)."""

import pytest

from repro.constraints import ForeignKey, Key, UnaryKey, attr
from repro.errors import LanguageMismatchError, PrimaryKeyRestrictionError
from repro.implication.l_primary import LPrimaryEngine
from repro.workloads.generators import scaled_primary_chain


def publisher_sigma():
    return [
        Key("publisher", ("pname", "country")),
        Key("editor", ("name",)),
        ForeignKey("editor", ("pname", "country"),
                   "publisher", ("pname", "country")),
    ]


class TestRestriction:
    def test_two_keys_rejected(self):
        with pytest.raises(PrimaryKeyRestrictionError):
            LPrimaryEngine([Key("r", ("a",)), Key("r", ("b",))])

    def test_fk_target_must_match_primary(self):
        with pytest.raises(PrimaryKeyRestrictionError):
            LPrimaryEngine([
                Key("p", ("a", "b")),
                ForeignKey("e", ("x",), "p", ("a",)),
            ])

    def test_fk_can_introduce_the_primary(self):
        engine = LPrimaryEngine([ForeignKey("e", ("x",), "p", ("a",))])
        assert engine.implies(Key("p", ("a",)))

    def test_query_key_conflict_rejected(self):
        engine = LPrimaryEngine(publisher_sigma())
        with pytest.raises(PrimaryKeyRestrictionError):
            engine.implies(Key("publisher", ("pname",)))

    def test_query_fk_conflict_rejected(self):
        engine = LPrimaryEngine(publisher_sigma())
        with pytest.raises(PrimaryKeyRestrictionError):
            engine.implies(
                ForeignKey("editor", ("name",), "publisher", ("pname",)))


class TestAxioms:
    def test_keys_as_sets(self):
        engine = LPrimaryEngine(publisher_sigma())
        assert engine.implies(Key("publisher", ("country", "pname")))
        assert engine.implies(Key("editor", ("name",)))
        assert not engine.implies(Key("ghost", ("x",)))

    def test_pfk_k_derives_target_key(self):
        engine = LPrimaryEngine(
            [ForeignKey("e", ("x", "y"), "p", ("a", "b"))])
        assert engine.implies(Key("p", ("b", "a")))

    def test_pk_fk_reflexivity(self):
        engine = LPrimaryEngine([Key("p", ("a", "b"))])
        assert engine.implies(ForeignKey("p", ("a", "b"),
                                         "p", ("a", "b")))
        assert engine.implies(ForeignKey("p", ("b", "a"),
                                         "p", ("b", "a")))

    def test_pfk_perm(self):
        engine = LPrimaryEngine(publisher_sigma())
        assert engine.implies(
            ForeignKey("editor", ("country", "pname"),
                       "publisher", ("country", "pname")))
        # The *misaligned* permutation is NOT implied.
        assert not engine.implies(
            ForeignKey("editor", ("pname", "country"),
                       "publisher", ("country", "pname")))

    def test_pfk_trans(self):
        sigma = [
            Key("b", ("u", "v")), Key("c", ("s", "t")),
            ForeignKey("a", ("x", "y"), "b", ("u", "v")),
            ForeignKey("b", ("u", "v"), "c", ("s", "t")),
        ]
        engine = LPrimaryEngine(sigma)
        assert engine.implies(ForeignKey("a", ("x", "y"),
                                         "c", ("s", "t")))

    def test_trans_with_permuted_middle(self):
        sigma = [
            Key("b", ("u", "v")), Key("c", ("s", "t")),
            ForeignKey("a", ("x", "y"), "b", ("u", "v")),
            # Middle FK presented in the other order.
            ForeignKey("b", ("v", "u"), "c", ("t", "s")),
        ]
        engine = LPrimaryEngine(sigma)
        assert engine.implies(ForeignKey("a", ("x", "y"),
                                         "c", ("s", "t")))

    def test_trans_needs_key_shaped_middle(self):
        sigma = [
            Key("b", ("u", "v")), Key("c", ("s",)),
            ForeignKey("a", ("x", "y"), "b", ("u", "v")),
            ForeignKey("b", ("w",), "c", ("s",)),  # source not the key
        ]
        engine = LPrimaryEngine(sigma)
        assert not engine.implies(ForeignKey("a", ("x",), "c", ("s",)))

    def test_rotation_chain_composes(self):
        sigma, phi = scaled_primary_chain(7, width=3)
        engine = LPrimaryEngine(sigma)
        assert engine.implies(phi)
        # A wrong final alignment must not be implied.
        wrong = ForeignKey(phi.element, phi.fields, phi.target,
                           tuple(reversed(phi.target_fields)))
        if tuple(reversed(phi.target_fields)) != phi.target_fields:
            assert not engine.implies(wrong)

    def test_finite_coincides(self):
        engine = LPrimaryEngine(publisher_sigma())
        queries = [
            Key("publisher", ("country", "pname")),
            ForeignKey("editor", ("country", "pname"),
                       "publisher", ("country", "pname")),
            ForeignKey("publisher", ("pname", "country"),
                       "editor", ("pname", "country")),
        ]
        for phi in queries:
            try:
                assert bool(engine.implies(phi)) == \
                    bool(engine.finitely_implies(phi))
            except PrimaryKeyRestrictionError:
                pass

    def test_unary_lifting(self):
        engine = LPrimaryEngine([UnaryKey("p", attr("k"))])
        assert engine.implies(Key("p", ("k",)))
        assert engine.implies(UnaryKey("p", attr("k")))

    def test_rejects_lid(self):
        from repro.constraints import IDConstraint
        with pytest.raises(LanguageMismatchError):
            LPrimaryEngine([IDConstraint("a")])

    def test_derivation_output(self):
        engine = LPrimaryEngine(publisher_sigma())
        result = engine.implies(
            ForeignKey("editor", ("country", "pname"),
                       "publisher", ("country", "pname")))
        assert "PFK-perm" in result.derivation.pretty() or \
            "given" in result.derivation.pretty()

    def test_derivable_foreign_keys_listing(self):
        engine = LPrimaryEngine(publisher_sigma())
        fks = engine.derivable_foreign_keys()
        assert any(fk.element == "editor" and fk.target == "publisher"
                   for fk in fks)
