"""Unit tests for the textual constraint syntax."""

import pytest

from repro.constraints import (
    ForeignKey, IDConstraint, IDForeignKey, IDInverse,
    IDSetValuedForeignKey, Inverse, Key, SetValuedForeignKey,
    UnaryForeignKey, UnaryKey, attr, elem, parse_constraint,
    parse_constraints,
)
from repro.errors import ConstraintSyntaxError
from repro.workloads import book_dtdc


class TestBasicForms:
    def test_unary_key(self):
        c = parse_constraint("entry.isbn -> entry")
        assert c == UnaryKey("entry", attr("isbn"))

    def test_subelement_key(self):
        c = parse_constraint("person.<name> -> person")
        assert c == UnaryKey("person", elem("name"))

    def test_multi_key(self):
        c = parse_constraint("publisher[pname, country] -> publisher")
        assert c == Key("publisher", (attr("pname"), attr("country")))

    def test_singleton_bracket_key_becomes_unary(self):
        assert parse_constraint("r[a] -> r") == UnaryKey("r", attr("a"))

    def test_multi_fk(self):
        c = parse_constraint(
            "editor[pname, country] sub publisher[pname, country]")
        assert c == ForeignKey("editor", ("pname", "country"),
                               "publisher", ("pname", "country"))

    def test_unary_fk(self):
        c = parse_constraint("a.x sub b.y")
        assert c == UnaryForeignKey("a", attr("x"), "b", attr("y"))
        assert parse_constraint("a.x <= b.y") == c

    def test_set_fk(self):
        c = parse_constraint("ref.to subS entry.isbn")
        assert c == SetValuedForeignKey("ref", attr("to"),
                                        "entry", attr("isbn"))
        assert parse_constraint("ref.to <=s entry.isbn") == c

    def test_lu_inverse(self):
        c = parse_constraint(
            "dept(dname).has_staff inv person(name).in_dept")
        assert c == Inverse("dept", attr("dname"), attr("has_staff"),
                            "person", attr("name"), attr("in_dept"))


class TestLidForms:
    def test_id_constraint(self):
        c = parse_constraint("person.oid ->id person")
        assert c == IDConstraint("person")

    def test_id_fk(self):
        c = parse_constraint("dept.manager sub person.id")
        assert c == IDForeignKey("dept", attr("manager"), "person")

    def test_id_set_fk(self):
        c = parse_constraint("dept.has_staff subS person.id")
        assert c == IDSetValuedForeignKey("dept", attr("has_staff"),
                                          "person")

    def test_id_inverse(self):
        c = parse_constraint("dept.has_staff inv person.in_dept")
        assert c == IDInverse("dept", attr("has_staff"),
                              "person", attr("in_dept"))
        assert parse_constraint("dept.has_staff <-> person.in_dept") == c


class TestStructureResolution:
    def test_subelement_resolved_from_structure(self):
        dtd = book_dtdc()
        c = parse_constraint("section.title -> section", dtd.structure)
        assert c == UnaryKey("section", elem("title"))

    def test_attribute_wins_over_subelement(self):
        dtd = book_dtdc()
        c = parse_constraint("entry.isbn -> entry", dtd.structure)
        assert c == UnaryKey("entry", attr("isbn"))


class TestErrorsAndBlocks:
    def test_mismatched_key_types(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("a.x -> b")

    def test_garbage(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("this is not a constraint")

    def test_empty(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("   ")

    def test_block_with_comments(self):
        block = """
        # keys
        entry.isbn -> entry   # trailing comment
        section.sid -> section

        ref.to subS entry.isbn
        """
        out = parse_constraints(block)
        assert len(out) == 3

    def test_block_reports_line_number(self):
        with pytest.raises(ConstraintSyntaxError) as exc:
            parse_constraints("entry.isbn -> entry\nbroken line here")
        assert exc.value.line == 2

    def test_roundtrip_via_str(self):
        """str() of every form parses back to an equal constraint."""
        samples = [
            UnaryKey("entry", attr("isbn")),
            UnaryKey("person", elem("name")),
            Key("p", (attr("a"), attr("b"))),
            ForeignKey("e", ("a", "b"), "p", ("c", "d")),
            UnaryForeignKey("a", attr("x"), "b", attr("y")),
            SetValuedForeignKey("r", attr("to"), "e", attr("k")),
            Inverse("d", attr("dk"), attr("dv"), "p", attr("pk"),
                    attr("pv")),
            IDConstraint("person"),
            IDForeignKey("d", attr("m"), "p"),
            IDSetValuedForeignKey("d", attr("s"), "p"),
            IDInverse("d", attr("s"), "p", attr("t")),
        ]
        for c in samples:
            assert parse_constraint(str(c)) == c, str(c)
