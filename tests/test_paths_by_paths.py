"""Tests for the sound path-by-path prover (§5's open problem #2,
implemented as an explicitly incomplete engine)."""

import pytest

from repro.paths import (
    PathFunctional, PathInclusion, PathInverse, parse_path,
    path_constraint_holds,
)
from repro.paths.path_by_path import PathByPathProver


def inc(e, r, t, v):
    return PathInclusion(e, parse_path(r), t, parse_path(v))


def fun(e, r, v):
    return PathFunctional(e, parse_path(r), parse_path(v))


def inv(e, r, t, v):
    return PathInverse(e, parse_path(r), t, parse_path(v))


class TestInclusions:
    def test_reflexivity(self):
        prover = PathByPathProver([])
        assert prover.prove(inc("a", "x.y", "a", "x.y"))

    def test_stated(self):
        prover = PathByPathProver([inc("book", "ref.to", "entry", "")])
        assert prover.prove(inc("book", "ref.to", "entry", ""))

    def test_suffixing(self):
        prover = PathByPathProver([inc("book", "ref.to", "entry", "")])
        assert prover.prove(
            inc("book", "ref.to.title", "entry", "title"))

    def test_transitivity_with_suffixes(self):
        sigma = [inc("a", "p", "b", "q"), inc("b", "q.r", "c", "s")]
        prover = PathByPathProver(sigma)
        assert prover.prove(inc("a", "p.r", "c", "s"))
        assert prover.prove(inc("a", "p.r.z", "c", "s.z"))

    def test_not_proved(self):
        prover = PathByPathProver([inc("a", "p", "b", "q")])
        assert not prover.prove(inc("b", "q", "a", "p"))
        assert not prover.prove(inc("a", "z", "b", "q"))

    def test_soundness_on_documents(self):
        """Proved inclusions hold on every valid document (spot-check
        with the lid book of the §4 tests)."""
        from repro.workloads import book_document
        from tests.test_paths import lid_book
        dtd = lid_book()
        doc = book_document()
        sigma = [inc("book", "ref.to", "entry", "")]
        prover = PathByPathProver(sigma)
        phi = inc("book", "ref.to.title", "entry", "title")
        assert prover.prove(phi)
        assert path_constraint_holds(dtd, doc, sigma[0])
        assert path_constraint_holds(dtd, doc, phi)


class TestFunctionals:
    def test_reflexivity_and_stated(self):
        prover = PathByPathProver([fun("b", "k", "v")])
        assert prover.prove(fun("b", "k", "k"))
        assert prover.prove(fun("b", "k", "v"))

    def test_element_determination(self):
        # k determines the element itself => determines every path.
        prover = PathByPathProver([fun("b", "k", "")])
        assert prover.prove(fun("b", "k", "anything.at.all"))

    def test_right_weakening_not_assumed(self):
        """``k -> v`` does NOT entail ``k -> v.w`` in general: two
        elements may share their v-children's identity... they cannot —
        nodes() equality is identity-based, so equal v-sets DO give
        equal v.w-sets.  The rule is actually sound for *node* paths,
        but not when v is a value (string) step: equal string values do
        not determine the elements they came from.  The prover stays
        conservative and refuses."""
        prover = PathByPathProver([fun("b", "k", "v")])
        assert not prover.prove(fun("b", "k", "v.w"))

    def test_unrelated(self):
        prover = PathByPathProver([fun("b", "k", "v")])
        assert not prover.prove(fun("b", "x", "v"))


class TestInverses:
    def test_stated_and_flipped(self):
        base = inv("student", "taking", "course", "taken_by")
        prover = PathByPathProver([base])
        assert prover.prove(base)
        assert prover.prove(base.flipped())

    def test_composition(self):
        sigma = [inv("student", "taking", "course", "taken_by"),
                 inv("teacher", "teaching", "course", "taught_by")]
        prover = PathByPathProver(sigma)
        phi = inv("student", "taking.taught_by",
                  "teacher", "teaching.taken_by")
        assert prover.prove(phi)
        assert "inverse-composition" in \
            prover.prove(phi).derivation.pretty()

    def test_wrong_composition(self):
        sigma = [inv("student", "taking", "course", "taken_by"),
                 inv("teacher", "teaching", "course", "taught_by")]
        prover = PathByPathProver(sigma)
        assert not prover.prove(
            inv("student", "taking.taught_by",
                "teacher", "taken_by.teaching"))

    def test_rejects_non_path_constraints(self):
        with pytest.raises(TypeError):
            PathByPathProver(["nonsense"])
        with pytest.raises(TypeError):
            PathByPathProver([]).prove("nonsense")
