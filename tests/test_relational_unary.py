"""Tests for the CKV unary FD+IND engine (the §3.2 substrate)."""

import pytest

from repro.errors import ImplicationError
from repro.relational.chase import ChaseOutcome, chase
from repro.relational.fd import FD
from repro.relational.ind import IND
from repro.relational.schema import Database, RelationSchema
from repro.relational.unary import UnaryDependencyEngine, UnaryFD, UnaryIND


def fd(r, a, b):
    return UnaryFD(r, a, b)


def ind(r, a, s, b):
    return UnaryIND(r, a, s, b)


class TestUnrestricted:
    def test_fd_transitivity(self):
        engine = UnaryDependencyEngine([fd("r", "a", "b"),
                                        fd("r", "b", "c")])
        assert engine.implies(fd("r", "a", "c"))
        assert not engine.implies(fd("r", "c", "a"))

    def test_fd_reflexivity(self):
        engine = UnaryDependencyEngine([])
        assert engine.implies(fd("r", "a", "a"))

    def test_ind_transitivity(self):
        engine = UnaryDependencyEngine([ind("r", "a", "s", "b"),
                                        ind("s", "b", "t", "c")])
        assert engine.implies(ind("r", "a", "t", "c"))
        assert not engine.implies(ind("t", "c", "r", "a"))

    def test_no_interaction_unrestricted(self):
        """CKV: without finiteness, FDs and INDs reason separately."""
        engine = UnaryDependencyEngine([
            fd("r", "a", "b"), ind("r", "b", "r", "a")])
        # Neither the reverse FD nor the reverse IND follows.
        assert not engine.implies(fd("r", "b", "a"))
        assert not engine.implies(ind("r", "a", "r", "b"))

    def test_rejects_other_inputs(self):
        with pytest.raises(ImplicationError):
            UnaryDependencyEngine(["garbage"])
        engine = UnaryDependencyEngine([])
        with pytest.raises(ImplicationError):
            engine.implies("garbage")


class TestFinite:
    def test_ckv_classic_cycle(self):
        """σ = {a -> b, R[b] ⊆ R[a]}: finitely, |π_b| ≤ |π_a| (FD) and
        |π_b| ≤ |π_a| (IND)… the two-edge cycle b ≤ a ≤ b? No — the FD
        gives |π_b| ≤ |π_a| and the IND gives |π_b| ≤ |π_a| as well, so
        no cycle; but σ = {a -> b, R[a] ⊆ R[b]} forces
        |π_b| ≤ |π_a| ≤ |π_b|: the FD becomes a bijection and the IND an
        equality."""
        engine = UnaryDependencyEngine([
            fd("r", "a", "b"), ind("r", "a", "r", "b")])
        assert not engine.implies(fd("r", "b", "a"))
        assert engine.finitely_implies(fd("r", "b", "a"))
        assert not engine.implies(ind("r", "b", "r", "a"))
        assert engine.finitely_implies(ind("r", "b", "r", "a"))

    def test_no_cycle_no_interaction(self):
        engine = UnaryDependencyEngine([
            fd("r", "a", "b"), ind("r", "b", "r", "a")])
        # Here both inequalities point the same way: no equality forced.
        assert not engine.finitely_implies(fd("r", "b", "a"))
        assert not engine.finitely_implies(ind("r", "a", "r", "b"))

    def test_cross_relation_cycle(self):
        # INDs form the cycle c ⊆ a ⊆ b ⊆ c (through two relations),
        # so all three projections have equal cardinality; the FD
        # b -> c along it becomes a bijection.
        sigma = [ind("r", "a", "s", "b"), fd("s", "b", "c"),
                 ind("s", "c", "r", "a"), ind("s", "b", "s", "c")]
        engine = UnaryDependencyEngine(sigma)
        # The reversed FD is a finite-only consequence...
        assert not engine.implies(fd("s", "c", "b"))
        assert engine.finitely_implies(fd("s", "c", "b"))
        # ... while the cycle INDs are already implied by transitivity.
        assert engine.implies(ind("s", "c", "s", "b"))

    def test_unrestricted_entails_finite(self):
        engine = UnaryDependencyEngine([
            fd("r", "a", "b"), fd("r", "b", "c"),
            ind("r", "c", "s", "x")])
        for phi in (fd("r", "a", "c"), ind("r", "c", "s", "x"),
                    fd("r", "c", "a"), ind("s", "x", "r", "c")):
            if engine.implies(phi):
                assert engine.finitely_implies(phi)

    def test_finite_refutations_match_chase(self):
        """Whenever the chase finds a finite counterexample, the finite
        decider must agree (soundness cross-check)."""
        database = Database([RelationSchema("r", ("a", "b", "c")),
                             RelationSchema("s", ("x", "y"))])
        sigma_pairs = [
            ([fd("r", "a", "b")], fd("r", "b", "a")),
            ([ind("r", "a", "s", "x")], ind("s", "x", "r", "a")),
            ([fd("r", "a", "b"), ind("r", "b", "r", "c")],
             fd("r", "a", "c")),
        ]
        for sigma, phi in sigma_pairs:
            engine = UnaryDependencyEngine(sigma)
            fds = [FD(d.relation, frozenset((d.lhs,)),
                      frozenset((d.rhs,)))
                   for d in sigma if isinstance(d, UnaryFD)]
            inds = [IND(d.relation, (d.attr,), d.target,
                        (d.target_attr,))
                    for d in sigma if isinstance(d, UnaryIND)]
            goal = FD(phi.relation, frozenset((phi.lhs,)),
                      frozenset((phi.rhs,))) \
                if isinstance(phi, UnaryFD) else \
                IND(phi.relation, (phi.attr,), phi.target,
                    (phi.target_attr,))
            result = chase(database, fds, inds, goal, max_steps=200)
            if result.outcome is ChaseOutcome.NOT_IMPLIED:
                assert not engine.finitely_implies(phi), str(phi)
            if result.outcome is ChaseOutcome.IMPLIED:
                assert engine.implies(phi), str(phi)

    def test_coincide_helper(self):
        engine = UnaryDependencyEngine([
            fd("r", "a", "b"), ind("r", "a", "r", "b")])
        assert not engine.problems_coincide_on(fd("r", "b", "a"))
        assert engine.problems_coincide_on(fd("r", "a", "b"))
