"""Request-scoped telemetry: trace context, events, exemplars, export.

Four layers, matching the v1.3 observability design:

1. :class:`~repro.obs.TraceContext` — the W3C-style ``traceparent``
   wire format, contextvars activation, child derivation;
2. span identity — roots pick up the ambient context, children
   inherit, ``Tracer.adopt`` re-parents worker spans by
   ``parent_span_id``, and id-free exports stay byte-identical;
3. :class:`~repro.obs.EventLog` (ring + durable JSONL + trace_id
   correlation) and histogram exemplars (latency spike -> trace);
4. the Chrome trace-event exporter and the end-to-end corpus run:
   ``jobs=2`` worker chunk spans share the request's trace_id, and the
   normalized span forest is deterministic run to run.
"""

import json

import pytest

from repro.obs import (
    EventLog,
    Observability,
    TraceContext,
    activate,
    current_context,
    parse_traceparent,
    trace_events,
    validate_trace_events,
)


# ----------------------------------------------------------------------
# 1. the context and its wire format
# ----------------------------------------------------------------------

class TestTraceContext:
    def test_new_has_fresh_random_ids(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert len(a.trace_id) == 32 and len(a.span_id) == 16
        int(a.trace_id, 16), int(a.span_id, 16)  # valid hex
        assert a.trace_id != b.trace_id
        assert a.sampled

    def test_traceparent_round_trip(self):
        ctx = TraceContext.new()
        wire = ctx.to_traceparent()
        assert wire == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        assert parse_traceparent(wire) == ctx

    def test_unsampled_round_trip(self):
        ctx = TraceContext.new(sampled=False)
        assert ctx.to_traceparent().endswith("-00")
        parsed = parse_traceparent(ctx.to_traceparent())
        assert parsed == ctx and not parsed.sampled

    @pytest.mark.parametrize("bad", [
        None, "", "garbage", "00-short-abcd-01",
        "00-" + "g" * 32 + "-" + "ab" * 8 + "-01",   # non-hex
        "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # unknown version
        "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",   # zero trace id
        "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # zero span id
        "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01-extra",
    ])
    def test_malformed_traceparent_is_ignored(self, bad):
        assert parse_traceparent(bad) is None

    def test_parse_is_case_and_space_tolerant(self):
        wire = "  00-" + "AB" * 16 + "-" + "CD" * 8 + "-01  "
        ctx = parse_traceparent(wire)
        assert ctx is not None
        assert ctx.trace_id == "ab" * 16

    def test_child_keeps_trace_changes_span(self):
        ctx = TraceContext.new()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        named = ctx.child("ee" * 8)
        assert named.span_id == "ee" * 8

    def test_activate_nests_and_restores(self):
        assert current_context() is None
        outer, inner = TraceContext.new(), TraceContext.new()
        with activate(outer):
            assert current_context() is outer
            with activate(inner):
                assert current_context() is inner
            assert current_context() is outer
        assert current_context() is None

    def test_activate_none_is_a_noop(self):
        with activate(None) as got:
            assert got is None
            assert current_context() is None


# ----------------------------------------------------------------------
# 2. span identity and re-parenting
# ----------------------------------------------------------------------

class TestSpanIdentity:
    def test_spans_outside_a_context_stay_id_free(self):
        obs = Observability()
        with obs.span("work"):
            with obs.span("inner"):
                pass
        d = obs.tracer.to_dicts()[0]
        assert "trace_id" not in d
        assert "trace_id" not in d["children"][0]
        assert sorted(d) == ["attributes", "children", "duration_s",
                             "name"]

    def test_root_picks_up_ambient_context(self):
        obs = Observability()
        ctx = TraceContext.new()
        with activate(ctx):
            with obs.span("work") as root:
                with obs.span("inner") as inner:
                    pass
        assert root.trace_id == ctx.trace_id
        assert root.parent_span_id == ctx.span_id
        assert root.span_id is not None
        assert inner.trace_id == ctx.trace_id
        assert inner.parent_span_id == root.span_id
        assert inner.span_id != root.span_id

    def test_unsampled_context_leaves_spans_id_free(self):
        obs = Observability()
        with activate(TraceContext.new(sampled=False)):
            with obs.span("work") as root:
                pass
        assert root.trace_id is None

    def test_span_context_names_itself_as_parent(self):
        obs = Observability()
        with activate(TraceContext.new()):
            with obs.span("work") as root:
                ctx = root.context()
        assert ctx.trace_id == root.trace_id
        assert ctx.span_id == root.span_id

    def test_adopt_reparents_by_parent_span_id(self):
        """The multiprocessing merge: a worker span naming its parent
        lands under that exact span, not under whatever is current."""
        coord = Observability()
        ctx = TraceContext.new()
        with activate(ctx):
            with coord.span("corpus.validate") as run_span:
                run_ctx = run_span.context()

        worker = Observability()
        with activate(run_ctx):
            with worker.span("corpus.chunk", pid=1234):
                pass
        exported = worker.tracer.to_dicts()
        assert exported[0]["parent_span_id"] == run_span.span_id

        coord.tracer.adopt(exported)
        assert len(coord.tracer.roots) == 1
        chunk = run_span.children[-1]
        assert chunk.name == "corpus.chunk"
        assert chunk.trace_id == ctx.trace_id
        assert chunk.parent is run_span

    def test_adopt_without_known_parent_falls_back(self):
        coord = Observability()
        orphan = {"name": "stray", "duration_s": 0.5, "attributes": {},
                  "children": [], "trace_id": "ab" * 16,
                  "span_id": "cd" * 8, "parent_span_id": "ef" * 8}
        with coord.span("host"):
            coord.tracer.adopt([dict(orphan)])
        host = coord.tracer.roots[0]
        assert [c.name for c in host.children] == ["stray"]
        # ... and with nothing open it becomes a root
        coord2 = Observability()
        coord2.tracer.adopt([dict(orphan)])
        assert [r.name for r in coord2.tracer.roots] == ["stray"]

    def test_id_round_trip_through_dicts(self):
        obs = Observability()
        with activate(TraceContext.new()):
            with obs.span("work"):
                with obs.span("inner"):
                    pass
        rebuilt = Observability()
        rebuilt.tracer.adopt(obs.tracer.to_dicts())
        a = json.dumps(obs.tracer.to_dicts(), sort_keys=True)
        b = json.dumps(rebuilt.tracer.to_dicts(), sort_keys=True)
        assert a == b


# ----------------------------------------------------------------------
# 3. the event log and exemplars
# ----------------------------------------------------------------------

class TestEventLog:
    def test_emit_shape_and_tail_order(self):
        log = EventLog()
        log.info("cache-hit", "warm", key="abc")
        log.warn("slow-request", "took long", ms=12.5)
        tail = log.tail()
        assert [e["code"] for e in tail] == ["cache-hit", "slow-request"]
        first = tail[0]
        assert first["level"] == "info"
        assert first["message"] == "warm"
        assert first["attrs"] == {"key": "abc"}
        assert first["trace_id"] is None
        assert isinstance(first["ts"], float)
        assert len(log) == 2 and log.emitted == 2 and log.dropped == 0

    def test_trace_id_comes_from_ambient_context(self):
        log = EventLog()
        ctx = TraceContext.new()
        with activate(ctx):
            log.info("inside")
        log.info("outside")
        inside, outside = log.tail()
        assert inside["trace_id"] == ctx.trace_id
        assert outside["trace_id"] is None

    def test_ring_drops_oldest(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.info("tick", str(i))
        assert [e["message"] for e in log.tail()] == ["2", "3", "4"]
        assert log.dropped == 2 and log.emitted == 5

    def test_level_filter(self):
        log = EventLog(level="warn")
        assert log.debug("noise") is None
        assert log.info("noise") is None
        assert log.warn("real") is not None
        assert log.error("real") is not None
        assert len(log) == 2

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown event level"):
            EventLog(level="loud")

    def test_durable_file_append(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path))
        with activate(TraceContext.new()):
            log.info("schema-load", "book v1", name="book")
        log.warn("slow-request", "slow", ms=999)
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        events = [json.loads(line) for line in lines]
        assert events[0]["code"] == "schema-load"
        assert events[0]["trace_id"] is not None
        assert events[1]["attrs"]["ms"] == 999
        # append mode: a reopened log extends the same file
        log2 = EventLog(path=str(path))
        log2.info("later")
        log2.close()
        assert len(path.read_text().splitlines()) == 3

    def test_absorb_and_counts(self):
        log = EventLog()
        log.absorb([{"ts": 1.0, "level": "warn", "code": "x",
                     "message": "", "trace_id": None, "attrs": {}}])
        log.info("y")
        counts = log.counts()
        assert counts["warn"] == 1 and counts["info"] == 1

    def test_observability_event_delegates(self):
        log = EventLog()
        obs = Observability(events=log)
        obs.event("cache-hit", "warm", key="k")
        obs.event("oops", level="error")
        assert [e["level"] for e in log.tail()] == ["info", "error"]

    def test_default_obs_drops_events(self):
        obs = Observability()
        assert obs.event("anything") is None
        assert not obs.events


class TestExemplars:
    def test_observe_with_trace_id_sets_exemplar(self):
        obs = Observability()
        hist = obs.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)                      # no exemplar
        hist.observe(0.5, trace_id="ab" * 16)   # bucket 1
        hist.observe(5.0, trace_id="cd" * 16)   # +Inf overflow
        assert hist.exemplars[0] is None
        assert hist.exemplars[1] == {"value": 0.5,
                                     "trace_id": "ab" * 16}
        assert hist.exemplars[-1] == {"value": 5.0,
                                      "trace_id": "cd" * 16}

    def test_exemplars_survive_export_merge(self):
        a = Observability()
        a.histogram("lat", buckets=(0.1, 1.0)).observe(
            0.5, trace_id="ab" * 16)
        b = Observability()
        b.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        b.absorb({"metrics": a.metrics.to_dicts()})
        hist = b.histogram("lat", buckets=(0.1, 1.0))
        assert hist.exemplars[1] == {"value": 0.5,
                                     "trace_id": "ab" * 16}

    def test_prometheus_bucket_line_carries_exemplar(self):
        obs = Observability()
        obs.histogram("lat", help="latency",
                      buckets=(0.1, 1.0)).observe(
                          0.5, trace_id="ab" * 16)
        text = obs.to_prometheus()
        line = next(line for line in text.splitlines()
                    if 'le="1"' in line)
        assert line.endswith(f'# {{trace_id="{"ab" * 16}"}} 0.5')

    def test_quantiles_interpolate(self):
        obs = Observability()
        hist = obs.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(0.5) == pytest.approx(2.0)
        # interpolation is clamped by the true largest observation
        assert hist.quantile(1.0) == pytest.approx(3.5)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        empty = obs.histogram("none", buckets=(1.0,))
        assert empty.quantile(0.5) is None

    def test_overflow_quantile_reports_max(self):
        obs = Observability()
        hist = obs.histogram("lat", buckets=(1.0,))
        hist.observe(10.0)
        assert hist.quantile(0.99) == 10.0

    def test_first_bucket_quantile_clamped_to_min(self):
        """The first bucket interpolates up from 0.0, so with a single
        observation of 0.9 against a 1.0 bound the raw estimate for the
        median lands at 0.45 — below every value ever observed.  The
        clamp must pull it up to the true minimum."""
        obs = Observability()
        hist = obs.histogram("lat", buckets=(1.0, 2.0))
        hist.observe(0.9)
        assert hist.quantile(0.5) == 0.9
        # ...while the rank-0 corner keeps its historical value
        assert hist.quantile(0.0) == 0.0


# ----------------------------------------------------------------------
# 4. trace-event export and the end-to-end corpus run
# ----------------------------------------------------------------------

class TestTraceEventExport:
    def _forest(self):
        obs = Observability()
        ctx = TraceContext.new()
        with activate(ctx):
            with obs.span("serve.validate", op="validate"):
                with obs.span("parse"):
                    pass
                with obs.span("check", pid=4242):
                    pass
        return obs, ctx

    def test_payload_is_valid_and_filtered(self):
        obs, ctx = self._forest()
        payload = trace_events(obs.tracer.roots, trace_id=ctx.trace_id)
        assert validate_trace_events(payload) == []
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in slices] \
            == ["serve.validate", "parse", "check"]
        assert {e["args"]["trace_id"] for e in slices} == {ctx.trace_id}
        # the worker pid becomes its own track, with process metadata
        assert {e["pid"] for e in slices} == {0, 4242}
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {0, 4242}
        assert payload["otherData"]["trace_id"] == ctx.trace_id
        assert payload["otherData"]["clock"] == "synthetic"

    def test_filter_excludes_other_traces(self):
        obs, ctx = self._forest()
        other = Observability()
        with activate(TraceContext.new()):
            with other.span("other"):
                pass
        roots = list(obs.tracer.roots) + list(other.tracer.roots)
        payload = trace_events(roots, trace_id=ctx.trace_id)
        names = [e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "X"]
        assert "other" not in names

    def test_parent_encloses_children_on_synthetic_timeline(self):
        payload = trace_events([{
            "name": "parent", "duration_s": 0.0, "attributes": {},
            "children": [
                {"name": "a", "duration_s": 0.25, "attributes": {},
                 "children": []},
                {"name": "b", "duration_s": 0.75, "attributes": {},
                 "children": []},
            ]}])
        slices = {e["name"]: e for e in payload["traceEvents"]
                  if e["ph"] == "X"}
        assert slices["parent"]["dur"] == pytest.approx(1e6)
        assert slices["a"]["ts"] == pytest.approx(0.0)
        assert slices["b"]["ts"] == pytest.approx(250000.0)
        assert validate_trace_events(payload) == []

    def test_validator_flags_problems(self):
        assert validate_trace_events([]) != []
        assert validate_trace_events({}) != []
        bad = {"traceEvents": [
            {"ph": "X", "ts": -1, "pid": "zero", "tid": 0},
            {"name": "q", "ph": "Q", "ts": 0, "pid": 0, "tid": 0},
        ]}
        problems = validate_trace_events(bad)
        assert any("missing 'name'" in p for p in problems)
        assert any("non-negative" in p for p in problems)
        assert any("pid" in p for p in problems)
        assert any("known phase" in p for p in problems)
        assert any("without dur" in p for p in problems)


def _normalize(span_dict):
    """Strip run-varying fields (times, random ids, pids), keep shape."""
    return {
        "name": span_dict["name"],
        "attributes": {k: v for k, v in span_dict["attributes"].items()
                       if k != "pid"},
        "has_ids": "trace_id" in span_dict,
        "children": sorted(
            (_normalize(c) for c in span_dict["children"]),
            key=lambda d: json.dumps(d, sort_keys=True)),
    }


class TestCorpusTracePropagation:
    """The pool-boundary crossing, via the public corpus API."""

    @pytest.fixture(scope="class")
    def corpus(self):
        from repro.workloads import random_corpus
        from repro.xmlio import serialize

        dtd, docs = random_corpus(n_docs=6, invalid_fraction=0.0, seed=3)
        return dtd, [(f"d{i}", serialize(t))
                     for i, t in enumerate(docs)]

    def _run(self, corpus, jobs):
        from repro import CorpusValidator

        dtd, docs = corpus
        obs = Observability()
        report = CorpusValidator(dtd, jobs=jobs, obs=obs).validate(docs)
        assert report.ok
        return obs

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_every_span_shares_one_trace_id(self, corpus, jobs):
        obs = self._run(corpus, jobs)
        roots = obs.tracer.roots
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "corpus.validate"
        ids = {s.trace_id for s in root.walk()}
        assert ids == {root.trace_id}
        assert root.trace_id is not None
        chunk_spans = [s for s in root.walk()
                       if s.name == "corpus.chunk"]
        assert chunk_spans, "worker chunk spans must come home"
        for span in chunk_spans:
            assert span.parent is root
            assert span.parent_span_id == root.span_id

    def test_jobs2_crosses_real_processes(self, corpus):
        obs = self._run(corpus, 2)
        import os

        root = obs.tracer.roots[0]
        pids = {s.attributes.get("pid")
                for s in root.walk() if s.name == "corpus.chunk"}
        assert os.getpid() not in pids  # genuinely another process

    def test_ambient_context_wins_over_fresh(self, corpus):
        ctx = TraceContext.new()
        with activate(ctx):
            obs = self._run(corpus, 2)
        assert obs.tracer.roots[0].trace_id == ctx.trace_id

    def test_normalized_forest_is_deterministic(self, corpus):
        """Same corpus, same jobs -> byte-identical normalized span
        forest, run to run (chunk order sorted away)."""
        blobs = set()
        for _ in range(2):
            obs = self._run(corpus, 2)
            forest = sorted(
                (_normalize(d) for d in obs.tracer.to_dicts()),
                key=lambda d: json.dumps(d, sort_keys=True))
            blobs.add(json.dumps(forest, sort_keys=True))
        assert len(blobs) == 1

    def test_export_loads_as_one_perfetto_trace(self, corpus):
        obs = self._run(corpus, 2)
        root = obs.tracer.roots[0]
        payload = trace_events(obs.tracer.roots,
                               trace_id=root.trace_id)
        assert validate_trace_events(payload) == []
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["args"]["trace_id"] for e in slices} \
            == {root.trace_id}
        assert len({e["pid"] for e in slices}) >= 2  # coord + worker
