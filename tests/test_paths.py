"""Tests for §4: paths, typing, evaluation, and the three implication
deciders (Props 4.1, 4.2, 4.3)."""

import pytest

from repro.datamodel import TreeBuilder
from repro.dtd import DTDC, DTDStructure
from repro.constraints.parser import parse_constraints
from repro.errors import PathSyntaxError
from repro.paths import (
    Path, PathFunctional, PathImplicationEngine, PathInclusion,
    PathInverse, parse_path, path_constraint_holds, type_of,
)
from repro.paths.evaluate import PathEvaluator
from repro.workloads import book_document, book_dtdc


def lid_book() -> DTDC:
    """The book DTD re-equipped with L_id constraints so IDREF
    dereferencing (§4.1) applies to ref.to."""
    s = DTDStructure("book")
    s.define_element("book", "(entry, author*, section*, ref)")
    s.define_element("entry", "(title, publisher)")
    s.define_element("section", "(title, (S + section)*)")
    s.define_element("ref", "EMPTY")
    s.define_element("author", "S*")
    s.define_element("title", "S*")
    s.define_element("publisher", "S*")
    s.define_attribute("entry", "isbn", kind="ID")
    s.define_attribute("section", "sid")
    s.define_attribute("ref", "to", set_valued=True, kind="IDREF")
    constraints = parse_constraints("""
        entry.isbn ->id entry
        section.sid -> section
        ref.to subS entry.id
    """, s)
    return DTDC(s, constraints)


def course_dtdc() -> DTDC:
    """The student/teacher/course example of Prop 4.3."""
    s = DTDStructure("school")
    s.define_element(
        "school", "(student*, teacher*, course*)")
    for t in ("student", "teacher", "course"):
        s.define_element(t, "EMPTY")
        s.define_attribute(t, "oid", kind="ID")
    s.define_attribute("student", "taking", set_valued=True, kind="IDREF")
    s.define_attribute("teacher", "teaching", set_valued=True,
                       kind="IDREF")
    s.define_attribute("course", "taken_by", set_valued=True,
                       kind="IDREF")
    s.define_attribute("course", "taught_by", set_valued=True,
                       kind="IDREF")
    constraints = parse_constraints("""
        student.oid ->id student
        teacher.oid ->id teacher
        course.oid ->id course
        student.taking inv course.taken_by
        teacher.teaching inv course.taught_by
    """, s)
    return DTDC(s, constraints)


class TestPathParsing:
    def test_basic(self):
        p = parse_path("book.entry.isbn")
        assert len(p) == 3
        assert str(p) == "book.entry.isbn"

    def test_epsilon(self):
        assert len(parse_path("")) == 0
        assert str(parse_path("ε")) == "ε"

    def test_forced_kinds(self):
        p = parse_path("@sid.<title>")
        assert p.steps[0].kind == "attribute"
        assert p.steps[1].kind == "element"

    def test_affixes(self):
        p = parse_path("a.b")
        q = parse_path("c")
        assert str(p.concat(q)) == "a.b.c"
        assert str(p.prefix(1)) == "a"
        assert str(p.suffix(1)) == "b"


class TestTyping:
    def test_element_steps(self):
        dtd = lid_book()
        assert type_of(dtd, "book", "entry") == "entry"
        assert type_of(dtd, "book", "entry.title") == "title"
        assert type_of(dtd, "book", "section.section") == "section"

    def test_atomic_attribute(self):
        dtd = lid_book()
        assert type_of(dtd, "book", "section.sid") == "S"

    def test_dereferencing_attribute(self):
        """The paper's point: ref.to hops to entry via the L_id FK."""
        dtd = lid_book()
        assert type_of(dtd, "book", "ref.to") == "entry"
        assert type_of(dtd, "book", "ref.to.title") == "title"

    def test_no_navigation_past_atomic(self):
        dtd = lid_book()
        with pytest.raises(PathSyntaxError):
            type_of(dtd, "book", "section.sid.zzz")

    def test_unknown_step(self):
        dtd = lid_book()
        with pytest.raises(PathSyntaxError):
            type_of(dtd, "book", "entry.ghost")


class TestEvaluation:
    def make(self):
        dtd = lid_book()
        doc = book_document()
        return dtd, doc, PathEvaluator(dtd, doc)

    def test_element_navigation(self):
        dtd, doc, ev = self.make()
        titles = ev.ext_of("book", parse_path("section.title"))
        assert {t.text for t in titles} == \
            {"Introduction", "A Syntax For Data"}

    def test_attribute_values(self):
        dtd, doc, ev = self.make()
        sids = ev.ext_of("section", parse_path("sid"))
        assert sids == {"intro", "audience", "syntax"}

    def test_dereference(self):
        dtd, doc, ev = self.make()
        entries = ev.ext_of("book", parse_path("ref.to"))
        assert {e.label for e in entries} == {"entry"}
        titles = ev.ext_of("book", parse_path("ref.to.title"))
        assert {t.text for t in titles} == {"Data on the Web"}

    def test_nodes_of_single_vertex(self):
        dtd, doc, ev = self.make()
        (ref,) = [v for v in doc.root.subtree() if v.label == "ref"]
        assert len(ev.nodes_of(ref, parse_path("to"))) == 1

    def test_recursive_descent_one_level(self):
        dtd, doc, ev = self.make()
        nested = ev.ext_of("book", parse_path("section.section"))
        assert {v.single("sid") for v in nested} == {"audience"}


class TestSatisfaction:
    def test_inclusion_holds(self):
        dtd = lid_book()
        doc = book_document()
        phi = PathInclusion("book", parse_path("ref.to"),
                            "entry", parse_path(""))
        assert path_constraint_holds(dtd, doc, phi)

    def test_functional_holds(self):
        dtd = lid_book()
        doc = book_document()
        phi = PathFunctional("book", parse_path("entry.isbn"),
                             parse_path("author"))
        assert path_constraint_holds(dtd, doc, phi)


class TestProp41Functional:
    def test_key_path_via_unique_subelement_and_key(self):
        dtd = lid_book()
        engine = PathImplicationEngine(dtd)
        # entry is a unique sub-element of book, isbn its ID.
        assert engine.is_key_path("book", parse_path("entry.isbn"))
        assert engine.is_key_path("book", parse_path("entry"))
        assert engine.is_key_path("book", parse_path(""))

    def test_non_key_paths(self):
        dtd = lid_book()
        engine = PathImplicationEngine(dtd)
        # author is starred: not unique.
        assert not engine.is_key_path("book", parse_path("author"))
        # section is starred too.
        assert not engine.is_key_path("book", parse_path("section.sid"))

    def test_paper_example(self):
        """φ = book.entry.isbn -> book.author (the §4.2 example)."""
        dtd = lid_book()
        engine = PathImplicationEngine(dtd)
        phi = PathFunctional("book", parse_path("entry.isbn"),
                             parse_path("author"))
        assert engine.implies_functional(phi)

    def test_reflexivity_case(self):
        dtd = lid_book()
        engine = PathImplicationEngine(dtd)
        phi = PathFunctional("book", parse_path("author"),
                             parse_path("author"))
        assert engine.implies_functional(phi)

    def test_not_implied(self):
        dtd = lid_book()
        engine = PathImplicationEngine(dtd)
        phi = PathFunctional("book", parse_path("author"),
                             parse_path("entry"))
        assert not engine.implies_functional(phi)

    def test_key_attribute_step_inside_path(self):
        dtd = lid_book()
        engine = PathImplicationEngine(dtd)
        # ref is unique; its 'to' attribute is NOT a key of ref.
        assert not engine.is_key_path("book", parse_path("ref.to"))


class TestProp42Inclusion:
    def test_paper_examples(self):
        dtd = lid_book()
        engine = PathImplicationEngine(dtd)
        assert engine.implies_inclusion(PathInclusion(
            "book", parse_path("ref.to"), "entry", parse_path("")))
        assert engine.implies_inclusion(PathInclusion(
            "book", parse_path("ref.to.title"),
            "entry", parse_path("title")))

    def test_typing_information_form(self):
        dtd = lid_book()
        engine = PathImplicationEngine(dtd)
        assert engine.implies_inclusion(PathInclusion(
            "book", parse_path("section.section"),
            "section", parse_path("")))

    def test_not_implied_wrong_type(self):
        dtd = lid_book()
        engine = PathImplicationEngine(dtd)
        assert not engine.implies_inclusion(PathInclusion(
            "book", parse_path("ref.to"), "section", parse_path("")))

    def test_not_implied_not_suffix(self):
        dtd = lid_book()
        engine = PathImplicationEngine(dtd)
        assert not engine.implies_inclusion(PathInclusion(
            "book", parse_path("entry.title"),
            "entry", parse_path("publisher")))

    def test_soundness_on_document(self):
        """Everything the decider calls implied must hold on the valid
        Figure 2 document."""
        dtd = lid_book()
        doc = book_document()
        engine = PathImplicationEngine(dtd)
        candidates = [
            PathInclusion("book", parse_path("ref.to"),
                          "entry", parse_path("")),
            PathInclusion("book", parse_path("ref.to.title"),
                          "entry", parse_path("title")),
            PathInclusion("book", parse_path("section.section"),
                          "section", parse_path("")),
            PathInclusion("book", parse_path("entry.title"),
                          "entry", parse_path("publisher")),
        ]
        for phi in candidates:
            if engine.implies_inclusion(phi):
                assert path_constraint_holds(dtd, doc, phi), str(phi)


class TestProp43Inverse:
    def test_basic_inverse_implied(self):
        dtd = course_dtdc()
        engine = PathImplicationEngine(dtd)
        phi = PathInverse("student", parse_path("taking"),
                          "course", parse_path("taken_by"))
        assert engine.implies_inverse(phi)
        assert engine.implies_inverse(phi.flipped())

    def test_paper_composition(self):
        """student.taking.taught_by ⇌ teacher.teaching.taken_by."""
        dtd = course_dtdc()
        engine = PathImplicationEngine(dtd)
        phi = PathInverse("student", parse_path("taking.taught_by"),
                          "teacher", parse_path("teaching.taken_by"))
        assert engine.implies_inverse(phi)

    def test_wrong_return_path(self):
        dtd = course_dtdc()
        engine = PathImplicationEngine(dtd)
        # Well-typed but not the inverse composition.
        phi = PathInverse("student", parse_path("taking.taught_by"),
                          "teacher", parse_path("teaching.taught_by"))
        assert not engine.implies_inverse(phi)
        # Ill-typed return paths are reported as not implied, not raised.
        bad = PathInverse("student", parse_path("taking.taught_by"),
                          "teacher", parse_path("taken_by.teaching"))
        assert not engine.implies_inverse(bad)

    def test_uncovered_step(self):
        dtd = course_dtdc()
        engine = PathImplicationEngine(dtd)
        phi = PathInverse("course", parse_path("taught_by"),
                          "student", parse_path("taking"))
        assert not engine.implies_inverse(phi)

    def test_length_mismatch(self):
        dtd = course_dtdc()
        engine = PathImplicationEngine(dtd)
        phi = PathInverse("student", parse_path("taking.taught_by"),
                          "teacher", parse_path("teaching"))
        assert not engine.implies_inverse(phi)

    def test_soundness_on_document(self):
        dtd = course_dtdc()
        b = TreeBuilder("school")
        b.leaf("student", oid="s1", taking=["c1"])
        b.leaf("teacher", oid="t1", teaching=["c1"])
        b.leaf("course", oid="c1", taken_by=["s1"], taught_by=["t1"])
        doc = b.tree
        from repro.dtd import validate
        assert validate(doc, dtd).ok
        engine = PathImplicationEngine(dtd)
        phi = PathInverse("student", parse_path("taking.taught_by"),
                          "teacher", parse_path("teaching.taken_by"))
        assert engine.implies_inverse(phi)
        assert path_constraint_holds(dtd, doc, phi)

    def test_dispatch(self):
        dtd = course_dtdc()
        engine = PathImplicationEngine(dtd)
        phi = PathInverse("student", parse_path("taking"),
                          "course", parse_path("taken_by"))
        assert engine.implies(phi)
        assert engine.finitely_implies(phi)
        with pytest.raises(TypeError):
            engine.implies("nonsense")
