"""The /metrics exposition audit (text format 0.0.4 + exemplars).

Two halves:

1. :func:`repro.obs.lint_exposition` unit semantics — it must accept
   everything the format allows (escapes, NaN/Inf, exemplars, empty
   label sets) and flag the classic emitter bugs (unescaped quotes,
   missing +Inf, non-cumulative buckets, samples without TYPE);
2. the audit itself — ``to_prometheus`` output, for adversarial label
   values and for a *live server's* full ``/metrics`` scrape (exemplar
   included), must come back from the linter clean.  This is the test
   the CI telemetry round-trip re-runs over HTTP.
"""

import asyncio
import json

import pytest

from repro import Observability, SchemaRegistry, ValidationServer
from repro.obs import NULL_TRACER, lint_exposition
from repro.workloads import book_document
from repro.workloads.book import BOOK_CONSTRAINTS_TEXT, BOOK_DTD_TEXT
from repro.xmlio import serialize

SCHEMA_TEXT = BOOK_DTD_TEXT + "\n%% constraints\n" + BOOK_CONSTRAINTS_TEXT


# ----------------------------------------------------------------------
# 1. linter semantics
# ----------------------------------------------------------------------

class TestLinterAccepts:
    def test_minimal_counter(self):
        assert lint_exposition(
            "# HELP c things\n# TYPE c counter\nc 1\n") == []

    def test_labels_escapes_and_special_values(self):
        text = (
            '# TYPE g gauge\n'
            'g{path="C:\\\\tmp",note="say \\"hi\\"",nl="a\\nb"} 1.5\n'
            'g{path="other"} NaN\n'
            'g{path="inf"} +Inf\n'
            'g{path="ninf"} -Inf\n')
        assert lint_exposition(text) == []

    def test_histogram_with_exemplar(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\n'
            'h_bucket{le="+Inf"} 2 # {trace_id="ab"} 0.5\n'
            "h_sum 0.6\n"
            "h_count 2\n")
        assert lint_exposition(text) == []

    def test_unrelated_comments_and_blank_lines(self):
        assert lint_exposition(
            "\n# just a note\n# TYPE c counter\nc 0\n\n") == []


class TestLinterFlags:
    @pytest.mark.parametrize("text, needle", [
        ("c 1\n", "no preceding TYPE"),
        ("# TYPE c counter\nc\n", "without a value"),
        ("# TYPE c counter\nc one\n", "unparseable value"),
        ("# TYPE c counter\n# TYPE c counter\nc 1\n", "duplicate TYPE"),
        ("# TYPE c flavour\nc 1\n", "unknown TYPE kind"),
        ("# TYPE 0c counter\n0c 1\n", "invalid name"),
        ('# TYPE c counter\nc{9bad="x"} 1\n', "invalid label name"),
        ('# TYPE c counter\nc{l=x} 1\n', "not quoted"),
        ('# TYPE c counter\nc{l="x\\q"} 1\n', "illegal escape"),
        ('# TYPE c counter\nc{l="x} 1\n', "unterminated"),
        ('# TYPE c counter\nc{l="x"} 1 # {t="a"} 2\n', "non-bucket"),
        ('# HELP h bad \\t escape\n# TYPE h counter\nh 1\n',
         "illegal escape in HELP"),
    ])
    def test_problem_is_reported(self, text, needle):
        problems = lint_exposition(text)
        assert any(needle in p for p in problems), problems

    def test_histogram_missing_inf_sum_count(self):
        problems = lint_exposition(
            '# TYPE h histogram\nh_bucket{le="0.1"} 1\n')
        assert any("+Inf" in p for p in problems)
        assert any("_sum" in p for p in problems)
        assert any("_count" in p for p in problems)

    def test_histogram_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\nh_count 5\n")
        assert any("not cumulative" in p
                   for p in lint_exposition(text))

    def test_histogram_inf_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 4\n")
        assert any("!= _count" in p for p in lint_exposition(text))

    def test_histogram_per_label_set_checks(self):
        """Each label set is a separate series: one complete, one not."""
        text = (
            "# TYPE h histogram\n"
            'h_bucket{op="a",le="+Inf"} 1\n'
            'h_sum{op="a"} 1\nh_count{op="a"} 1\n'
            'h_bucket{op="b",le="0.1"} 1\n')
        problems = lint_exposition(text)
        assert problems and all("'op': 'b'" in p for p in problems)


# ----------------------------------------------------------------------
# 2. the audit: our emitter must pass our linter
# ----------------------------------------------------------------------

class TestEmitterAudit:
    def test_adversarial_labels_and_help(self):
        obs = Observability()
        obs.counter("c", {"path": 'C:\\tmp\\"x"\nend'},
                    help="counts \\ weird\nthings").add(3)
        obs.gauge("g", help="a gauge").set(1.5)
        hist = obs.histogram("h", {"op": "x"}, help="hist",
                             buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5, trace_id="ab" * 16)
        hist.observe(50.0)
        text = obs.to_prometheus()
        assert lint_exposition(text) == []
        assert '# {trace_id="' in text  # the exemplar actually rendered

    def test_empty_registry_is_clean(self):
        assert lint_exposition(Observability().to_prometheus()) == []

    def test_live_server_scrape_passes_the_linter(self):
        """The full contract: serve requests (traced and not), then
        lint the real GET /metrics body."""
        doc = serialize(book_document())

        async def scenario():
            obs = Observability(tracer=NULL_TRACER)
            registry = SchemaRegistry(obs=obs)
            registry.load("book", SCHEMA_TEXT, root="book")
            server = ValidationServer(registry, obs=obs)
            await server.start_http()
            try:
                reader, writer = await asyncio.open_connection(
                    *server.http_address)

                async def ask(method, path, body=b""):
                    writer.write(
                        (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                         f"Content-Length: {len(body)}\r\n\r\n"
                         ).encode() + body)
                    await writer.drain()
                    status = int((await reader.readline()).split()[1])
                    length = 0
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b"\n", b""):
                            break
                        if line.lower().startswith(b"content-length:"):
                            length = int(line.split(b":")[1])
                    return status, await reader.readexactly(length)

                body = doc.encode("utf-8")
                for i in range(3):
                    path = "/v1/validate/book" + ("?trace=1"
                                                  if i == 0 else "")
                    status, data = await ask("POST", path, body)
                    assert status == 200
                status, data = await ask("POST", "/v1/validate/book",
                                         b"<broken")
                assert status == 422
                status, scrape = await ask("GET", "/metrics")
                assert status == 200
                writer.close()
                await writer.wait_closed()
                return scrape.decode("utf-8")
            finally:
                await server.close()

        scrape = asyncio.run(scenario())
        assert lint_exposition(scrape) == []
        # the traced request left a latency exemplar on the scrape
        assert "serve_request_seconds_bucket" in scrape
        assert '# {trace_id="' in scrape

    def test_stats_and_metrics_agree(self):
        """/v1/stats is derived from the same registry the scrape
        exports — the request counters must match."""
        obs = Observability(tracer=NULL_TRACER)
        registry = SchemaRegistry(obs=obs)
        registry.load("book", SCHEMA_TEXT, root="book")
        server = ValidationServer(registry, obs=obs)
        doc = serialize(book_document())
        for _ in range(4):
            server.handle_request({"op": "validate", "schema": "book",
                                   "document": doc})
        stats = server.stats()
        assert stats["requests"]["total"] == 4
        scrape = obs.to_prometheus()
        line = next(
            line for line in scrape.splitlines()
            if line.startswith("serve_requests_total")
            and 'op="validate"' in line)
        assert line.rsplit(" ", 1)[1] == "4"
        assert json.dumps(stats, sort_keys=True)  # JSON-safe payload
