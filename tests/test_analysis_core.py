"""Tests for the diagnostic model, rule registry and lint config."""

import json

import pytest

from repro.analysis import (
    AnalysisReport, DEFAULT_REGISTRY, Diagnostic, LintConfig, Rule,
    RuleRegistry, Severity, analyze,
)
from repro.analysis.registry import finding


def diag(code="XIC301", severity=Severity.WARNING, message="m", **kw):
    return Diagnostic(code, severity, message, **kw)


class TestSeverity:
    def test_ranking(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank \
            < Severity.INFO.rank < Severity.HINT.rank

    def test_findings_are_errors_and_warnings(self):
        assert Severity.ERROR.is_finding
        assert Severity.WARNING.is_finding
        assert not Severity.INFO.is_finding
        assert not Severity.HINT.is_finding


class TestDiagnostic:
    def test_str_prefers_constraint_over_element(self):
        d = diag(element="entry", constraint="entry.isbn -> entry")
        assert "[entry.isbn -> entry]" in str(d)
        assert str(diag(element="entry")).count("[entry]") == 1

    def test_str_includes_fix(self):
        assert "(fix: drop it)" in str(diag(fix="drop it"))

    def test_to_dict_omits_absent_fields(self):
        d = diag().to_dict()
        assert "element" not in d and "fix" not in d
        full = diag(element="e", constraint="c", fix="f").to_dict()
        assert full["element"] == "e" and full["fix"] == "f"

    def test_with_severity(self):
        d = diag().with_severity(Severity.HINT)
        assert d.severity is Severity.HINT
        assert not d.is_finding


class TestAnalysisReport:
    def test_sorted_by_severity_then_code(self):
        report = AnalysisReport([
            diag("XIC305", Severity.WARNING),
            diag("XIC303", Severity.ERROR),
            diag("XIC307", Severity.INFO),
            diag("XIC301", Severity.WARNING),
        ])
        assert [d.code for d in report] == \
            ["XIC303", "XIC301", "XIC305", "XIC307"]

    def test_clean_ignores_advisories(self):
        assert AnalysisReport([diag(severity=Severity.INFO)]).clean
        assert not AnalysisReport([diag(severity=Severity.WARNING)]).clean

    def test_by_code_prefix(self):
        report = AnalysisReport([diag("XIC301"), diag("XIC302"),
                                 diag("XIC101")])
        assert len(report.by_code("XIC3")) == 2
        assert len(report.by_code("XIC301")) == 1

    def test_json_round_trips(self):
        report = AnalysisReport([diag(element="e", fix="f")])
        payload = json.loads(report.to_json(schema="x.dtdc"))
        assert payload["schema"] == "x.dtdc"
        assert payload["clean"] is False
        assert payload["summary"]["warning"] == 1
        assert payload["diagnostics"][0]["code"] == "XIC301"

    def test_str_summary_line(self):
        assert str(AnalysisReport()) == "clean (no diagnostics)"
        assert "1 diagnostic(s), 1 finding(s)" in str(AnalysisReport([diag()]))


class TestRuleRegistry:
    def test_rejects_bad_code(self):
        reg = RuleRegistry()
        with pytest.raises(ValueError, match="XICnnn"):
            reg.register(Rule("BAD1", "x", Severity.ERROR, "d",
                              lambda ctx: []))

    def test_rejects_duplicate_code(self):
        reg = RuleRegistry()
        reg.register(Rule("XIC999", "x", Severity.ERROR, "d",
                          lambda ctx: []))
        with pytest.raises(ValueError, match="duplicate"):
            reg.register(Rule("XIC999", "y", Severity.ERROR, "d",
                              lambda ctx: []))

    def test_run_stamps_code_rule_and_severity(self):
        r = Rule("XIC998", "my-rule", Severity.HINT, "d",
                 lambda ctx: [finding("msg", element="e")])
        (d,) = r.run(None)
        assert (d.code, d.rule, d.severity) == \
            ("XIC998", "my-rule", Severity.HINT)
        assert d.element == "e"

    def test_iteration_sorted_by_code(self):
        codes = [r.code for r in DEFAULT_REGISTRY]
        assert codes == sorted(codes)

    def test_stock_rules_registered(self):
        # The issue demands at least 8 distinct codes; we ship 17.
        assert len(DEFAULT_REGISTRY) >= 8
        for code in ("XIC101", "XIC204", "XIC301", "XIC302", "XIC303",
                     "XIC307", "XIC308"):
            assert code in DEFAULT_REGISTRY


class TestLintConfig:
    def test_empty_select_means_all(self):
        assert LintConfig().enables("XIC101")

    def test_select_prefix(self):
        config = LintConfig(select=("XIC3",))
        assert config.enables("XIC301")
        assert not config.enables("XIC101")

    def test_ignore_beats_select(self):
        config = LintConfig(select=("XIC3",), ignore=("XIC305",))
        assert config.enables("XIC301")
        assert not config.enables("XIC305")

    def test_severity_override(self):
        config = LintConfig(severity={"XIC305": Severity.HINT})
        d = config.apply_severity(diag("XIC305"))
        assert d.severity is Severity.HINT
        assert config.apply_severity(diag("XIC301")).severity \
            is Severity.WARNING


class TestAnalyzeConfigPlumbing:
    def test_select_restricts_rules(self, book_schema):
        report = analyze(book_schema, LintConfig(select=("XIC1",)))
        assert all(d.code.startswith("XIC1") for d in report)

    def test_severity_override_changes_exit_semantics(self, book_schema):
        base = analyze(book_schema)
        assert base.clean  # only the XIC307 advisory
        promoted = analyze(book_schema,
                           LintConfig(severity={"XIC307": Severity.WARNING}))
        assert not promoted.clean

    def test_custom_registry(self, book_schema):
        reg = RuleRegistry()

        @reg.rule("XIC997", "always-fires", Severity.ERROR, "test rule")
        def _check(ctx):
            yield finding("fired", element=ctx.structure.root)

        report = analyze(book_schema, registry=reg)
        assert [d.code for d in report] == ["XIC997"]
        assert report.diagnostics[0].element == "book"
