"""Unit tests for content-model regular expressions: AST, parsing,
Glushkov construction, membership, and language properties (§3.4)."""

import pytest

from repro.errors import RegexSyntaxError
from repro.regexlang import (
    ATOMIC, Atom, Concat, Epsilon, GlushkovNFA, Star, Union, concat,
    parse_regex, star, union,
)
from repro.regexlang.ast import optional, plus
from repro.regexlang.automaton import Matcher, accepts, matcher_for
from repro.regexlang.properties import (
    is_unique_subelement, language_is_finite, occurrence_bounds,
    shortest_word, symbols_of, unique_subelements,
)


class TestAst:
    def test_smart_constructors(self):
        r = concat(Atom("a"), Atom("b"), Atom("c"))
        assert isinstance(r, Concat)
        assert r.left == Atom("a")
        u = union(Atom("a"))
        assert u == Atom("a")
        assert concat() == Epsilon()

    def test_union_requires_operand(self):
        with pytest.raises(ValueError):
            union()

    def test_hashable_and_structural_equality(self):
        a = concat(Atom("x"), star(Atom("y")))
        b = concat(Atom("x"), star(Atom("y")))
        assert a == b
        assert hash(a) == hash(b)
        assert {a: 1}[b] == 1

    def test_to_string_roundtrips_through_parser(self):
        for text in ("(entry, author*, section*, ref)",
                     "(title, (text + section)*)",
                     "(a | b)*", "a?", "a+", "EMPTY"):
            r = parse_regex(text)
            assert parse_regex(r.to_string()) == r

    def test_atom_validation(self):
        with pytest.raises(TypeError):
            Atom("")


class TestParser:
    def test_book_content_model(self):
        r = parse_regex("(entry, author*, section*, ref)")
        assert symbols_of(r) == {"entry", "author", "section", "ref"}

    def test_union_both_spellings(self):
        assert parse_regex("(a + b)") == parse_regex("(a | b)")

    def test_postfix_plus_vs_binary_plus(self):
        postfix = parse_regex("a+")
        assert postfix == plus(Atom("a"))
        binary = parse_regex("a + b")
        assert isinstance(binary, Union)

    def test_postfix_plus_before_comma(self):
        r = parse_regex("(a+, b)")
        assert isinstance(r, Concat)
        assert r.left == plus(Atom("a"))

    def test_optional_desugars(self):
        assert parse_regex("a?") == optional(Atom("a"))

    def test_epsilon_spellings(self):
        for text in ("EMPTY", "()", "epsilon", ""):
            assert parse_regex(text) == Epsilon()

    def test_pcdata_and_s(self):
        assert parse_regex("#PCDATA") == Atom(ATOMIC)
        assert parse_regex("S") == Atom(ATOMIC)

    def test_nested_groups(self):
        r = parse_regex("((a, b) | c)*")
        assert isinstance(r, Star)

    def test_errors(self):
        for bad in ("(a", "a)", "(a,,b)", "*a", "a |", "#WHAT"):
            with pytest.raises(RegexSyntaxError):
                parse_regex(bad)


class TestGlushkov:
    def test_positions_and_alphabet(self):
        nfa = GlushkovNFA(parse_regex("(a, b*, a)"))
        assert nfa.n_positions == 3
        assert nfa.alphabet() == {"a", "b"}

    def test_accepts_basic(self):
        nfa = GlushkovNFA(parse_regex("(a, b*, c)"))
        assert nfa.accepts(["a", "c"])
        assert nfa.accepts(["a", "b", "b", "c"])
        assert not nfa.accepts(["a", "b"])
        assert not nfa.accepts([])
        assert not nfa.accepts(["c", "a"])

    def test_nullable(self):
        assert GlushkovNFA(parse_regex("a*")).accepts([])
        assert GlushkovNFA(parse_regex("a?")).accepts([])
        assert GlushkovNFA(parse_regex("EMPTY")).accepts([])

    def test_deterministic_content_models(self):
        assert GlushkovNFA(
            parse_regex("(entry, author*, section*, ref)")
        ).is_deterministic()
        # (a,b)|(a,c) is the classic 1-ambiguous model.
        assert not GlushkovNFA(
            parse_regex("((a, b) | (a, c))")).is_deterministic()


class TestMatcher:
    def test_agrees_with_nfa(self):
        r = parse_regex("(title, (text + section)*)")
        nfa = GlushkovNFA(r)
        m = Matcher(r)
        words = [["title"], ["title", "text"],
                 ["title", "section", "text"], ["text"], [],
                 ["title", "title"]]
        for w in words:
            assert m.matches(w) == nfa.accepts(w)

    def test_prefix_length(self):
        m = Matcher(parse_regex("(a, b, c)"))
        assert m.prefix_length(["a", "b", "c"]) == 3
        assert m.prefix_length(["a", "x"]) == 1
        assert m.prefix_length(["x"]) == 0

    def test_expected_after(self):
        m = Matcher(parse_regex("(a, (b | c))"))
        assert m.expected_after(["a"]) == {"b", "c"}
        assert m.expected_after(["a", "b"]) == set()

    def test_cache_shares_instances(self):
        r = parse_regex("(a, b)")
        assert matcher_for(r) is matcher_for(parse_regex("(a, b)"))

    def test_accepts_helper(self):
        assert accepts(parse_regex("(a | b)*"), ["a", "b", "a"])


class TestProperties:
    def test_unique_subelements_book(self):
        r = parse_regex("(entry, author*, section*, ref)")
        assert unique_subelements(r) == {"entry", "ref"}

    def test_unique_subelements_union(self):
        # In (a | b), neither occurs in *every* word.
        assert unique_subelements(parse_regex("(a | b)")) == set()
        # In (a, (b | c)), only a occurs exactly once in every word.
        assert unique_subelements(parse_regex("(a, (b | c))")) == {"a"}

    def test_unique_handles_star(self):
        assert not is_unique_subelement(parse_regex("a*"), "a")
        assert is_unique_subelement(parse_regex("(a, b*)"), "a")

    def test_unique_nontrivial_nesting(self):
        # a occurs once in every word of (a, (b, a)?)? No: 1 or 2.
        assert not is_unique_subelement(parse_regex("(a, (b, a)?)"), "a")
        # (a | (b, a)): a occurs exactly once either way.
        assert is_unique_subelement(parse_regex("(a | (b, a))"), "a")

    def test_occurrence_bounds(self):
        assert occurrence_bounds(parse_regex("(a, b*, a)"), "a") == (2, 2)
        assert occurrence_bounds(parse_regex("(a, b*, a)"), "b") == \
            (0, None)
        assert occurrence_bounds(parse_regex("(a | b)"), "a") == (0, 1)
        assert occurrence_bounds(parse_regex("a?"), "a") == (0, 1)

    def test_language_is_finite(self):
        assert language_is_finite(parse_regex("(a, (b | c))"))
        assert not language_is_finite(parse_regex("(a, b*)"))

    def test_shortest_word(self):
        assert shortest_word(parse_regex("(a, b*, c)")) == ("a", "c")
        assert shortest_word(parse_regex("(a | (b, c))")) == ("a",)
        assert shortest_word(parse_regex("x*")) == ()

    def test_symbols_of(self):
        assert symbols_of(parse_regex("((a, b) | c*)")) == {"a", "b", "c"}


class TestLanguageComparisons:
    def test_intersection(self):
        from repro.regexlang.properties import languages_intersect
        assert languages_intersect(parse_regex("(a, b*)"),
                                   parse_regex("(a, b, b)"))
        assert not languages_intersect(parse_regex("(a, b)"),
                                       parse_regex("(b, a)"))
        assert languages_intersect(parse_regex("a*"), parse_regex("b*"))
        # ... via the empty word; remove it:
        assert not languages_intersect(parse_regex("(a, a*)"),
                                       parse_regex("(b, b*)"))

    def test_subset(self):
        from repro.regexlang.properties import language_subset
        assert language_subset(parse_regex("(a, b)"),
                               parse_regex("(a, b*)"))
        assert not language_subset(parse_regex("(a, b*)"),
                                   parse_regex("(a, b)"))
        assert language_subset(parse_regex("EMPTY"),
                               parse_regex("a*"))
        # Widening a content model is checkable:
        old = parse_regex("(entry, author*, ref)")
        new = parse_regex("(entry, author*, section*, ref)")
        assert language_subset(old, new)
        assert not language_subset(new, old)

    def test_subset_reflexive_on_samples(self):
        from repro.regexlang.properties import language_subset
        for text in ("(a, (b | c))*", "(a?, b+)", "EMPTY"):
            r = parse_regex(text)
            assert language_subset(r, r)
