"""Tests for the FO² substrate and the Figure 1 experiment (E12)."""

import pytest

from repro.fo2 import (
    And, Atom, Eq, Exists, Forall, Implies, Not, Or, Structure, Var,
    evaluate, figure_one_pair, key_constraint_formula,
    search_indistinguishable_pair, two_pebble_equivalent,
    variables_used,
)
from repro.fo2.ef_game import _satisfies_key, winning_configurations
from repro.fo2.formulas import is_fo2


class TestStructures:
    def test_build_and_holds(self):
        s = Structure.build([0, 1], l={(0, 1)})
        assert s.holds("l", 0, 1)
        assert not s.holds("l", 1, 0)
        assert s.relation("missing") == frozenset()

    def test_unary_relations(self):
        s = Structure.build([0, 1], p={(0,)})
        assert s.holds("p", 0)
        assert not s.holds("p", 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Structure.build([0], l={(0, 5)})
        with pytest.raises(ValueError):
            Structure.build([0], l={(0, 0, 0)})

    def test_hashable(self):
        a = Structure.build([0, 1], l={(0, 1)})
        b = Structure.build([0, 1], l={(0, 1)})
        assert a == b and hash(a) == hash(b)


class TestFormulas:
    def test_evaluation(self):
        s = Structure.build([0, 1, 2], l={(0, 1), (1, 2)})
        x, y = Var("x"), Var("y")
        has_succ = Exists(y, Atom("l", (x, y)))
        assert evaluate(s, Exists(x, has_succ))
        assert not evaluate(s, Forall(x, has_succ))  # 2 has no successor
        assert evaluate(s, Exists(x, Not(has_succ)))
        assert evaluate(s, Forall(x, Or(has_succ,
                                        Exists(y, Atom("l", (y, x))))))

    def test_eq_and_implies(self):
        s = Structure.build([0, 1], l={(0, 0)})
        x, y = Var("x"), Var("y")
        f = Forall(x, Forall(y, Implies(And(Atom("l", (x, y)),
                                            Atom("l", (y, x))),
                                        Eq(x, y))))
        assert evaluate(s, f)

    def test_variable_counting(self):
        f = key_constraint_formula()
        assert variables_used(f) == {"x", "y", "z"}
        assert not is_fo2(f)
        x, y = Var("x"), Var("y")
        g = Exists(x, Exists(y, Atom("l", (x, y))))
        assert is_fo2(g)

    def test_key_formula_semantics(self):
        shared = Structure.build([0, 1, 2], l={(0, 2), (1, 2)})
        private = Structure.build([0, 1, 2, 3], l={(0, 2), (1, 3)})
        f = key_constraint_formula()
        assert not evaluate(shared, f)
        assert evaluate(private, f)
        assert _satisfies_key(shared) == evaluate(shared, f)


class TestGame:
    def test_identical_structures_equivalent(self):
        s = Structure.build([0, 1, 2], l={(0, 1), (1, 2)})
        assert two_pebble_equivalent(s, s)

    def test_trivially_distinguishable(self):
        empty = Structure.build([0], l=set())
        loop = Structure.build([0], l={(0, 0)})
        assert not two_pebble_equivalent(empty, loop)

    def test_two_distinct_incoming_is_fo2_visible(self):
        """The naive Figure-1 candidate (two disjoint edges vs a shared
        target) IS distinguishable: 'two distinct nodes with incoming
        edges' needs only two variables."""
        g = Structure.build(["x1", "x2", "y1", "y2"],
                            l={("x1", "y1"), ("x2", "y2")})
        g_prime = Structure.build(["x1", "x2", "y"],
                                  l={("x1", "y"), ("x2", "y")})
        assert not two_pebble_equivalent(g, g_prime)
        # The distinguishing FO² sentence, explicitly:
        x, y = Var("x"), Var("y")
        has_in_x = Exists(y, Atom("l", (y, x)))
        has_in_y = Exists(x, Atom("l", (x, y)))
        two_with_incoming = Exists(x, And(
            has_in_x, Exists(y, And(Not(Eq(x, y)), has_in_y))))
        assert is_fo2(two_with_incoming)
        assert evaluate(g, two_with_incoming)
        assert not evaluate(g_prime, two_with_incoming)

    def test_figure_one_pair(self):
        """E12: the reconstructed Figure 1 — FO²-equivalent, key-distinct."""
        g, g_prime = figure_one_pair()
        assert _satisfies_key(g)
        assert not _satisfies_key(g_prime)
        assert two_pebble_equivalent(g, g_prime)
        f = key_constraint_formula()
        assert evaluate(g, f) and not evaluate(g_prime, f)

    def test_winning_set_structure(self):
        g, g_prime = figure_one_pair()
        alive = winning_configurations(g, g_prime)
        assert (None, None) in alive
        # Every surviving config is a partial isomorphism by construction;
        # a placed pair must respect the edge relation.
        for config in alive:
            for pair in config:
                if pair is not None:
                    a, b = pair
                    assert (a in g.universe) and (b in g_prime.universe)

    def test_search_finds_minimal_pair(self):
        pair = search_indistinguishable_pair(3)
        assert pair is not None
        g, g_prime = pair
        assert _satisfies_key(g) and not _satisfies_key(g_prime)
        assert two_pebble_equivalent(g, g_prime)
        # Minimality: the found pair is no larger than the curated one.
        fig_g, fig_gp = figure_one_pair()
        assert len(g.universe) + len(g_prime.universe) <= \
            len(fig_g.universe) + len(fig_gp.universe)


class TestCountingQuantifiers:
    def test_c2_expresses_the_key(self):
        """With counting (C²), two variables suffice — completing §1's
        description-logic discussion."""
        from repro.fo2.formulas import key_constraint_c2, is_fo2
        g, g_prime = figure_one_pair()
        phi = key_constraint_c2()
        assert variables_used(phi) == {"x", "y"}
        assert is_fo2(phi)  # two names — but ∃≥2 is not FO² syntax
        assert evaluate(g, phi)
        assert not evaluate(g_prime, phi)

    def test_counting_semantics(self):
        from repro.fo2.formulas import ExistsAtLeast
        s = Structure.build([0, 1, 2], l={(0, 2), (1, 2)})
        x, y = Var("x"), Var("y")
        two_preds = Exists(x, ExistsAtLeast(2, y, Atom("l", (y, x))))
        assert evaluate(s, two_preds)
        three_preds = Exists(x, ExistsAtLeast(3, y, Atom("l", (y, x))))
        assert not evaluate(s, three_preds)
