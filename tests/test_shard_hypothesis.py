"""Property-based parity: sharded validation is indistinguishable from
serial validation, for every shard count and document ordering.

The contract under test is byte-identity: ``verdicts_json()`` of a
:class:`ShardedCorpusValidator` run must equal a serial
``CorpusValidator(jobs=1)`` run over the same input — across shard
counts {1, 2, 3, 7}, random document permutations, and random
invalid fractions — while the corpus-level ``L_id`` findings (which
serial runs cannot see at all) stay identical across shard layouts,
including the cross-shard duplicate-ID case that only the merge phase
can surface.

Nodes are in-process (:class:`LocalNode`) — hypothesis runs hundreds of
corpora, and the subprocess transport is covered by
``tests/test_shard.py`` and ``benchmarks/bench_shard.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import CorpusValidator
from repro.shard import ShardedCorpusValidator
from repro.workloads import federated_corpus, random_corpus
from repro.xmlio import serialize

SHARD_COUNTS = (1, 2, 3, 7)

seeds = st.integers(0, 2**31 - 1)
fractions = st.sampled_from((0.0, 0.25, 0.5, 1.0))


def _docs(trees, order):
    return [(f"doc-{i}", serialize(trees[i])) for i in order]


@st.composite
def corpora(draw):
    """A random library corpus (all-local Σ) plus a permutation."""
    seed = draw(seeds)
    n_docs = draw(st.integers(2, 10))
    dtd, trees = random_corpus(n_docs=n_docs, doc_vertices=24,
                               invalid_fraction=draw(fractions),
                               seed=seed)
    order = draw(st.permutations(range(n_docs)))
    return dtd, _docs(trees, order)


@st.composite
def federations(draw):
    """A random registry corpus (all-merge Σ) plus a permutation —
    cross-document duplicates, cross-document references and ghost
    references drawn independently."""
    seed = draw(seeds)
    n_docs = draw(st.integers(2, 8))
    dtd, trees = federated_corpus(
        n_docs=n_docs, doc_vertices=16,
        cross_dup_fraction=draw(fractions),
        cross_ref_fraction=draw(fractions),
        dangling_fraction=draw(fractions), seed=seed)
    order = draw(st.permutations(range(n_docs)))
    return dtd, _docs(trees, order)


class TestShardedParity:
    @given(corpora())
    @settings(max_examples=25, deadline=None)
    def test_local_sigma_byte_identical(self, instance):
        dtd, docs = instance
        serial = CorpusValidator(dtd, jobs=1).validate(docs).verdicts_json()
        for shards in SHARD_COUNTS:
            with ShardedCorpusValidator(dtd, shards=shards) as sv:
                report = sv.validate(docs)
            assert report.verdicts_json() == serial, shards
            assert report.corpus_violations == [], shards

    @given(federations())
    @settings(max_examples=25, deadline=None)
    def test_lid_sigma_byte_identical_and_fold_stable(self, instance):
        dtd, docs = instance
        serial = CorpusValidator(dtd, jobs=1).validate(docs).verdicts_json()
        baseline = None
        for shards in SHARD_COUNTS:
            with ShardedCorpusValidator(dtd, shards=shards) as sv:
                report = sv.validate(docs)
            assert report.verdicts_json() == serial, shards
            snapshot = ([v.to_dict() for v in report.corpus_violations],
                        report.merge_stats)
            if baseline is None:
                baseline = snapshot
            else:
                # the fold is a pure function of (Σ, corpus order) —
                # the shard layout must be unobservable
                assert snapshot == baseline, shards

    @given(seeds, st.permutations(range(6)))
    @settings(max_examples=20, deadline=None)
    def test_cross_shard_duplicate_surfaces_only_at_merge(self, seed,
                                                          order):
        """Documents that are each valid alone but share an ID: every
        per-document verdict is clean (serial agrees), and the clash
        appears exactly once in the corpus findings — wherever the
        shard layout or document order puts the duplicates."""
        dtd, trees = federated_corpus(n_docs=6, doc_vertices=12,
                                      cross_dup_fraction=0.5, seed=seed)
        docs = _docs(trees, order)
        serial = CorpusValidator(dtd, jobs=1).validate(docs)
        assert serial.ok
        for shards in SHARD_COUNTS:
            with ShardedCorpusValidator(dtd, shards=shards) as sv:
                report = sv.validate(docs)
            assert report.verdicts_json() == serial.verdicts_json()
            assert report.ok and not report.corpus_ok, shards
            clashes = [v for v in report.corpus_violations
                       if v.code == "id-clash"]
            assert len(clashes) == 1, shards
            assert "p-0-0" in clashes[0].message
