"""Unit tests for DTD structures (Definition 2.2)."""

import pytest

from repro.dtd import AttributeKind, DTDStructure
from repro.errors import SchemaError
from repro.regexlang import parse_regex


def make() -> DTDStructure:
    s = DTDStructure("r")
    s.define_element("r", "(a*, b)")
    s.define_element("a", "(#PCDATA)*")
    s.define_element("b", "EMPTY")
    s.define_attribute("a", "oid", kind="ID")
    s.define_attribute("a", "refs", set_valued=True, kind="IDREF")
    s.define_attribute("b", "x")
    return s


class TestDeclarations:
    def test_element_types(self):
        assert make().element_types == {"r", "a", "b"}

    def test_content_accepts_string_or_ast(self):
        s = DTDStructure("r")
        s.define_element("r", parse_regex("(x)"))
        assert s.content("r") == parse_regex("x")

    def test_attributes(self):
        s = make()
        assert s.attributes("a") == {"oid", "refs"}
        assert s.attributes("r") == frozenset()
        assert s.is_set_valued("a", "refs")
        assert not s.is_set_valued("a", "oid")

    def test_kind(self):
        s = make()
        assert s.kind("a", "oid") is AttributeKind.ID
        assert s.kind("a", "refs") is AttributeKind.IDREF
        assert s.kind("b", "x") is None

    def test_id_attribute_lookup(self):
        s = make()
        assert s.id_attribute("a") == "oid"
        assert s.id_attribute("b") is None
        assert s.id_attribute_map() == {"a": "oid"}
        assert s.idref_attributes("a") == ["refs"]

    def test_undeclared_element_errors(self):
        s = make()
        with pytest.raises(SchemaError):
            s.content("zzz")
        with pytest.raises(SchemaError):
            s.define_attribute("zzz", "x")
        with pytest.raises(SchemaError):
            s.is_set_valued("a", "nope")


class TestSideConditions:
    def test_one_id_per_element(self):
        s = make()
        with pytest.raises(SchemaError):
            s.define_attribute("a", "oid2", kind="ID")

    def test_id_must_be_single_valued(self):
        s = make()
        with pytest.raises(SchemaError):
            s.define_attribute("b", "bid", set_valued=True, kind="ID")

    def test_redefining_same_id_ok(self):
        s = make()
        s.define_attribute("a", "oid", kind=AttributeKind.ID)
        assert s.id_attribute("a") == "oid"

    def test_check_detects_dangling_content(self):
        s = DTDStructure("r")
        s.define_element("r", "(ghost)")
        with pytest.raises(SchemaError):
            s.check()

    def test_check_detects_missing_root(self):
        s = DTDStructure("r")
        s.define_element("x", "EMPTY")
        with pytest.raises(SchemaError):
            s.check()


class TestDerived:
    def test_subelements(self):
        s = make()
        assert s.subelements("r") == {"a", "b"}
        assert s.subelements("b") == frozenset()

    def test_allows_text(self):
        s = make()
        assert s.allows_text("a")
        assert not s.allows_text("r")

    def test_unique_subelements_cached_and_invalidates(self):
        s = make()
        assert s.unique_subelements("r") == {"b"}
        s.define_element("r", "(a*, b, b)")
        assert s.unique_subelements("r") == frozenset()

    def test_describe_mentions_everything(self):
        text = make().describe()
        assert "P(r)" in text
        assert "R(a, oid) = S [ID]" in text
        assert "R(a, refs) = S* [IDREF]" in text
