"""The unified ``engine=`` API and the engine registry.

One seam, many call sites: ``Validator.check(doc, engine=...)``, the
CLI's ``--engine``, the server's ``engine`` field, and corpus workers
all resolve backends through :mod:`repro.engines`.  These tests pin the
registry contract (registration, built-in protection, unknown-name
errors), the facade redesign (legacy ``check`` untouched,
``check_stream`` deprecated but equivalent), and report byte-identity
across every built-in engine.
"""

import warnings

import pytest

from repro import Validator, engines
from repro.errors import ReproError
from repro.server.registry import as_handle
from repro.workloads.book import book_document, book_dtdc
from repro.xmlio.serializer import serialize


@pytest.fixture(autouse=True)
def _no_disk_cache(monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", "0")
    yield


TEXT = serialize(book_document())


class TestRegistry:
    def test_builtins_always_listed(self):
        for name in ("auto", "batch", "stream", "codegen"):
            assert name in engines.names()

    def test_create_unknown_engine(self):
        with pytest.raises(ReproError, match="unknown engine 'psychic'"):
            engines.create("psychic", book_dtdc())

    def test_register_and_create_third_party(self):
        calls = []

        class Recorder:
            def __init__(self, handle, obs=None):
                self.handle = handle

            def validate(self, source):
                calls.append(source)
                from repro.stream import StreamValidator

                return StreamValidator(self.handle.plan).validate(source)

        engines.register("recorder", Recorder)
        try:
            report = Validator(book_dtdc()).check(TEXT, engine="recorder")
            assert report.ok
            assert calls == [TEXT]
        finally:
            engines.unregister("recorder")
        assert "recorder" not in engines.names()

    def test_duplicate_registration_needs_replace(self):
        engines.register("dup", lambda handle, obs=None: None)
        try:
            with pytest.raises(ReproError, match="already registered"):
                engines.register("dup", lambda handle, obs=None: None)
            engines.register("dup", lambda handle, obs=None: None,
                             replace=True)
        finally:
            engines.unregister("dup")

    def test_builtins_are_protected(self):
        with pytest.raises(ReproError, match="built-in"):
            engines.register("stream", lambda handle, obs=None: None)
        with pytest.raises(ReproError, match="built-in"):
            engines.unregister("batch")

    def test_invalid_name_rejected(self):
        with pytest.raises(ReproError, match="invalid engine name"):
            engines.register("no spaces", lambda handle, obs=None: None)


class TestValidatorFacade:
    def test_reports_byte_identical_across_engines(self):
        v = Validator(book_dtdc())
        reports = {name: v.check(TEXT, engine=name).to_json()
                   for name in ("batch", "stream", "codegen", "auto")}
        assert len(set(reports.values())) == 1

    def test_legacy_check_signature_unchanged(self):
        v = Validator(book_dtdc())
        doc = book_document()
        report = v.check(doc)
        assert report.ok
        # an explicit sigma still works positionally
        assert v.check(doc, v.dtd.constraints).ok

    def test_sigma_with_engine_is_a_type_error(self):
        v = Validator(book_dtdc())
        with pytest.raises(TypeError, match="sigma"):
            v.check(TEXT, v.dtd.constraints, engine="stream")

    def test_check_stream_warns_and_delegates(self):
        v = Validator(book_dtdc())
        with pytest.warns(DeprecationWarning,
                          match="removed in repro 2.0"):
            old = v.check_stream(TEXT)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            new = v.check(TEXT, engine="stream")
        assert old.to_json() == new.to_json()

    def test_tree_rejected_by_single_pass_engines(self):
        v = Validator(book_dtdc())
        for name in ("stream", "codegen"):
            with pytest.raises(TypeError, match="engine='batch'"):
                v.check(book_document(), engine=name)

    def test_batch_engine_accepts_tree(self):
        v = Validator(book_dtdc())
        assert v.check(book_document(), engine="batch").ok

    def test_path_input(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(TEXT)
        v = Validator(book_dtdc())
        reports = {name: v.check(path, engine=name).to_json()
                   for name in ("batch", "stream", "codegen")}
        assert len(set(reports.values())) == 1

    def test_check_corpus_engine_equivalence(self):
        v = Validator(book_dtdc())
        docs = [("a", TEXT), ("b", "<book/>")]
        verdicts = {}
        for name in ("batch", "stream", "codegen", "auto"):
            verdicts[name] = v.check_corpus(
                docs, engine=name).verdicts_json()
        assert len(set(verdicts.values())) == 1

    def test_check_corpus_engine_and_stream_conflict(self):
        v = Validator(book_dtdc())
        with pytest.raises(ValueError, match="not both"):
            v.check_corpus([("a", TEXT)], stream=True, engine="batch")


class TestSchemaHandleSurface:
    def test_handle_codegen_is_memoized(self):
        handle = as_handle(book_dtdc())
        assert handle.codegen is handle.codegen

    def test_to_dict_lists_engines(self):
        from repro.server.registry import SchemaRegistry
        from repro.workloads.book import (
            BOOK_CONSTRAINTS_TEXT, BOOK_DTD_TEXT,
        )

        registry = SchemaRegistry()
        registry.load(
            "book",
            BOOK_DTD_TEXT + "\n%% constraints\n" + BOOK_CONSTRAINTS_TEXT,
            root="book")
        payload = registry.get("book").to_dict()
        assert payload["engines"] \
            == ["auto", "batch", "codegen", "stream"]
