"""Integration: every example script runs cleanly and prints what its
docstring promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.glob("examples/*.py"))

EXPECTED_SNIPPETS = {
    "quickstart.py": ["OK (no violations)", "NOT implied",
                      "After corrupting"],
    "legacy_oodb_export.py": ["interface person", "OK (no violations)",
                              "inverse"],
    "relational_export.py": ["foreign-key", "implied", "primary-key"],
    "implication_divergence.py": ["cycle-rule", "unknown",
                                  "truncating"],
    "path_reasoning.py": ["type(book.ref.to) = entry", "key path",
                          "inverse composition rule"],
    "fo2_expressiveness.py": ["FO²", "True", "False"],
    "integration_pipeline.py": ["propagated: 2, lost: 0", "DROPPED",
                                "validates: True"],
    "self_describing.py": ["OK (no violations)", "INCONSISTENT",
                           "not referenced back"],
    "lint_schema.py": ["XIC102", "XIC305", "XIC307", "clean: True"],
}


def test_examples_exist():
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=120)
    assert result.returncode == 0, result.stderr[-2000:]
    for snippet in EXPECTED_SNIPPETS.get(script.name, []):
        assert snippet in result.stdout, (
            f"{script.name}: expected {snippet!r} in output")
