"""Tests for repro.obs: tracer, metrics, exporters, and the exact
counter ground truth of the instrumented engines."""

import json

import pytest

from repro.constraints.base import Field
from repro.constraints.lang_lid import IDConstraint, IDForeignKey
from repro.constraints.lang_lu import UnaryForeignKey, UnaryKey
from repro.implication.lid import LidEngine
from repro.implication.lu import LuEngine
from repro.implication.l_general import LGeneralEngine
from repro.implication.l_primary import LPrimaryEngine
from repro.obs import (
    NULL_INSTRUMENT, NULL_OBS, NULL_SPAN, NULL_TRACER, MetricsRegistry,
    Observability, Tracer, render_metrics, render_spans, to_prometheus,
)
from repro.validator import Validator
from repro.workloads import book_document, book_dtdc
from repro.workloads.persondept import person_dept_export


class TestTracer:
    def test_nesting_follows_enter_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        assert [r.name for r in tracer.roots] == ["outer"]
        assert [c.name for c in tracer.roots[0].children] == \
            ["inner", "inner2"]
        assert tracer.roots[0].children[0].parent is tracer.roots[0]

    def test_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", size=7) as span:
            span.set(extra="x")
        assert span.duration is not None and span.duration >= 0
        assert span.attributes == {"size": 7, "extra": "x"}

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
        assert tracer.current is None

    def test_traced_decorator(self):
        tracer = Tracer()

        @tracer.traced("f.call")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert [r.name for r in tracer.roots] == ["f.call"]

    def test_to_dicts_round_trips_json(self):
        tracer = Tracer()
        with tracer.span("a", n=1):
            with tracer.span("b"):
                pass
        data = json.loads(json.dumps(tracer.to_dicts()))
        assert data[0]["name"] == "a"
        assert data[0]["children"][0]["name"] == "b"

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.roots == []

    def test_null_tracer_is_falsy_and_inert(self):
        assert not NULL_TRACER
        assert NULL_TRACER.span("x") is NULL_SPAN
        with NULL_TRACER.span("x") as s:
            assert s.set(a=1) is NULL_SPAN
        assert NULL_TRACER.to_dicts() == []


class TestMetrics:
    def test_counter_identity_and_values(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", {"kind": "a"})
        assert reg.counter("hits", {"kind": "a"}) is c
        c.inc()
        c.add(2)
        assert reg.value("hits", {"kind": "a"}) == 3
        assert reg.total("hits") == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").add(-1)

    def test_name_bound_to_one_kind(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok", {"bad-label": "x"})

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.add(-2)
        assert reg.value("depth") == 3

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes", buckets=(1, 4, 16))
        for v in (1, 3, 20):
            h.observe(v)
        # every bucket with bound >= value counts the observation
        assert h.bucket_counts == [1, 2, 2]
        assert h.count == 3 and h.total == 24
        assert h.mean == 8 and h.min == 1 and h.max == 20

    def test_value_on_histogram_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1)
        with pytest.raises(TypeError):
            reg.value("h")

    def test_values_across_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("n", {"k": "a"}).inc()
        reg.counter("n", {"k": "b"}).add(2)
        assert set(reg.values("n").values()) == {1, 2}
        assert reg.total("n") == 3

    def test_null_instrument(self):
        assert not NULL_INSTRUMENT
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.add(5)
        NULL_INSTRUMENT.observe(1.0)
        assert NULL_INSTRUMENT.value == 0


class TestExporters:
    def _sample_obs(self):
        obs = Observability()
        with obs.span("outer", n=2):
            with obs.span("inner"):
                pass
        obs.counter("requests", {"code": "a"}, help="requests served").add(3)
        obs.histogram("lat", buckets=(1, 10), help="latency").observe(2)
        return obs

    def test_render_spans_indents_children(self):
        obs = self._sample_obs()
        lines = render_spans(obs.tracer).splitlines()
        assert "outer" in lines[0] and "{n=2}" in lines[0]
        assert lines[1].index("inner") > lines[0].index("outer")

    def test_render_metrics_table(self):
        text = render_metrics(self._sample_obs().metrics)
        assert "requests{code=a}" in text
        assert "count=1 sum=2 mean=2" in text

    def test_render_report_sections(self):
        report = self._sample_obs().render()
        assert "== spans ==" in report and "== metrics ==" in report

    def test_json_round_trip(self):
        data = json.loads(self._sample_obs().to_json())
        assert set(data) == {"spans", "metrics"}
        assert data["spans"][0]["name"] == "outer"
        by_name = {m["name"]: m for m in data["metrics"]}
        assert by_name["requests"]["value"] == 3
        assert by_name["lat"]["count"] == 1

    def test_prometheus_format(self):
        text = self._sample_obs().to_prometheus()
        assert "# HELP requests requests served" in text
        assert "# TYPE requests counter" in text
        assert 'requests{code="a"} 3' in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1"} 0' in text
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 2" in text and "lat_count 1" in text

    def test_prometheus_type_emitted_once_per_name(self):
        reg = MetricsRegistry()
        reg.counter("n", {"k": "a"}).inc()
        reg.counter("n", {"k": "b"}).inc()
        text = to_prometheus(reg)
        assert text.count("# TYPE n counter") == 1

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("n", {"k": 'va"l\\ue'}).inc()
        assert 'k="va\\"l\\\\ue"' in to_prometheus(reg)


class TestObservabilityHandle:
    def test_enabled_handle_is_truthy(self):
        assert Observability()
        assert Observability().enabled

    def test_null_obs_is_falsy_and_shared(self):
        assert not NULL_OBS
        assert (None or NULL_OBS) is NULL_OBS
        assert NULL_OBS.span("x") is NULL_SPAN
        assert NULL_OBS.counter("c") is NULL_INSTRUMENT
        assert NULL_OBS.render() == ""
        assert NULL_OBS.to_dict() == {"spans": [], "metrics": []}

    def test_clear(self):
        obs = Observability()
        with obs.span("a"):
            obs.counter("c").inc()
        obs.clear()
        assert obs.tracer.roots == [] and obs.metrics.collect() == []


class TestSpanNesting:
    """The validate pipeline produces the documented span tree."""

    def test_validate_span_tree(self):
        obs = Observability()
        Validator(book_dtdc(), obs=obs).validate(book_document())
        assert [r.name for r in obs.tracer.roots] == ["validate"]
        validate_span = obs.tracer.roots[0]
        assert [c.name for c in validate_span.children] == \
            ["validate.structure", "check"]
        check_span = validate_span.children[1]
        names = [c.name for c in check_span.children]
        assert names[0] == "index.build"
        assert names.count("evaluate") == 3
        constraints = {c.attributes["constraint"]
                       for c in check_span.children if c.name == "evaluate"}
        assert "entry.isbn -> entry" in constraints

    def test_session_span_tree(self):
        dtd, tree = person_dept_export()
        obs = Observability()
        session = Validator(dtd, obs=obs).session(tree)
        session.revalidate()
        names = [r.name for r in obs.tracer.roots]
        assert names == ["session.build", "session.revalidate"]
        assert [c.name for c in obs.tracer.roots[0].children] == \
            ["index.build"]

    def test_every_span_is_closed(self):
        obs = Observability()
        Validator(book_dtdc(), obs=obs).validate(book_document())
        for root in obs.tracer.roots:
            for span in root.walk():
                assert span.duration is not None


def _value(obs, name, constraint):
    return obs.metrics.value(name, {"constraint": constraint})


class TestBookCounterGroundTruth:
    """Exact counts on the fixed book workload (1 entry, 3 sections,
    1 ref): hand-computed, any drift is a bug."""

    @pytest.fixture
    def obs(self):
        obs = Observability()
        Validator(book_dtdc(), obs=obs).validate(book_document())
        return obs

    def test_key_evaluator_counts(self, obs):
        # KeyEvaluator visits ext(entry) = 1 vertex; the single row is
        # new in its group => 1 index miss, 0 hits, 0 violations.
        assert _value(obs, "evaluator_vertices_visited",
                      "entry.isbn -> entry") == 1
        assert _value(obs, "evaluator_index_misses",
                      "entry.isbn -> entry") == 1
        assert _value(obs, "evaluator_index_hits",
                      "entry.isbn -> entry") == 0
        assert _value(obs, "evaluator_violations",
                      "entry.isbn -> entry") == 0

    def test_section_key_counts(self, obs):
        # 3 sections, 3 distinct sids => 3 visited, 3 misses.
        assert _value(obs, "evaluator_vertices_visited",
                      "section.sid -> section") == 3
        assert _value(obs, "evaluator_index_misses",
                      "section.sid -> section") == 3
        assert _value(obs, "evaluator_index_hits",
                      "section.sid -> section") == 0

    def test_foreign_key_counts(self, obs):
        # ValueForeignKeyEvaluator visits 1 target entry + 1 source ref;
        # the ref's one value resolves => 1 hit, 0 misses.
        assert _value(obs, "evaluator_vertices_visited",
                      "ref.to subS entry.isbn") == 2
        assert _value(obs, "evaluator_index_hits",
                      "ref.to subS entry.isbn") == 1
        assert _value(obs, "evaluator_index_misses",
                      "ref.to subS entry.isbn") == 0

    def test_validate_counters(self, obs):
        assert obs.metrics.value("validate_vertices_checked") == \
            book_document().size()
        assert obs.metrics.value("validate_structural_violations") == 0
        assert obs.metrics.value("index_vertices_indexed") == \
            book_document().size()

    def test_violation_counts_on_a_broken_document(self):
        doc = book_document()
        doc.ext("ref")[0].set_attribute("to", ["nowhere"])
        sections = doc.ext("section")
        sections[1].set_attribute("sid", [next(iter(
            sections[0].attributes["sid"]))])
        obs = Observability()
        Validator(book_dtdc(), obs=obs).validate(doc)
        # one dangling ref value and one duplicated key row
        assert _value(obs, "evaluator_violations",
                      "ref.to subS entry.isbn") == 1
        assert _value(obs, "evaluator_index_misses",
                      "ref.to subS entry.isbn") == 1
        assert _value(obs, "evaluator_violations",
                      "section.sid -> section") == 1
        assert _value(obs, "evaluator_index_hits",
                      "section.sid -> section") == 1


class TestPersonDeptCounterGroundTruth:
    """Exact counts on the §1 person/dept export: 2 depts x 3 people
    (23 vertices)."""

    @pytest.fixture
    def obs(self):
        dtd, tree = person_dept_export()
        obs = Observability()
        Validator(dtd, obs=obs).check(tree)
        return obs

    def test_id_constraint_counts(self, obs):
        # 6 person ids, all unique => 6 visited, 6 misses (no value is
        # shared by a second owner).
        assert _value(obs, "evaluator_vertices_visited",
                      "person.id ->id person") == 6
        assert _value(obs, "evaluator_index_misses",
                      "person.id ->id person") == 6
        assert _value(obs, "evaluator_index_hits",
                      "person.id ->id person") == 0
        assert _value(obs, "evaluator_vertices_visited",
                      "dept.id ->id dept") == 2
        assert _value(obs, "evaluator_index_misses",
                      "dept.id ->id dept") == 2

    def test_unary_key_counts(self, obs):
        assert _value(obs, "evaluator_vertices_visited",
                      "person.<name> -> person") == 6
        assert _value(obs, "evaluator_index_misses",
                      "person.<name> -> person") == 6
        assert _value(obs, "evaluator_vertices_visited",
                      "dept.<dname> -> dept") == 2

    def test_set_valued_foreign_key_counts(self, obs):
        # targets ext(dept)=2 + sources ext(person)=6; every person
        # lists exactly one resolving dept => 6 hits.
        assert _value(obs, "evaluator_vertices_visited",
                      "person.in_dept subS dept.id") == 8
        assert _value(obs, "evaluator_index_hits",
                      "person.in_dept subS dept.id") == 6
        assert _value(obs, "evaluator_index_misses",
                      "person.in_dept subS dept.id") == 0
        # dept.has_staff: 6 person targets + 2 dept sources; 2 depts x
        # 3 staff values => 6 hits.
        assert _value(obs, "evaluator_vertices_visited",
                      "dept.has_staff subS person.id") == 8
        assert _value(obs, "evaluator_index_hits",
                      "dept.has_staff subS person.id") == 6

    def test_single_valued_foreign_key_counts(self, obs):
        # dept.manager: 6 person targets + 2 dept sources; 2 managers
        # resolve => 2 hits.
        assert _value(obs, "evaluator_vertices_visited",
                      "dept.manager sub person.id") == 8
        assert _value(obs, "evaluator_index_hits",
                      "dept.manager sub person.id") == 2
        assert _value(obs, "evaluator_index_misses",
                      "dept.manager sub person.id") == 0

    def test_inverse_counts(self, obs):
        # ext(person)=6 + ext(dept)=2 visited; 6 forward pairs + 6
        # backward pairs all satisfied => 12 hits, 0 misses.
        assert _value(obs, "evaluator_vertices_visited",
                      "person.in_dept inv dept.has_staff") == 8
        assert _value(obs, "evaluator_index_hits",
                      "person.in_dept inv dept.has_staff") == 12
        assert _value(obs, "evaluator_index_misses",
                      "person.in_dept inv dept.has_staff") == 0

    def test_no_violations(self, obs):
        assert obs.metrics.total("evaluator_violations") == 0


class TestSessionMetrics:
    def test_update_and_delta_accounting(self):
        dtd, tree = person_dept_export()
        obs = Observability()
        session = Validator(dtd, obs=obs).session(tree)
        session.revalidate()
        person = tree.ext("person")[0]
        session.set_attribute(person, "name", "Renamed")
        session.revalidate()
        assert obs.metrics.value("session_updates_applied") == 1
        assert obs.metrics.value("session_flushes") == 1
        h = obs.metrics.histogram("session_delta_vertices",
                                  buckets=(1, 2, 4, 8, 16, 64, 256, 1024))
        assert h.count == 1
        assert h.total >= 1


class TestImplicationCounters:
    def test_lid_rule_applications_match_closure(self):
        sigma = [IDConstraint("person"),
                 IDForeignKey("emp", Field("mgr"), "person")]
        obs = Observability()
        engine = LidEngine(sigma, obs=obs)
        reg = obs.metrics
        apps = reg.values("implication_rule_applications")
        # every closure member was counted under exactly one rule
        assert sum(apps.values()) == len(engine.closure)
        assert reg.value("implication_rule_applications",
                         {"engine": "lid", "rule": "given"}) == 2
        assert reg.value("implication_rule_applications",
                         {"engine": "lid", "rule": "ID-FK"}) == 1
        assert reg.value("implication_rule_applications",
                         {"engine": "lid", "rule": "ID-Key"}) == 1
        # the worklist popped each closure member exactly once
        assert reg.value("implication_closure_iterations",
                         {"engine": "lid"}) == len(engine.closure)
        names = [r.name for r in obs.tracer.roots]
        assert "lid.closure" in names

    def test_lu_counters_and_spans(self):
        sigma = [UnaryKey("a", Field("x")),
                 UnaryForeignKey("a", Field("y"), "b", Field("z"))]
        obs = Observability()
        LuEngine(sigma, obs=obs)
        reg = obs.metrics
        assert reg.total("implication_rule_applications") > 0
        assert reg.value("implication_closure_iterations",
                         {"engine": "lu"}) >= 1
        names = [r.name for r in obs.tracer.roots]
        assert "lu.closure.unrestricted" in names
        assert "lu.closure.finite" in names

    def test_l_primary_counters(self):
        from repro.constraints.lang_l import ForeignKey, Key
        sigma = [Key("a", (Field("x"),)),
                 ForeignKey("b", (Field("y"),), "a", (Field("x"),))]
        obs = Observability()
        engine = LPrimaryEngine(sigma, obs=obs)
        reg = obs.metrics
        apps = reg.values("implication_rule_applications")
        assert sum(apps.values()) == len(engine.closure)
        assert reg.value("implication_closure_iterations",
                         {"engine": "l_primary"}) == len(engine.closure)
        assert [r.name for r in obs.tracer.roots] == ["l_primary.closure"]

    def test_l_general_counterexample_histogram(self):
        from repro.constraints.lang_l import Key
        sigma = [Key("a", (Field("x"),))]
        obs = Observability()
        engine = LGeneralEngine(sigma, obs=obs)
        result = engine.refute(Key("b", (Field("y"),)))
        assert result.model is not None
        h = obs.metrics.histogram("implication_counterexample_rows",
                                  {"engine": "l_general"},
                                  buckets=(1, 2, 4, 8, 16, 64, 256, 1024))
        assert h.count == 1
        assert h.total == sum(len(rs)
                              for rs in result.model.rows.values())
        names = [r.name for r in obs.tracer.roots]
        assert "l_general.saturate" in names
        assert "l_general.chase" in names


class TestDisabledPath:
    """With obs=None/NULL_OBS the engines take the uninstrumented path
    and record nothing."""

    def test_validator_without_obs_records_nothing(self):
        validator = Validator(book_dtdc())
        report = validator.validate(book_document())
        assert report.ok
        assert validator.obs is None

    def test_null_obs_threads_through_everything(self):
        report = Validator(book_dtdc(), obs=NULL_OBS).validate(
            book_document())
        assert report.ok
        assert NULL_OBS.tracer.roots == ()
        assert NULL_OBS.metrics.collect() == []

    def test_engines_accept_null_obs(self):
        sigma = [IDConstraint("person")]
        engine = LidEngine(sigma, obs=NULL_OBS)
        assert engine.implies(IDConstraint("person"))
        assert NULL_OBS.metrics.total("implication_rule_applications") == 0
