"""Unit tests for the constraint classes of L, L_u and L_id."""

import pytest

from repro.constraints import (
    Field, ForeignKey, IDConstraint, IDForeignKey, IDInverse,
    IDSetValuedForeignKey, Inverse, Key, Language, SetValuedForeignKey,
    UnaryForeignKey, UnaryKey, attr, elem,
)


class TestField:
    def test_str_forms(self):
        assert str(attr("isbn")) == "isbn"
        assert str(elem("name")) == "<name>"

    def test_values_on_vertex(self):
        from repro.datamodel import TreeBuilder
        b = TreeBuilder("p")
        b.leaf("name", "ann")
        b.tree.root.set_attribute("oid", "p1")
        assert attr("oid").values_on(b.tree.root) == frozenset({"p1"})
        assert elem("name").values_on(b.tree.root) == frozenset({"ann"})
        assert attr("zzz").values_on(b.tree.root) == frozenset()
        assert elem("name").single_on(b.tree.root) == "ann"
        assert attr("zzz").single_on(b.tree.root) is None

    def test_string_coercion_in_constraints(self):
        k = UnaryKey("p", "name")
        assert k.field == attr("name")
        k2 = UnaryKey("p", "<name>")
        assert k2.field == elem("name")


class TestKey:
    def test_field_set_order_insensitive(self):
        k1 = Key("r", (attr("a"), attr("b")))
        k2 = Key("r", (attr("b"), attr("a")))
        assert k1.field_set == k2.field_set
        assert str(k1) == str(k2)

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            Key("r", (attr("a"), attr("a")))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Key("r", ())

    def test_unary_detection(self):
        assert Key("r", (attr("a"),)).is_unary()
        assert not Key("r", (attr("a"), attr("b"))).is_unary()

    def test_language_tags(self):
        assert Key("r", (attr("a"), attr("b"))).in_language(Language.L)
        assert not Key("r", (attr("a"), attr("b"))).in_language(Language.LU)
        assert UnaryKey("r", "a").in_language(Language.LU)
        assert UnaryKey("r", "a").in_language(Language.LID)
        assert UnaryKey("r", "a").in_language(Language.L)


class TestForeignKey:
    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            ForeignKey("a", ("x", "y"), "b", ("z",))

    def test_implied_target_key(self):
        fk = ForeignKey("a", ("x", "y"), "b", ("u", "v"))
        assert fk.implied_target_key() == Key("b", ("u", "v"))

    def test_permuted(self):
        fk = ForeignKey("a", ("x", "y"), "b", ("u", "v"))
        p = fk.permuted((1, 0))
        assert p.fields == (attr("y"), attr("x"))
        assert p.target_fields == (attr("v"), attr("u"))
        with pytest.raises(ValueError):
            fk.permuted((0, 0))

    def test_canonical_identifies_permutations(self):
        fk = ForeignKey("a", ("y", "x"), "b", ("v", "u"))
        other = ForeignKey("a", ("x", "y"), "b", ("u", "v"))
        assert fk.canonical() == other.canonical()
        different = ForeignKey("a", ("x", "y"), "b", ("v", "u"))
        assert different.canonical() != fk.canonical()

    def test_alignment(self):
        fk = ForeignKey("a", ("x", "y"), "b", ("u", "v"))
        assert fk.alignment() == {attr("x"): attr("u"),
                                  attr("y"): attr("v")}


class TestLuForms:
    def test_unary_fk_target_key(self):
        fk = UnaryForeignKey("a", "x", "b", "k")
        assert fk.implied_target_key() == UnaryKey("b", "k")

    def test_sfk_str(self):
        assert str(SetValuedForeignKey("ref", "to", "entry", "isbn")) == \
            "ref.to subS entry.isbn"

    def test_inverse_flip_is_symmetric(self):
        inv = Inverse("dept", "dname", "has_staff",
                      "person", "name", "in_dept")
        assert inv.flipped().flipped() == inv

    def test_inverse_implied_fks(self):
        inv = Inverse("dept", "dname", "has_staff",
                      "person", "name", "in_dept")
        fk1, fk2 = inv.implied_foreign_keys()
        assert str(fk1) == "dept.has_staff subS person.name"
        assert str(fk2) == "person.in_dept subS dept.dname"

    def test_inverse_required_keys(self):
        inv = Inverse("dept", "dname", "has_staff",
                      "person", "name", "in_dept")
        assert inv.required_keys() == (UnaryKey("dept", "dname"),
                                       UnaryKey("person", "name"))


class TestLidForms:
    def test_id_constraint_str(self):
        assert str(IDConstraint("person")) == "person.id ->id person"

    def test_fk_implied_id(self):
        assert IDForeignKey("dept", "manager", "person").implied_id() == \
            IDConstraint("person")
        assert IDSetValuedForeignKey("dept", "staff",
                                     "person").implied_id() == \
            IDConstraint("person")

    def test_id_inverse_flip_and_fks(self):
        inv = IDInverse("dept", "has_staff", "person", "in_dept")
        assert inv.flipped().flipped() == inv
        fk1, fk2 = inv.implied_foreign_keys()
        assert str(fk1) == "dept.has_staff subS person.id"
        assert str(fk2) == "person.in_dept subS dept.id"

    def test_languages(self):
        assert IDConstraint("p").languages is Language.LID
        assert Inverse("a", "k", "v", "b", "k2",
                       "v2").languages is Language.LU
