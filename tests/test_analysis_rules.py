"""Per-rule tests: every diagnostic code has a schema that fires it and
a schema where it stays silent."""

import pathlib

from repro.analysis import analyze, analyze_structure
from repro.dtd import DTDStructure
from repro.xmlio.dtdparse import parse_dtdc

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def lint_text(text, root=None):
    return analyze(parse_dtdc(text, root=root, check=False))


def lint_fixture(name):
    return analyze(parse_dtdc((FIXTURES / name).read_text(), check=False))


def codes(report):
    return {d.code for d in report}


class TestStructuralRules:
    def test_xic101_fires_on_ambiguous_model(self):
        report = lint_fixture("nondeterministic.dtdc")
        (d,) = report.by_code("XIC101")
        assert d.element == "root"
        assert "1-unambiguous" in d.message

    def test_xic101_silent_on_deterministic_model(self):
        report = lint_text("""
<!ELEMENT root (a, (b | c))>
<!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>
""")
        assert "XIC101" not in codes(report)

    def test_xic102_fires_on_unreachable_type(self):
        report = lint_text("""
<!ELEMENT db (a*)>
<!ELEMENT a EMPTY>
<!ELEMENT orphan EMPTY>
""", root="db")
        (d,) = report.by_code("XIC102")
        assert d.element == "orphan"
        assert d.fix is not None

    def test_xic102_silent_when_all_reachable(self):
        assert "XIC102" not in codes(lint_fixture("book.dtdc"))

    def test_xic103_fires_on_dangling_reference(self):
        s = DTDStructure("db")
        s.define_element("db", "(ghost)")
        report = analyze_structure(s)
        (d,) = report.by_code("XIC103")
        assert "ghost" in d.message

    def test_xic103_fires_on_undeclared_root(self):
        s = DTDStructure("missing")
        s.define_element("a", "EMPTY")
        report = analyze_structure(s)
        assert any("root" in d.message for d in report.by_code("XIC103"))

    def test_xic103_silent_on_coherent_structure(self):
        assert "XIC103" not in codes(lint_fixture("book.dtdc"))


class TestWellFormednessRules:
    def test_xic201_fires_on_undeclared_element(self):
        report = lint_text("""
<!ELEMENT db (a*)>
<!ELEMENT a EMPTY>
%% constraints
ghost.x -> ghost
""")
        (d,) = report.by_code("XIC201")
        assert "ghost" in d.message
        assert d.constraint == "ghost.x -> ghost"

    def test_xic202_fires_on_undeclared_attribute(self):
        report = lint_fixture("illformed.dtdc")
        (d,) = report.by_code("XIC202")
        assert "a.missing" in d.message

    def test_xic203_fires_on_arity_mismatch(self):
        report = lint_text("""
<!ELEMENT db (ref*)>
<!ELEMENT ref EMPTY>
<!ATTLIST ref to NMTOKENS #REQUIRED>
%% constraints
ref.to -> ref
""")
        (d,) = report.by_code("XIC203")
        assert "single-valued" in d.message

    def test_xic204_fires_on_unstated_target_key(self):
        report = lint_fixture("illformed.dtdc")
        (d,) = report.by_code("XIC204")
        assert "not a stated key" in d.message

    def test_xic205_fires_on_missing_id_constraint(self):
        report = lint_text("""
<!ELEMENT db (a*, b*)>
<!ELEMENT a EMPTY>
<!ATTLIST a r IDREF #REQUIRED>
<!ELEMENT b EMPTY>
<!ATTLIST b oid ID #REQUIRED>
%% constraints
a.r sub b.id
""")
        (d,) = report.by_code("XIC205")
        assert "no stated ID constraint" in d.message

    def test_xic2xx_silent_on_wellformed_schema(self):
        for fixture in ("book.dtdc", "clean.dtdc", "divergent.dtdc"):
            report = lint_fixture(fixture)
            assert not report.by_code("XIC2"), fixture


class TestCrossLanguageTarget:
    """XIC206: the previously-silent mixed-language acceptance bug."""

    MIXED = """
<!ELEMENT db (a*, b*)>
<!ELEMENT a EMPTY>
<!ATTLIST a r IDREF #REQUIRED rs NMTOKENS #REQUIRED>
<!ELEMENT b EMPTY>
<!ATTLIST b oid ID #REQUIRED>
%% constraints
b.oid -> b
a.rs subS b.oid
b.oid ->id b
a.r sub b.id
"""

    def test_xic206_fires_on_mixed_language_id_target(self):
        report = lint_text(self.MIXED)
        matches = report.by_code("XIC206")
        assert matches, "mixed-language FK/target pair must be reported"
        assert any("mixes constraint languages" in d.message
                   for d in matches)

    def test_xic206_fires_on_id_covered_near_miss(self):
        # The L_u FK references b's ID attribute, whose only key
        # statement is the L_id ID constraint -- a different language.
        report = lint_text("""
<!ELEMENT db (a*, b*)>
<!ELEMENT a EMPTY>
<!ATTLIST a r CDATA #REQUIRED>
<!ELEMENT b EMPTY>
<!ATTLIST b oid ID #REQUIRED>
%% constraints
b.oid ->id b
a.r sub b.oid
""")
        (d,) = report.by_code("XIC206")
        assert "state b.oid -> b explicitly" in d.message
        assert "XIC204" in codes(report)

    def test_xic206_silent_on_single_language_schemas(self):
        for fixture in ("book.dtdc", "clean.dtdc", "inconsistent.dtdc"):
            assert "XIC206" not in codes(lint_fixture(fixture)), fixture


class TestRedundancy:
    """XIC301 invokes the implication engines (Prop 3.1 / Thm 3.2)."""

    def test_fires_via_lu_engine(self):
        report = lint_fixture("redundant.dtdc")
        (d,) = report.by_code("XIC301")
        assert d.constraint == "dept.has_staff subS person.name"
        assert "Inv-SFK" in d.message

    def test_fires_via_lid_engine(self):
        report = lint_text("""
<!ELEMENT db (a*, b*)>
<!ELEMENT a EMPTY>
<!ATTLIST a oid ID #REQUIRED rs IDREFS #REQUIRED>
<!ELEMENT b EMPTY>
<!ATTLIST b oid ID #REQUIRED ss IDREFS #REQUIRED>
%% constraints
a.oid ->id a
b.oid ->id b
a.rs inv b.ss
a.rs subS b.id
""")
        (d,) = report.by_code("XIC301")
        assert d.constraint == "a.rs subS b.id"
        assert "Inv-SFK-ID" in d.message

    def test_mandated_target_keys_not_flagged(self):
        # entry.isbn -> entry is derivable from the set-valued FK
        # (rule SFK-K) but must be stated for well-formedness, so the
        # redundancy rule must not tell the user to drop it.
        assert "XIC301" not in codes(lint_fixture("book.dtdc"))

    def test_silent_without_redundancy(self):
        assert "XIC301" not in codes(lint_fixture("clean.dtdc"))


class TestDivergence:
    """XIC302: finite vs unrestricted implication (Cor 3.3)."""

    def test_fires_on_cor33_schema(self):
        report = lint_fixture("divergent.dtdc")
        matches = report.by_code("XIC302")
        assert matches
        assert any("tau.b sub tau.a" in d.message and "C_k" in d.message
                   and "Cor 3.3" in d.message for d in matches)

    def test_silent_on_acyclic_schema(self):
        assert "XIC302" not in codes(lint_fixture("book.dtdc"))

    def test_silent_for_lid(self):
        # Prop 3.1: implication and finite implication coincide in L_id.
        assert "XIC302" not in codes(lint_fixture("clean.dtdc"))


class TestConsistencyRules:
    DEGENERATE_OPTIONAL = """
<!ELEMENT db (a*, b*, c*)>
<!ELEMENT a EMPTY>
<!ATTLIST a r IDREF #REQUIRED>
<!ELEMENT b EMPTY>
<!ATTLIST b oid ID #REQUIRED>
<!ELEMENT c EMPTY>
<!ATTLIST c oid ID #REQUIRED>
%% constraints
b.oid ->id b
c.oid ->id c
a.r sub b.id
a.r sub c.id
"""

    def test_xic303_fires_on_required_vacuous_type(self):
        report = lint_fixture("inconsistent.dtdc")
        matches = report.by_code("XIC303")
        assert {d.element for d in matches} == {"a", "db"}
        assert all(d.severity.value == "error" for d in matches)

    def test_xic303_silent_when_vacuous_type_optional(self):
        report = lint_text(self.DEGENERATE_OPTIONAL)
        assert "XIC303" not in codes(report)

    def test_xic304_fires_on_optional_vacuous_type(self):
        report = lint_text(self.DEGENERATE_OPTIONAL)
        (d,) = report.by_code("XIC304")
        assert d.element == "a"
        assert "vacuously" in d.message

    def test_xic304_silent_on_satisfiable_schema(self):
        assert "XIC304" not in codes(lint_fixture("clean.dtdc"))


class TestDuplicatesAndShadowing:
    def test_xic305_fires_on_restated_constraint(self):
        report = lint_text("""
<!ELEMENT db (a*)>
<!ELEMENT a EMPTY>
<!ATTLIST a k CDATA #REQUIRED>
%% constraints
a.k -> a
a.k -> a
""")
        (d,) = report.by_code("XIC305")
        assert "stated 2 times" in d.message
        # Duplicates are XIC305's finding, not XIC301's.
        assert "XIC301" not in codes(report)

    def test_xic305_silent_without_duplicates(self):
        assert "XIC305" not in codes(lint_fixture("book.dtdc"))

    def test_xic306_fires_on_superset_key(self):
        report = lint_text("""
<!ELEMENT db (book*)>
<!ELEMENT book EMPTY>
<!ATTLIST book isbn CDATA #REQUIRED shelf CDATA #REQUIRED>
%% constraints
book.isbn -> book
book[isbn, shelf] -> book
""")
        (d,) = report.by_code("XIC306")
        assert d.constraint == "book[isbn, shelf] -> book"
        assert "book.isbn -> book" in d.message

    def test_xic306_silent_on_incomparable_keys(self):
        report = lint_text("""
<!ELEMENT db (book*)>
<!ELEMENT book EMPTY>
<!ATTLIST book isbn CDATA #REQUIRED barcode CDATA #REQUIRED>
%% constraints
book.isbn -> book
book.barcode -> book
""")
        assert "XIC306" not in codes(report)


class TestPrimaryKeyRules:
    PUBLISHER_L = """
<!ELEMENT db (publisher*, editor*)>
<!ELEMENT publisher EMPTY>
<!ATTLIST publisher pname CDATA #REQUIRED country CDATA #REQUIRED>
<!ELEMENT editor EMPTY>
<!ATTLIST editor name CDATA #REQUIRED
                 pname CDATA #REQUIRED country CDATA #REQUIRED>
%% constraints
publisher[pname, country] -> publisher
editor[name, pname] -> editor
editor[pname, country] sub publisher[pname, country]
"""

    TWO_KEYS_REFERENCED = """
<!ELEMENT db (a*, b*)>
<!ELEMENT a EMPTY>
<!ATTLIST a r CDATA #REQUIRED s CDATA #REQUIRED>
<!ELEMENT b EMPTY>
<!ATTLIST b k1 CDATA #REQUIRED k2 CDATA #REQUIRED>
%% constraints
b.k1 -> b
b.k2 -> b
a.r sub b.k1
a.s sub b.k2
"""

    def test_xic307_fires_for_lu_restriction(self):
        report = lint_fixture("book.dtdc")
        (d,) = report.by_code("XIC307")
        assert "Thm 3.4" in d.message
        assert not d.is_finding  # info only: lint still exits 0

    def test_xic307_fires_for_primary_l(self):
        report = lint_text(self.PUBLISHER_L)
        (d,) = report.by_code("XIC307")
        assert "Thm 3.8" in d.message

    def test_xic307_silent_outside_restriction(self):
        assert "XIC307" not in codes(lint_text(self.TWO_KEYS_REFERENCED))

    def test_xic307_silent_for_lid(self):
        # Prop 3.1 gives the coincidence unconditionally in L_id;
        # there is no restriction to certify.
        assert "XIC307" not in codes(lint_fixture("clean.dtdc"))

    def test_xic308_fires_outside_restriction_in_full_l(self):
        report = lint_text("""
<!ELEMENT db (a*, b*)>
<!ELEMENT a EMPTY>
<!ATTLIST a r1 CDATA #REQUIRED r2 CDATA #REQUIRED
            s1 CDATA #REQUIRED s2 CDATA #REQUIRED>
<!ELEMENT b EMPTY>
<!ATTLIST b k1 CDATA #REQUIRED k2 CDATA #REQUIRED
            k3 CDATA #REQUIRED k4 CDATA #REQUIRED>
%% constraints
b[k1, k2] -> b
b[k3, k4] -> b
a[r1, r2] sub b[k1, k2]
a[s1, s2] sub b[k3, k4]
""")
        (d,) = report.by_code("XIC308")
        assert "Thm 3.6" in d.message
        assert "undecidable" in d.message

    def test_xic308_silent_under_restriction(self):
        assert "XIC308" not in codes(lint_text(self.PUBLISHER_L))


class TestSemanticRulesGuardOnBrokenSchemas:
    def test_semantic_family_skips_illformed_sigma(self):
        report = lint_fixture("illformed.dtdc")
        assert report.by_code("XIC2")
        assert not report.by_code("XIC3")
