"""Unit tests for the fluent tree builder."""

import pytest

from repro.datamodel import TreeBuilder


def test_nested_structure():
    b = TreeBuilder("book")
    with b.element("entry", isbn="1"):
        b.leaf("title", "T")
        b.leaf("publisher", "P")
    b.leaf("author", "A")
    tree = b.tree
    assert tree.root.label == "book"
    entry = tree.root.first_child_labeled("entry")
    assert entry.single("isbn") == "1"
    assert [c.label for c in entry.child_vertices] == ["title", "publisher"]
    assert entry.first_child_labeled("title").text == "T"


def test_root_attributes():
    b = TreeBuilder("r", lang="en")
    assert b.tree.root.single("lang") == "en"


def test_attrs_mapping_for_awkward_names():
    b = TreeBuilder("r")
    b.leaf("x", attrs={"data-id": "7"})
    assert b.tree.root.first_child_labeled("x").single("data-id") == "7"


def test_set_valued_attribute():
    b = TreeBuilder("r")
    b.leaf("ref", to=["a", "b"])
    assert b.tree.root.first_child_labeled("ref").attr("to") == \
        frozenset({"a", "b"})


def test_text_inside_element():
    b = TreeBuilder("r")
    with b.element("s"):
        b.text("hello ")
        b.text("world")
    assert b.tree.root.first_child_labeled("s").text == "hello world"


def test_current_tracks_nesting():
    b = TreeBuilder("r")
    assert b.current is b.tree.root
    with b.element("x") as x:
        assert b.current is x
    assert b.current is b.tree.root


def test_stack_restored_on_exception():
    b = TreeBuilder("r")
    with pytest.raises(RuntimeError):
        with b.element("x"):
            raise RuntimeError("boom")
    assert b.current is b.tree.root


def test_leaf_without_text_is_empty():
    b = TreeBuilder("r")
    leaf = b.leaf("e")
    assert leaf.children == ()
