"""Tests for L_u implication and finite implication (§3.2, Thm 3.2,
Cor 3.3): axioms, cycle rules, and the divergence of the two problems."""

import pytest

from repro.constraints import (
    IDConstraint, Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
    attr,
)
from repro.errors import ConstraintError, LanguageMismatchError
from repro.implication.counterexample import divergence_witness
from repro.implication.lu import LuEngine


def uk(t, f):
    return UnaryKey(t, attr(f))


def ufk(t, f, t2, f2):
    return UnaryForeignKey(t, attr(f), t2, attr(f2))


def sfk(t, f, t2, f2):
    return SetValuedForeignKey(t, attr(f), t2, attr(f2))


class TestUnrestrictedAxioms:
    def test_given_implied(self):
        sigma = [uk("a", "k"), ufk("b", "f", "a", "k")]
        engine = LuEngine(sigma)
        for c in sigma:
            assert engine.implies(c)

    def test_ufk_k(self):
        engine = LuEngine([ufk("b", "f", "a", "k")])
        result = engine.implies(uk("a", "k"))
        assert result and result.derivation.rule == "UFK-K"

    def test_sfk_k(self):
        engine = LuEngine([sfk("b", "s", "a", "k")])
        assert engine.implies(uk("a", "k")).derivation.rule == "SFK-K"

    def test_uk_fk_reflexivity(self):
        engine = LuEngine([uk("a", "k")])
        assert engine.implies(ufk("a", "k", "a", "k"))
        # Without the key, the reflexive query is not well-formed/implied.
        engine2 = LuEngine([])
        assert not engine2.implies(ufk("a", "k", "a", "k"))

    def test_ufk_trans(self):
        sigma = [uk("b", "k"), uk("c", "k"),
                 ufk("a", "f", "b", "k"), ufk("b", "k", "c", "k")]
        engine = LuEngine(sigma)
        result = engine.implies(ufk("a", "f", "c", "k"))
        assert result and result.derivation.rule == "UFK-trans"

    def test_usfk_trans(self):
        sigma = [uk("b", "k"), uk("c", "k"),
                 sfk("a", "s", "b", "k"), ufk("b", "k", "c", "k")]
        engine = LuEngine(sigma)
        assert engine.implies(sfk("a", "s", "c", "k"))

    def test_no_sfk_after_ufk(self):
        """The paper notes the missing rule: UFK then SFK cannot chain,
        because key attributes are never set-valued — such a Σ is
        rejected outright as arity-inconsistent."""
        with pytest.raises(ConstraintError):
            LuEngine([uk("b", "k"), uk("c", "k"),
                      ufk("a", "f", "b", "k"), sfk("b", "k", "c", "k")])

    def test_inv_sfk(self):
        inv = Inverse("d", attr("dk"), attr("staff"),
                      "p", attr("pk"), attr("depts"))
        sigma = [uk("d", "dk"), uk("p", "pk"), inv]
        engine = LuEngine(sigma)
        assert engine.implies(sfk("d", "staff", "p", "pk"))
        assert engine.implies(sfk("p", "depts", "d", "dk"))

    def test_inverse_needs_derivable_keys(self):
        inv = Inverse("d", attr("dk"), attr("staff"),
                      "p", attr("pk"), attr("depts"))
        engine = LuEngine([inv])  # keys not stated
        assert not engine.implies(sfk("d", "staff", "p", "pk"))
        assert not engine.implies(inv)

    def test_inverse_flip(self):
        inv = Inverse("d", attr("dk"), attr("staff"),
                      "p", attr("pk"), attr("depts"))
        engine = LuEngine([uk("d", "dk"), uk("p", "pk"), inv])
        assert engine.implies(inv.flipped())

    def test_inverse_with_other_keys_not_implied(self):
        inv = Inverse("d", attr("dk"), attr("staff"),
                      "p", attr("pk"), attr("depts"))
        engine = LuEngine([uk("d", "dk"), uk("p", "pk"),
                           uk("d", "dk2"), inv])
        other = Inverse("d", attr("dk2"), attr("staff"),
                        "p", attr("pk"), attr("depts"))
        assert not engine.implies(other)

    def test_fk_requires_target_key(self):
        engine = LuEngine([uk("b", "k"), ufk("a", "f", "b", "k")])
        # a.f includes b.k, but nothing makes a.f a key, so b.k sub a.f
        # is not even well-formed — reported as not implied.
        assert not engine.implies(ufk("b", "k", "a", "f"))


class TestFiniteImplication:
    def test_divergence_example(self):
        sigma, phi, witness = divergence_witness()
        engine = LuEngine(sigma)
        assert not engine.implies(phi)
        assert engine.finitely_implies(phi)
        assert witness.check(sigma, phi)

    def test_cycle_derives_key(self):
        # a key, a sub b  ==>  finitely, b is also a key of tau
        # (|vals(b)| >= |vals(a)| = |ext|, but |vals(b)| <= |ext|).
        sigma = [uk("t", "a"), uk("t", "b"),
                 ufk("t", "a", "t", "b")]
        engine = LuEngine(sigma)
        # Here both keys are stated; check the derived reverse inclusion
        # and also a longer cycle through two types.
        assert engine.finitely_implies(ufk("t", "b", "t", "a"))

    def test_two_type_cycle(self):
        sigma = [uk("t1", "a"), uk("t1", "b"),
                 uk("t2", "c"), uk("t2", "d"),
                 ufk("t1", "a", "t2", "c"), ufk("t2", "d", "t1", "b")]
        engine = LuEngine(sigma)
        phi = ufk("t2", "c", "t1", "a")
        assert not engine.implies(phi)
        assert engine.finitely_implies(phi)
        phi2 = ufk("t1", "b", "t2", "d")
        assert not engine.implies(phi2)
        assert engine.finitely_implies(phi2)

    def test_cycle_keys_already_follow_from_ufk_k(self):
        # In L_u every inclusion target is a key by UFK-K/SFK-K, so the
        # cycle rules can only ever add *reversed inclusions* — a key
        # conclusion like t1.b -> t1 is derivable even unrestrictedly.
        sigma = [uk("t1", "a"), uk("t2", "c"),
                 ufk("t1", "a", "t2", "c"), ufk("t2", "c", "t1", "b")]
        engine = LuEngine(sigma)
        phi = uk("t1", "b")
        assert engine.implies(phi)
        assert engine.finitely_implies(phi)
        # The reversed inclusions along the cycle are finite-only.
        rev = ufk("t1", "b", "t2", "c")
        assert not engine.implies(rev)
        assert engine.finitely_implies(rev)

    def test_no_cycle_no_divergence(self):
        sigma = [uk("b", "k"), ufk("a", "f", "b", "k")]
        engine = LuEngine(sigma)
        for phi in (uk("a", "f"), ufk("b", "k", "a", "f"),
                    ufk("a", "f", "b", "k")):
            assert engine.problems_coincide_on(phi)

    def test_unrestricted_implies_finite(self):
        """Monotonicity: Σ ⊨ φ entails Σ ⊨_f φ (fewer models)."""
        from repro.workloads import random_lu_implication_instance
        for seed in range(40):
            sigma, phi = random_lu_implication_instance(seed)
            engine = LuEngine(sigma)
            if engine.implies(phi):
                assert engine.finitely_implies(phi), \
                    f"seed {seed}: {phi} unrestricted but not finite"

    def test_set_valued_cycle_derives_no_false_keys(self):
        # A cycle through a set-valued edge gives cardinality equality
        # but must not mark the set-valued node as a key.
        sigma = [uk("t", "k"), sfk("t", "s", "t", "k")]
        engine = LuEngine(sigma)
        assert not engine.finitely_implies(uk("t", "s"))


class TestEngineHygiene:
    def test_rejects_other_languages(self):
        with pytest.raises(LanguageMismatchError):
            LuEngine([IDConstraint("a")])

    def test_arity_conflict_rejected(self):
        with pytest.raises(ConstraintError):
            LuEngine([uk("a", "x"), sfk("a", "x", "b", "k")])

    def test_derivable_keys_sets(self):
        sigma, phi, _w = divergence_witness()
        engine = LuEngine(sigma)
        assert engine.derivable_keys() == \
            {("tau", attr("a")), ("tau", attr("b"))}


class TestSubelementFields:
    """§3.4 on the implication side: the engines treat sub-element
    fields exactly like attribute fields (they are opaque keys)."""

    def test_chain_through_subelements(self):
        from repro.constraints import elem
        sigma = [UnaryKey("person", elem("name")),
                 UnaryKey("employee", elem("ename")),
                 UnaryForeignKey("badge", elem("owner"),
                                 "person", elem("name")),
                 UnaryForeignKey("person", elem("name"),
                                 "employee", elem("ename"))]
        engine = LuEngine(sigma)
        assert engine.implies(
            UnaryForeignKey("badge", elem("owner"),
                            "employee", elem("ename")))

    def test_attribute_and_subelement_are_distinct_fields(self):
        from repro.constraints import elem
        sigma = [UnaryKey("person", elem("name"))]
        engine = LuEngine(sigma)
        assert engine.implies(UnaryKey("person", elem("name")))
        assert not engine.implies(UnaryKey("person", attr("name")))
