"""The validation service: registry semantics and both transports.

Three layers, matching the design:

1. :class:`~repro.server.registry.SchemaRegistry` /
   :class:`~repro.server.registry.SchemaHandle` unit semantics —
   load/reload/unload/resolve, versioning, hot-swap immutability, and
   the compile-once guarantee (the ``registry_schema_compilations``
   counter is the regression tripwire);
2. the :class:`~repro.server.daemon.ValidationServer` dispatcher —
   request admission, cache hits, error mapping, and the deterministic
   hot-reload proof via the ``admission_hook`` seam;
3. the wire transports, end to end in-process — concurrent HTTP
   keep-alive clients, JSONL over a TCP stream pair, JSONL over stdio —
   all returning reports byte-identical to the ``Validator`` facade.
"""

import asyncio
import io
import json

import pytest

from repro import (
    Observability, SchemaRegistry, ValidationServer, Validator,
)
from repro.errors import ReproError
from repro.obs import NULL_TRACER
from repro.server import SchemaHandle, SchemaNotFound, as_handle
from repro.workloads import book_document
from repro.workloads.book import BOOK_CONSTRAINTS_TEXT, BOOK_DTD_TEXT
from repro.xmlio import parse_dtdc, serialize

SCHEMA_TEXT = BOOK_DTD_TEXT + "\n%% constraints\n" + BOOK_CONSTRAINTS_TEXT

LIB_V1 = """
<!ELEMENT library (entry*, ref*)>
<!ELEMENT entry (#PCDATA)?>
<!ELEMENT ref EMPTY>
<!ATTLIST entry isbn CDATA #REQUIRED shelf CDATA #REQUIRED>
<!ATTLIST ref to CDATA #REQUIRED>
%% constraints
entry.isbn -> entry
"""

#: Same structure, one more constraint — a hot reload that flips the
#: verdict of DOC_DANGLING from valid (v1) to invalid (v2).
LIB_V2 = LIB_V1 + "ref.to sub entry.isbn\n"

DOC_DANGLING = ('<library><entry isbn="1" shelf="a">x</entry>'
                '<ref to="zzz"/></library>')


def run(coro):
    return asyncio.run(coro)


def make_obs():
    return Observability(tracer=NULL_TRACER)


def make_server(cache=None):
    obs = make_obs()
    registry = SchemaRegistry(obs=obs)
    registry.load("book", SCHEMA_TEXT, root="book")
    return ValidationServer(registry, cache=cache, obs=obs)


@pytest.fixture(scope="module")
def doc_text():
    return serialize(book_document())


@pytest.fixture(scope="module")
def facade_report(doc_text):
    """What the CLI would emit: the ``Validator`` facade's report."""
    dtd = parse_dtdc(SCHEMA_TEXT, root="book")
    return Validator(dtd).check(doc_text, engine="stream").to_dict()


# ----------------------------------------------------------------------
# 1. registry semantics
# ----------------------------------------------------------------------

class TestSchemaRegistry:
    def test_load_get_roundtrip(self):
        registry = SchemaRegistry()
        handle = registry.load("book", SCHEMA_TEXT, root="book")
        assert registry.get("book") is handle
        assert handle.name == "book"
        assert handle.version == 1
        assert handle.active
        assert "book" in registry
        assert registry.names() == ["book"]
        assert len(registry) == 1

    def test_load_from_path(self, tmp_path):
        path = tmp_path / "book.dtdc"
        path.write_text(SCHEMA_TEXT)
        registry = SchemaRegistry()
        handle = registry.load("book", str(path), root="book")
        assert handle.source_text == SCHEMA_TEXT
        assert handle.dtd.structure.root == "book"

    def test_duplicate_load_is_an_error(self):
        registry = SchemaRegistry()
        registry.load("book", SCHEMA_TEXT, root="book")
        with pytest.raises(ReproError, match="already loaded"):
            registry.load("book", SCHEMA_TEXT, root="book")

    def test_put_upserts(self):
        registry = SchemaRegistry()
        first = registry.put("book", SCHEMA_TEXT, root="book")
        second = registry.put("book", SCHEMA_TEXT, root="book")
        assert (first.version, second.version) == (1, 2)
        assert not first.active
        assert second.active
        assert registry.get("book") is second

    def test_reload_reparses_stored_source(self):
        registry = SchemaRegistry()
        old = registry.load("lib", LIB_V1)
        new = registry.reload("lib")
        assert new.version == 2
        assert new is not old
        assert new.source_text == old.source_text
        # the old handle is superseded but never mutated
        assert not old.active
        assert old.dtd is not new.dtd

    def test_reload_unknown_raises(self):
        with pytest.raises(SchemaNotFound):
            SchemaRegistry().reload("ghost")

    def test_reload_of_in_memory_dtdc_needs_source(self):
        registry = SchemaRegistry()
        registry.load("lib", parse_dtdc(LIB_V1))
        with pytest.raises(ReproError, match="without a source"):
            registry.reload("lib")

    def test_get_unknown_names_the_loaded_ones(self):
        registry = SchemaRegistry()
        registry.load("book", SCHEMA_TEXT, root="book")
        with pytest.raises(SchemaNotFound, match="loaded: book"):
            registry.get("ghost")

    def test_unload(self):
        registry = SchemaRegistry()
        handle = registry.load("book", SCHEMA_TEXT, root="book")
        assert registry.unload("book") is handle
        assert not handle.active
        assert "book" not in registry
        with pytest.raises(SchemaNotFound):
            registry.unload("book")

    def test_resolve_uniform_contract(self):
        registry = SchemaRegistry()
        handle = registry.load("book", SCHEMA_TEXT, root="book")
        assert registry.resolve("book") is handle
        assert registry.resolve(handle) is handle
        dtd = parse_dtdc(LIB_V1)
        adhoc = registry.resolve(dtd)
        assert isinstance(adhoc, SchemaHandle)
        assert registry.resolve(dtd) is adhoc  # memoized

    def test_as_handle_memoizes_and_rejects_strings(self):
        dtd = parse_dtdc(LIB_V1)
        assert as_handle(dtd) is as_handle(dtd)
        with pytest.raises(TypeError, match="SchemaRegistry"):
            as_handle("book")


class TestCompileOnce:
    def test_one_compilation_across_call_sites(self, doc_text):
        """The satellite regression: stream + corpus + repeat calls on
        one registry entry compile the plan exactly once."""
        obs = make_obs()
        registry = SchemaRegistry(obs=obs)
        registry.load("book", SCHEMA_TEXT, root="book")
        validator = Validator.from_registry(registry, "book")
        validator.check_stream(doc_text)
        validator.check_stream(doc_text)
        validator.check_corpus([("d0", doc_text)], stream=True)
        compilations = obs.counter("registry_schema_compilations")
        assert compilations.value == 1

    def test_validator_from_registry_follows_reload(self, doc_text):
        registry = SchemaRegistry()
        registry.load("lib", LIB_V1)
        validator = Validator.from_registry(registry, "lib")
        assert validator.schema_name == "lib"
        assert validator.registry is registry
        assert validator.check_stream(DOC_DANGLING).ok
        registry.reload("lib", LIB_V2)
        assert validator.handle.version == 2
        assert not validator.check_stream(DOC_DANGLING).ok


# ----------------------------------------------------------------------
# 2. the dispatcher
# ----------------------------------------------------------------------

class TestDispatcher:
    def test_ping_and_schemas(self):
        server = make_server()
        payload, status = server.handle_request({"op": "ping", "id": 7})
        assert status == 200
        assert payload["ok"] and payload["id"] == 7
        assert payload["schemas"] == ["book"]
        payload, _ = server.handle_request({"op": "schemas"})
        assert payload["schemas"][0]["name"] == "book"
        assert payload["schemas"][0]["version"] == 1

    def test_validate_matches_facade(self, doc_text, facade_report):
        server = make_server()
        for mode in ("stream", "batch"):
            payload, status = server.handle_request(
                {"op": "validate", "schema": "book",
                 "document": doc_text, "mode": mode})
            assert status == 200
            assert payload["valid"] and not payload["cached"]
            assert json.dumps(payload["report"], sort_keys=True) \
                == json.dumps(facade_report, sort_keys=True)

    def test_validate_document_path(self, tmp_path, doc_text,
                                    facade_report):
        doc = tmp_path / "book.xml"
        doc.write_text(doc_text)
        server = make_server()
        payload, _ = server.handle_request(
            {"op": "validate", "schema": "book",
             "document_path": str(doc)})
        assert payload["report"] == facade_report

    def test_cache_hit_is_byte_identical(self, tmp_path, doc_text):
        server = make_server(cache=str(tmp_path))
        cold, _ = server.handle_request(
            {"op": "validate", "schema": "book", "document": doc_text})
        warm, _ = server.handle_request(
            {"op": "validate", "schema": "book", "document": doc_text})
        assert not cold["cached"] and warm["cached"]
        assert warm["key"] == cold["key"]
        assert warm["report"] == cold["report"]
        hits = server.obs.counter("serve_cache_hits")
        assert hits.value == 1

    def test_hot_reload_in_flight_finishes_on_old_schema(self):
        """The zero-downtime proof, made deterministic: the admission
        hook fires after the request pinned its handle, reloads the
        schema under it, and the request must still complete on v1."""
        server = make_server()
        server.registry.load("lib", LIB_V1)
        v1_fingerprint = server.registry.get("lib").fingerprint

        def hook(op, handle):
            if handle.name == "lib" and handle.version == 1:
                server.registry.reload("lib", LIB_V2)

        server.admission_hook = hook
        in_flight, status = server.handle_request(
            {"op": "validate", "schema": "lib",
             "document": DOC_DANGLING})
        assert status == 200
        # admitted on v1, completed on v1 — despite the mid-request swap
        assert in_flight["schema"]["version"] == 1
        assert in_flight["schema"]["fingerprint"] == v1_fingerprint
        assert in_flight["valid"]
        # the next admission sees v2, where the dangling ref is invalid
        after, _ = server.handle_request(
            {"op": "validate", "schema": "lib",
             "document": DOC_DANGLING})
        assert after["schema"]["version"] == 2
        assert after["schema"]["fingerprint"] != v1_fingerprint
        assert not after["valid"]

    def test_registry_ops_over_the_wire_shape(self):
        server = make_server()
        payload, status = server.handle_request(
            {"op": "load", "name": "lib", "schema": LIB_V1})
        assert (status, payload["schema"]["version"]) == (201, 1)
        payload, status = server.handle_request(
            {"op": "reload", "name": "lib", "schema": LIB_V2})
        assert (status, payload["schema"]["version"]) == (200, 2)
        payload, status = server.handle_request(
            {"op": "unload", "name": "lib"})
        assert status == 200 and not payload["schema"]["active"]

    def test_error_mapping(self, doc_text):
        server = make_server()
        cases = [
            ({"op": "validate", "schema": "ghost",
              "document": doc_text}, 404, "not-found"),
            ({"op": "validate", "schema": "book",
              "document": "<book><unclosed>"}, 422, "invalid-document"),
            ({"op": "validate", "schema": "book"}, 400, "bad-request"),
            ({"op": "validate", "schema": "book", "document": doc_text,
              "mode": "psychic"}, 400, "bad-request"),
            ({"op": "validate", "schema": "book",
              "document_path": "/no/such/doc.xml"}, 400, "bad-request"),
            ({"op": "no-such-op"}, 400, "bad-request"),
        ]
        for req, want_status, want_code in cases:
            payload, status = server.handle_request(req)
            assert (status, payload["code"]) == (want_status, want_code), req
            assert not payload["ok"]

    def test_lint_and_synth_ops(self):
        server = make_server()
        payload, status = server.handle_request(
            {"op": "lint", "schema": "book"})
        assert status == 200 and "report" in payload
        payload, status = server.handle_request(
            {"op": "synth", "schema": "book"})
        assert status == 200 and payload["witness"] is not None

    def test_metrics_op(self, doc_text):
        server = make_server()
        server.handle_request({"op": "validate", "schema": "book",
                               "document": doc_text})
        payload, _ = server.handle_request({"op": "metrics"})
        assert "serve_requests_total" in payload["metrics"]
        payload, _ = server.handle_request({"op": "metrics",
                                            "format": "json"})
        assert isinstance(payload["metrics"], dict)


class TestEngineSelection:
    def test_every_engine_reports_byte_identical(self, doc_text,
                                                 facade_report):
        server = make_server()
        want = json.dumps(facade_report, sort_keys=True)
        for engine, resolved in (("batch", "batch"), ("stream", "stream"),
                                 ("codegen", "codegen"),
                                 ("auto", "codegen")):
            payload, status = server.handle_request(
                {"op": "validate", "schema": "book",
                 "document": doc_text, "engine": engine})
            assert status == 200
            assert payload["engine"] == resolved
            assert json.dumps(payload["report"], sort_keys=True) == want

    def test_mode_is_a_deprecated_alias(self, doc_text):
        server = make_server()
        payload, status = server.handle_request(
            {"op": "validate", "schema": "book", "document": doc_text,
             "mode": "batch"})
        assert status == 200 and payload["engine"] == "batch"

    def test_unknown_engine_is_bad_request(self, doc_text):
        server = make_server()
        payload, status = server.handle_request(
            {"op": "validate", "schema": "book", "document": doc_text,
             "engine": "psychic"})
        assert (status, payload["code"]) == (400, "bad-request")
        assert "unknown engine 'psychic'" in payload["error"]

    def test_cached_response_has_no_engine(self, tmp_path, doc_text):
        server = make_server(cache=str(tmp_path))
        cold, _ = server.handle_request(
            {"op": "validate", "schema": "book", "document": doc_text,
             "engine": "codegen"})
        warm, _ = server.handle_request(
            {"op": "validate", "schema": "book", "document": doc_text,
             "engine": "codegen"})
        assert cold["engine"] == "codegen"
        assert warm["cached"] and warm["engine"] is None
        assert warm["report"] == cold["report"]

    def test_per_engine_latency_metric(self, doc_text):
        server = make_server()
        for engine in ("batch", "codegen"):
            server.handle_request(
                {"op": "validate", "schema": "book",
                 "document": doc_text, "engine": engine})
        engines_seen = {
            inst.label_dict().get("engine")
            for inst in server.obs.metrics.collect()
            if inst.name == "serve_engine_seconds"}
        assert engines_seen == {"batch", "codegen"}

    def test_schemas_listing_carries_engines(self):
        server = make_server()
        payload, _ = server.handle_request({"op": "schemas"})
        assert payload["schemas"][0]["engines"] \
            == ["auto", "batch", "codegen", "stream"]

    def test_check_corpus_engine_field(self, doc_text):
        server = make_server()
        for engine, resolved in (("codegen", "codegen"),
                                 ("auto", "codegen"),
                                 ("batch", "batch")):
            payload, status = server.handle_request(
                {"op": "check-corpus", "schema": "book",
                 "documents": [doc_text], "engine": engine})
            assert status == 200
            assert payload["engine"] == resolved, engine
            assert payload["valid"]

    def test_default_mode_validated_against_registry(self):
        with pytest.raises(ValueError, match="unknown default_mode"):
            ValidationServer(SchemaRegistry(), default_mode="psychic")
        server = ValidationServer(SchemaRegistry(),
                                  default_mode="codegen")
        assert server.default_mode == "codegen"


# ----------------------------------------------------------------------
# 3. transports, end to end
# ----------------------------------------------------------------------

class _HttpClient:
    """A minimal keep-alive HTTP/1.1 client over asyncio streams."""

    def __init__(self, reader, writer):
        self.reader, self.writer = reader, writer

    @classmethod
    async def open(cls, address):
        host, port = address
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, method, path, body=b"", close=False,
                      headers=None):
        head = (f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
                f"Content-Length: {len(body)}\r\n")
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        if close:
            head += "Connection: close\r\n"
        self.writer.write(head.encode("ascii") + b"\r\n" + body)
        await self.writer.drain()
        status = int((await self.reader.readline()).split()[1])
        headers = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        data = await self.reader.readexactly(
            int(headers.get("content-length", "0")))
        return status, headers, data

    async def close(self):
        self.writer.close()
        await self.writer.wait_closed()


class TestHttpTransport:
    def test_validate_roundtrip_and_keepalive(self, doc_text,
                                              facade_report):
        async def scenario():
            server = make_server()
            await server.start_http()
            try:
                client = await _HttpClient.open(server.http_address)
                # two requests on one connection: keep-alive works
                for _ in range(2):
                    status, _headers, data = await client.request(
                        "POST", "/v1/validate/book",
                        doc_text.encode("utf-8"))
                    assert status == 200
                    payload = json.loads(data)
                    assert payload["valid"]
                    assert json.dumps(payload["report"], sort_keys=True)\
                        == json.dumps(facade_report, sort_keys=True)
                await client.close()
            finally:
                await server.close()

        run(scenario())

    def test_concurrent_clients_identical_reports(self, doc_text):
        async def scenario():
            server = make_server()
            await server.start_http()
            try:
                engines = ("batch", "stream", "codegen", "auto")

                async def one(i):
                    client = await _HttpClient.open(server.http_address)
                    status, _h, data = await client.request(
                        "POST", "/v1/validate/book?engine="
                        + engines[i % len(engines)],
                        doc_text.encode("utf-8"))
                    await client.close()
                    return status, json.loads(data)["report"]

                results = await asyncio.gather(*(one(i)
                                                 for i in range(8)))
                assert all(status == 200 for status, _ in results)
                blobs = {json.dumps(report, sort_keys=True)
                         for _, report in results}
                assert len(blobs) == 1  # batch == stream == every client
            finally:
                await server.close()

        run(scenario())

    def test_registry_routes_and_hot_reload(self):
        async def scenario():
            server = make_server()
            await server.start_http()
            try:
                client = await _HttpClient.open(server.http_address)
                status, _h, data = await client.request(
                    "PUT", "/v1/schemas/lib",
                    LIB_V1.encode("utf-8"))
                assert status == 201
                status, _h, data = await client.request(
                    "POST", "/v1/validate/lib",
                    DOC_DANGLING.encode("utf-8"))
                assert json.loads(data)["valid"]
                status, _h, data = await client.request(
                    "PUT", "/v1/schemas/lib", LIB_V2.encode("utf-8"))
                assert status == 200  # reload, not create
                assert json.loads(data)["schema"]["version"] == 2
                status, _h, data = await client.request(
                    "POST", "/v1/validate/lib",
                    DOC_DANGLING.encode("utf-8"))
                assert not json.loads(data)["valid"]
                status, _h, data = await client.request(
                    "DELETE", "/v1/schemas/lib")
                assert status == 200
                status, _h, data = await client.request(
                    "POST", "/v1/validate/lib",
                    DOC_DANGLING.encode("utf-8"))
                assert status == 404
                await client.close()
            finally:
                await server.close()

        run(scenario())

    def test_healthz_metrics_and_errors(self, doc_text):
        async def scenario():
            server = make_server()
            await server.start_http()
            try:
                client = await _HttpClient.open(server.http_address)
                status, _h, data = await client.request("GET", "/healthz")
                assert status == 200 and json.loads(data)["ok"]
                # a validate first, so the scrape has request series
                await client.request("POST", "/v1/validate/book",
                                     doc_text.encode("utf-8"))
                status, headers, data = await client.request(
                    "GET", "/metrics")
                assert status == 200
                assert headers["content-type"].startswith("text/plain")
                text = data.decode("utf-8")
                assert "serve_requests_total" in text
                assert "registry_schemas" in text
                # error statuses
                status, _h, data = await client.request(
                    "POST", "/v1/validate/ghost", b"<book/>")
                assert status == 404
                status, _h, data = await client.request(
                    "POST", "/v1/validate/book", b"<book><broken>")
                assert status == 422
                status, _h, data = await client.request(
                    "GET", "/no/such/route")
                assert status == 404
                status, _h, data = await client.request(
                    "POST", "/v1/schemas/book")
                assert status == 405
                status, _h, data = await client.request(
                    "PUT", "/v1/schemas/bad", b"\xff\xfe")
                assert status == 400
                await client.close()
            finally:
                await server.close()

        run(scenario())

    def test_shutdown_route(self):
        async def scenario():
            server = make_server()
            await server.start_http()
            client = await _HttpClient.open(server.http_address)
            status, _h, data = await client.request(
                "POST", "/v1/shutdown")
            assert status == 200 and json.loads(data)["shutting_down"]
            status, _h, _d = await client.request("GET", "/v1/shutdown")
            assert status == 405
            await client.close()
            await asyncio.wait_for(server.wait_shutdown(), timeout=5)
            await server.close()

        run(scenario())


class TestJsonlTransport:
    def test_jsonl_over_tcp_matches_http(self, doc_text, facade_report):
        async def scenario():
            server = make_server()
            jsonl = await asyncio.start_server(
                server.serve_jsonl, "127.0.0.1", 0)
            host, port = jsonl.sockets[0].getsockname()[:2]
            try:
                reader, writer = await asyncio.open_connection(host, port)

                async def ask(req):
                    writer.write(json.dumps(req).encode("utf-8") + b"\n")
                    await writer.drain()
                    return json.loads(await reader.readline())

                pong = await ask({"op": "ping", "id": "a"})
                assert pong["ok"] and pong["id"] == "a"
                verdict = await ask({"op": "validate", "schema": "book",
                                     "document": doc_text})
                assert verdict["valid"]
                assert json.dumps(verdict["report"], sort_keys=True) \
                    == json.dumps(facade_report, sort_keys=True)
                bad = await ask({"op": "validate"})
                assert not bad["ok"] and bad["code"] == "bad-request"
                garbage = await ask({"not": "a request"})
                assert not garbage["ok"]
                writer.close()
                await writer.wait_closed()
            finally:
                jsonl.close()
                await jsonl.wait_closed()

        run(scenario())

    def test_concurrent_jsonl_and_http(self, doc_text):
        """Both transports serve the same dispatcher concurrently."""
        async def scenario():
            server = make_server()
            await server.start_http()
            jsonl = await asyncio.start_server(
                server.serve_jsonl, "127.0.0.1", 0)
            host, port = jsonl.sockets[0].getsockname()[:2]
            try:
                async def via_http():
                    client = await _HttpClient.open(server.http_address)
                    _s, _h, data = await client.request(
                        "POST", "/v1/validate/book",
                        doc_text.encode("utf-8"))
                    await client.close()
                    return json.loads(data)["report"]

                async def via_jsonl():
                    reader, writer = await asyncio.open_connection(
                        host, port)
                    writer.write(json.dumps(
                        {"op": "validate", "schema": "book",
                         "document": doc_text}).encode() + b"\n")
                    await writer.drain()
                    payload = json.loads(await reader.readline())
                    writer.close()
                    await writer.wait_closed()
                    return payload["report"]

                reports = await asyncio.gather(
                    via_http(), via_jsonl(), via_http(), via_jsonl())
                blobs = {json.dumps(r, sort_keys=True) for r in reports}
                assert len(blobs) == 1
            finally:
                jsonl.close()
                await jsonl.wait_closed()
                await server.close()

        run(scenario())

    def test_shutdown_op_ends_the_loop(self):
        async def scenario():
            server = make_server()
            jsonl = await asyncio.start_server(
                server.serve_jsonl, "127.0.0.1", 0)
            host, port = jsonl.sockets[0].getsockname()[:2]
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b'{"op": "shutdown"}\n')
                await writer.drain()
                payload = json.loads(await reader.readline())
                assert payload["shutting_down"]
                await asyncio.wait_for(server.wait_shutdown(), timeout=5)
                writer.close()
                await writer.wait_closed()
            finally:
                jsonl.close()
                await jsonl.wait_closed()

        run(scenario())


class TestRequestTelemetry:
    """The tentpole end to end: trace admission, the per-request span
    tree, the bounded trace store, ``/v1/stats``, and the slow log."""

    def test_trace_query_returns_inline_trace(self, doc_text):
        async def scenario():
            server = make_server()
            await server.start_http()
            try:
                client = await _HttpClient.open(server.http_address)
                status, _h, data = await client.request(
                    "POST", "/v1/validate/book?trace=1",
                    doc_text.encode("utf-8"))
                assert status == 200
                payload = json.loads(data)
                assert payload["valid"]
                trace_id = payload["trace_id"]
                assert len(trace_id) == 32
                events = payload["trace"]["traceEvents"]
                names = [e["name"] for e in events if e["ph"] == "X"]
                assert names[0] == "serve.validate"
                assert all(e["args"]["trace_id"] == trace_id
                           for e in events if e["ph"] == "X")
                # ... and the same trace is fetchable by id
                status, _h, data = await client.request(
                    "GET", f"/v1/traces/{trace_id}")
                assert status == 200
                stored = json.loads(data)
                assert stored["trace"] == payload["trace"]
                await client.close()
            finally:
                await server.close()

        run(scenario())

    def test_traceparent_header_is_adopted(self, doc_text):
        async def scenario():
            server = make_server()
            await server.start_http()
            try:
                client = await _HttpClient.open(server.http_address)
                parent = ("00-" + "ab" * 16 + "-" + "cd" * 8 + "-01")
                status, _h, data = await client.request(
                    "POST", "/v1/validate/book",
                    doc_text.encode("utf-8"),
                    headers={"traceparent": parent})
                assert status == 200
                payload = json.loads(data)
                # a sampled traceparent traces without ?trace=1 ...
                assert payload["trace_id"] == "ab" * 16
                # ... and an unsampled one does not
                status, _h, data = await client.request(
                    "POST", "/v1/validate/book",
                    doc_text.encode("utf-8"),
                    headers={"traceparent":
                             "00-" + "ef" * 16 + "-" + "12" * 8 + "-00"})
                assert "trace_id" not in json.loads(data)
                await client.close()
            finally:
                await server.close()

        run(scenario())

    def test_unsampled_requests_have_no_trace(self, doc_text):
        payload, status = make_server().handle_request(
            {"op": "validate", "schema": "book", "document": doc_text})
        assert status == 200
        assert "trace_id" not in payload
        assert "trace" not in payload

    def test_concurrent_traced_requests_stay_disjoint(self, doc_text):
        """≥8 concurrent traced requests produce 8 distinct, complete,
        single-root span trees — no cross-request leakage."""
        async def scenario():
            server = make_server()
            await server.start_http()
            try:
                async def one(i):
                    client = await _HttpClient.open(server.http_address)
                    _s, _h, data = await client.request(
                        "POST", "/v1/validate/book?trace=1&mode="
                        + ("stream" if i % 2 else "batch"),
                        doc_text.encode("utf-8"))
                    await client.close()
                    return json.loads(data)

                payloads = await asyncio.gather(*(one(i)
                                                  for i in range(8)))
                ids = [p["trace_id"] for p in payloads]
                assert len(set(ids)) == 8
                for p in payloads:
                    slices = [e for e in p["trace"]["traceEvents"]
                              if e["ph"] == "X"]
                    assert {e["args"]["trace_id"] for e in slices} \
                        == {p["trace_id"]}
                    roots = [e for e in slices
                             if e["name"].startswith("serve.")]
                    assert len(roots) == 1
                assert len(server.traces) == 8
            finally:
                await server.close()

        run(scenario())

    def test_sample_rate_one_traces_everything(self, doc_text):
        obs = make_obs()
        registry = SchemaRegistry(obs=obs)
        registry.load("book", SCHEMA_TEXT, root="book")
        server = ValidationServer(registry, obs=obs, sample=1.0)
        payload, _ = server.handle_request(
            {"op": "validate", "schema": "book", "document": doc_text})
        assert "trace_id" in payload
        assert "trace" not in payload  # inline only with trace=1
        assert server.traces.get(payload["trace_id"]) is not None

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ValueError, match="sample"):
            ValidationServer(SchemaRegistry(), sample=1.5)

    def test_stats_endpoint_shape(self, doc_text):
        async def scenario():
            server = make_server()
            server.slow_ms = 0.0  # everything is "slow"
            await server.start_http()
            try:
                client = await _HttpClient.open(server.http_address)
                await client.request("POST", "/v1/validate/book?trace=1",
                                     doc_text.encode("utf-8"))
                await client.request("POST", "/v1/validate/book",
                                     b"not xml <")
                status, _h, data = await client.request(
                    "GET", "/v1/stats")
                assert status == 200
                stats = json.loads(data)
                assert stats["ok"]
                assert stats["requests"]["total"] == 2
                assert stats["requests"]["errors"] == 1
                assert stats["rps"] > 0
                lat = stats["latency"]
                assert lat["overall"]["count"] == 2
                assert lat["by_op"]["validate"]["count"] == 2
                assert lat["by_op"]["validate"]["p50_ms"] is not None
                assert stats["schemas"]["loaded"] == ["book"]
                assert stats["schemas"]["requests"] == {"book": 1}
                assert stats["traces"]["stored"] == 1
                slow = stats["slow"]["recent"]
                assert len(slow) == 2
                assert slow[0]["op"] == "validate"
                assert slow[0]["trace_id"] is not None  # traced req
                assert stats["events"]["emitted"] >= 2  # slow-request
                await client.close()
            finally:
                await server.close()

        run(scenario())

    def test_trace_fetch_unknown_id_is_404(self):
        async def scenario():
            server = make_server()
            await server.start_http()
            try:
                client = await _HttpClient.open(server.http_address)
                status, _h, data = await client.request(
                    "GET", "/v1/traces/" + "00" * 16)
                assert status == 404
                assert json.loads(data)["code"] == "not-found"
                await client.close()
            finally:
                await server.close()

        run(scenario())

    def test_check_corpus_jobs2_single_trace(self, doc_text):
        """The acceptance scenario: one traced request fanning out to
        two worker processes yields one Perfetto-loadable trace whose
        worker spans carry the request's trace_id."""
        from repro.obs import validate_trace_events

        server = make_server()
        payload, status = server.handle_request(
            {"op": "check-corpus", "schema": "book", "trace": True,
             "documents": [[f"d{i}", doc_text] for i in range(4)],
             "jobs": 2})
        assert status == 200
        assert payload["valid"] and payload["documents"] == 4
        trace = server.traces.get(payload["trace_id"])
        assert trace is not None
        assert validate_trace_events(trace) == []
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["args"]["trace_id"] for e in slices} \
            == {payload["trace_id"]}
        names = {e["name"] for e in slices}
        assert {"serve.check-corpus", "corpus.validate",
                "corpus.chunk"} <= names

    def test_events_correlate_even_unsampled(self):
        """Admission rejects emit events carrying the request's
        trace_id even when the request is not sampled."""
        server = make_server()
        payload, status = server.handle_request(
            {"op": "validate", "schema": "nope", "document": "<x/>"})
        assert status == 404
        events = [e for e in server.events.tail()
                  if e["code"] == "admission-reject"]
        assert len(events) == 1
        assert events[0]["trace_id"] is not None

    def test_schema_lifecycle_events(self):
        server = make_server()
        server.handle_request({"op": "reload", "name": "book",
                               "schema": SCHEMA_TEXT, "root": "book"})
        server.handle_request({"op": "unload", "name": "book"})
        codes = [e["code"] for e in server.events.tail()]
        assert "schema-reload" in codes
        assert "schema-unload" in codes

    def test_cache_hit_event(self, tmp_path, doc_text):
        server = make_server(cache=str(tmp_path))
        req = {"op": "validate", "schema": "book", "document": doc_text}
        server.handle_request(dict(req))
        payload, _ = server.handle_request(dict(req))
        assert payload["cached"]
        assert any(e["code"] == "cache-hit"
                   for e in server.events.tail())


class TestStdioTransport:
    def test_stdio_roundtrip(self, monkeypatch, capsys, doc_text):
        lines = "\n".join([
            json.dumps({"op": "ping", "id": 1}),
            json.dumps({"op": "validate", "schema": "book",
                        "document": doc_text, "id": 2}),
            "this is not json",
        ]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        server = make_server()
        run(server.serve_stdio())
        out = [json.loads(line)
               for line in capsys.readouterr().out.splitlines()]
        assert [r.get("id") for r in out] == [1, 2, None]
        assert out[0]["ok"]
        assert out[1]["valid"]
        assert out[2]["code"] == "bad-request"
