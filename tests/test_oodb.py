"""Tests for the OODB substrate and its L_id export (the D_o example)."""

import pytest

from repro.constraints import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey, UnaryKey,
)
from repro.dtd import validate
from repro.errors import DataModelError, SchemaError
from repro.oodb import (
    ObjectStore, OdlClass, OdlRelationship, OdlSchema, export_schema,
    export_store,
)
from repro.workloads import person_dept_schema, person_dept_store


class TestSchema:
    def test_paper_schema_checks(self, persondept_schema):
        persondept_schema.check()
        assert persondept_schema.inverse_pairs() == \
            [("person", "in_dept", "dept", "has_staff")]

    def test_key_over_unknown_attribute(self):
        with pytest.raises(SchemaError):
            OdlClass("c", attributes=("a",), keys=(frozenset(("b",)),))

    def test_dangling_relationship_target(self):
        schema = OdlSchema([OdlClass(
            "c", relationships=(OdlRelationship("r", "ghost"),))])
        with pytest.raises(SchemaError):
            schema.check()

    def test_asymmetric_inverse_rejected(self):
        schema = OdlSchema([
            OdlClass("a", relationships=(
                OdlRelationship("to_b", "b", many=True,
                                inverse="to_c"),)),
            OdlClass("b", relationships=(
                OdlRelationship("to_c", "c", many=True),)),
            OdlClass("c"),
        ])
        with pytest.raises(SchemaError):
            schema.check()

    def test_odl_rendering(self, persondept_schema):
        text = str(persondept_schema)
        assert "interface person" in text
        assert "inverse dept::has_staff" in text


class TestStore:
    def test_consistent_store(self, persondept_store):
        assert persondept_store.check() == []

    def test_duplicate_oid(self, persondept_store):
        with pytest.raises(DataModelError):
            persondept_store.create("person", "p0_0")

    def test_dangling_reference_detected(self, persondept_store):
        persondept_store.get("d0").references["manager"] = ("ghost",)
        assert any("dangles" in p for p in persondept_store.check())

    def test_ill_typed_reference_detected(self, persondept_store):
        persondept_store.get("d0").references["manager"] = ("d1",)
        assert any("expected person" in p
                   for p in persondept_store.check())

    def test_key_clash_detected(self, persondept_store):
        persondept_store.get("p0_0").attributes["name"] = "Person 0-1"
        assert any("clashes" in p for p in persondept_store.check())

    def test_broken_inverse_detected(self, persondept_store):
        person = persondept_store.get("p0_0")
        person.references["in_dept"] = ()
        assert any("inverse broken" in p
                   for p in persondept_store.check())

    def test_to_one_arity(self, persondept_store):
        with pytest.raises(DataModelError):
            persondept_store.create("dept", "dX", {"dname": "X"},
                                    manager=["p0_0", "p0_1"])


class TestExport:
    def test_sigma_o_shape(self, persondept_schema):
        dtd = export_schema(persondept_schema)
        by_type = {}
        for c in dtd.constraints:
            by_type.setdefault(type(c), []).append(c)
        assert len(by_type[IDConstraint]) == 2
        assert len(by_type[UnaryKey]) == 2           # name, dname
        assert len(by_type[IDSetValuedForeignKey]) == 2
        assert len(by_type[IDForeignKey]) == 1       # manager
        assert len(by_type[IDInverse]) == 1

    def test_structure_kinds(self, persondept_schema):
        from repro.dtd import AttributeKind
        s = export_schema(persondept_schema).structure
        assert s.kind("person", "oid") is AttributeKind.ID
        assert s.kind("person", "in_dept") is AttributeKind.IDREF
        assert s.is_set_valued("person", "in_dept")
        assert not s.is_set_valued("dept", "manager")
        assert s.subelements("person") == {"name", "address"}

    def test_export_is_valid(self, persondept):
        dtd, tree = persondept
        report = validate(tree, dtd)
        assert report.ok, str(report)

    def test_semantics_preserved_violations_carry_over(self):
        store = person_dept_store()
        # Break the inverse in the store; the exported document must
        # violate the exported L_id inverse constraint.
        store.get("p0_0").references["in_dept"] = ()
        dtd, tree = export_store(store)
        report = validate(tree, dtd)
        assert any(v.code == "inverse" for v in report)

    def test_key_violations_carry_over(self):
        store = person_dept_store()
        store.get("p0_0").attributes["name"] = "Person 0-1"
        dtd, tree = export_store(store)
        assert any(v.code == "key" for v in validate(tree, dtd))

    def test_composite_keys_rejected_in_lid(self):
        schema = OdlSchema([OdlClass(
            "c", attributes=("a", "b"),
            keys=(frozenset(("a", "b")),))])
        with pytest.raises(SchemaError):
            export_schema(schema)

    def test_roundtrip_through_xml_text(self, persondept):
        from repro.xmlio import parse_document, serialize
        dtd, tree = persondept
        again = parse_document(serialize(tree), dtd.structure)
        assert validate(again, dtd).ok


class TestToOneArity:
    def test_link_inverse_overflow_detected(self, persondept_store):
        """link_inverse can over-fill a to-one relationship; check()
        must flag it."""
        persondept_store.link_inverse("d0", "manager", "p0_1")
        persondept_store.link_inverse("d0", "manager", "p1_0")
        problems = persondept_store.check()
        assert any("to-one relationship" in p for p in problems)
