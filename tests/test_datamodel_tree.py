"""Unit tests for the data tree (Definition 2.1)."""

import pytest

from repro.datamodel import DataTree, Vertex
from repro.errors import (
    DataModelError, DuplicateVertexError, UnknownVertexError,
)


def small_tree() -> DataTree:
    tree = DataTree("book")
    entry = tree.create_under(tree.root, "entry")
    entry.set_attribute("isbn", "111")
    tree.create_under(tree.root, "author").append("Serge")
    section = tree.create_under(tree.root, "section")
    section.set_attribute("sid", "s1")
    tree.create_under(section, "section").set_attribute("sid", "s2")
    return tree


class TestConstruction:
    def test_root_label(self):
        assert DataTree("book").root.label == "book"

    def test_create_is_detached(self):
        tree = DataTree("r")
        v = tree.create("x")
        assert v.parent is None
        assert v not in tree.vertices()

    def test_append_attaches(self):
        tree = DataTree("r")
        v = tree.create("x")
        tree.root.append(v)
        assert v.parent is tree.root
        assert v in tree.vertices()

    def test_append_string_child(self):
        tree = DataTree("r")
        tree.root.append("hello")
        assert tree.root.children == ("hello",)
        assert tree.root.text == "hello"

    def test_mixed_children_order_preserved(self):
        tree = DataTree("r")
        tree.root.append("a")
        v = tree.create_under(tree.root, "x")
        tree.root.append("b")
        assert tree.root.children == ("a", v, "b")

    def test_child_labels_word(self):
        tree = DataTree("r")
        tree.root.append("txt")
        tree.create_under(tree.root, "x")
        assert tree.root.child_labels == ("S", "x")

    def test_empty_label_rejected(self):
        tree = DataTree("r")
        with pytest.raises(TypeError):
            tree.create("")

    def test_bad_child_type_rejected(self):
        tree = DataTree("r")
        with pytest.raises(TypeError):
            tree.root.append(42)


class TestTreeInvariants:
    def test_double_parent_rejected(self):
        tree = DataTree("r")
        v = tree.create("x")
        tree.root.append(v)
        other = tree.create_under(tree.root, "y")
        with pytest.raises(DuplicateVertexError):
            other.append(v)

    def test_self_cycle_rejected(self):
        tree = DataTree("r")
        v = tree.create("x")
        with pytest.raises(DataModelError):
            v.append(v)

    def test_ancestor_cycle_rejected(self):
        tree = DataTree("r")
        a = tree.create("a")
        b = tree.create("b")
        a.append(b)
        with pytest.raises(DataModelError):
            b.append(a)

    def test_cross_tree_adoption_rejected(self):
        t1, t2 = DataTree("r"), DataTree("r")
        foreign = t2.create("x")
        with pytest.raises(DataModelError):
            t1.root.append(foreign)

    def test_check_invariants_passes(self):
        small_tree().check_invariants()


class TestAttributes:
    def test_single_value_is_singleton_set(self):
        tree = DataTree("r")
        tree.root.set_attribute("a", "v")
        assert tree.root.attr("a") == frozenset({"v"})
        assert tree.root.single("a") == "v"

    def test_set_value(self):
        tree = DataTree("r")
        tree.root.set_attribute("a", ["x", "y"])
        assert tree.root.attr("a") == frozenset({"x", "y"})

    def test_string_not_exploded_to_chars(self):
        tree = DataTree("r")
        tree.root.set_attribute("a", "abc")
        assert tree.root.attr("a") == frozenset({"abc"})

    def test_single_on_multivalue_raises(self):
        tree = DataTree("r")
        tree.root.set_attribute("a", ["x", "y"])
        with pytest.raises(DataModelError):
            tree.root.single("a")

    def test_missing_attr_raises_keyerror(self):
        tree = DataTree("r")
        with pytest.raises(KeyError):
            tree.root.attr("nope")

    def test_attr_or_empty(self):
        tree = DataTree("r")
        assert tree.root.attr_or_empty("nope") == frozenset()

    def test_del_attribute(self):
        tree = DataTree("r")
        tree.root.set_attribute("a", "v")
        tree.root.del_attribute("a")
        assert not tree.root.has_attribute("a")
        tree.root.del_attribute("a")  # idempotent

    def test_attr_tuple(self):
        tree = DataTree("r")
        tree.root.set_attribute("a", "1")
        tree.root.set_attribute("b", "2")
        assert tree.root.attr_tuple(("b", "a")) == ("2", "1")

    def test_non_string_values_rejected(self):
        tree = DataTree("r")
        with pytest.raises(TypeError):
            tree.root.set_attribute("a", [1, 2])

    def test_attribute_epoch_bumps(self):
        tree = DataTree("r")
        before = tree.attribute_epoch
        tree.root.set_attribute("a", "v")
        assert tree.attribute_epoch == before + 1


class TestNavigation:
    def test_ext(self):
        tree = small_tree()
        assert [v.label for v in tree.ext("section")] == \
            ["section", "section"]
        assert len(tree.ext("book")) == 1
        assert tree.ext("missing") == []

    def test_ext_values(self):
        tree = small_tree()
        assert tree.ext_values("section", "sid") == {"s1", "s2"}
        assert tree.ext_values("entry", "isbn") == {"111"}

    def test_descendants_preorder(self):
        tree = small_tree()
        labels = [v.label for v in tree.root.descendants()]
        assert labels == ["entry", "author", "section", "section"]

    def test_subtree_includes_self(self):
        tree = small_tree()
        assert next(iter(tree.root.subtree())) is tree.root

    def test_children_labeled(self):
        tree = small_tree()
        assert len(tree.root.children_labeled("section")) == 1
        assert tree.root.first_child_labeled("entry").label == "entry"
        assert tree.root.first_child_labeled("zzz") is None

    def test_depth_and_path_from_root(self):
        tree = small_tree()
        inner = tree.ext("section")[1]
        assert inner.depth == 2
        assert [v.label for v in inner.path_from_root()] == \
            ["book", "section", "section"]

    def test_labels_and_size(self):
        tree = small_tree()
        assert tree.labels() == {"book", "entry", "author", "section"}
        assert tree.size() == 5

    def test_find_by_vid(self):
        tree = small_tree()
        entry = tree.ext("entry")[0]
        assert tree.find(entry.vid) is entry
        with pytest.raises(UnknownVertexError):
            tree.find(9999)


class TestMutation:
    def test_remove_child_vertex(self):
        tree = small_tree()
        entry = tree.ext("entry")[0]
        tree.root.remove_child(entry)
        assert entry.parent is None
        assert entry not in tree.vertices()
        # The detached subtree can be re-appended elsewhere.
        section = tree.ext("section")[0]
        section.append(entry)
        assert entry.parent is section

    def test_remove_string_child(self):
        tree = DataTree("r")
        tree.root.append("a")
        tree.root.append("b")
        tree.root.remove_child("a")
        assert tree.root.children == ("b",)

    def test_remove_missing_child_raises(self):
        tree = small_tree()
        stranger = tree.create("x")
        with pytest.raises(DataModelError):
            tree.root.remove_child(stranger)

    def test_detach(self):
        tree = small_tree()
        section = tree.ext("section")[0]
        inner = section.children_labeled("section")[0]
        detached = inner.detach()
        assert detached is inner
        assert inner.parent is None
        assert tree.ext("section") == [section]

    def test_detach_root_raises(self):
        tree = small_tree()
        with pytest.raises(DataModelError):
            tree.root.detach()

    def test_replace_child(self):
        tree = small_tree()
        entry = tree.ext("entry")[0]
        substitute = tree.create("entry")
        position = tree.root.children.index(entry)
        tree.root.replace_child(entry, substitute)
        assert tree.root.children[position] is substitute
        assert entry.parent is None
        assert substitute.parent is tree.root

    def test_replace_missing_raises(self):
        tree = small_tree()
        with pytest.raises(DataModelError):
            tree.root.replace_child(tree.create("x"), tree.create("y"))

    def test_invariants_after_mutations(self):
        tree = small_tree()
        entry = tree.ext("entry")[0]
        tree.root.remove_child(entry)
        tree.ext("section")[0].append(entry)
        tree.check_invariants()
