"""Tests for workload generators (determinism, validity, shapes)."""

from repro.constraints import UnaryForeignKey, UnaryKey
from repro.constraints.wellformed import language_of
from repro.dtd.validate import validate_structure
from repro.implication.lu import LuEngine
from repro.workloads import (
    random_document, random_lu_implication_instance, random_lu_sigma,
    random_primary_l_instance, random_structure, scaled_lu_chain,
)
from repro.workloads.book import scaled_book_document
from repro.workloads.generators import scaled_primary_chain


class TestRandomStructure:
    def test_deterministic(self):
        a = random_structure(seed=42)
        b = random_structure(seed=42)
        assert a.describe() == b.describe()
        c = random_structure(seed=43)
        assert a.describe() != c.describe()

    def test_structure_is_coherent(self):
        for seed in range(10):
            random_structure(seed=seed).check()


class TestRandomDocument:
    def test_structurally_valid(self):
        for seed in range(8):
            s = random_structure(seed=seed)
            doc = random_document(s, seed=seed, size_budget=100)
            report = validate_structure(doc, s)
            assert report.ok, f"seed {seed}: {report}"

    def test_deterministic(self):
        s = random_structure(seed=1)
        a = random_document(s, seed=5)
        b = random_document(s, seed=5)
        assert [v.label for v in a.root.subtree()] == \
            [v.label for v in b.root.subtree()]

    def test_size_budget_respected_loosely(self):
        s = random_structure(seed=2, recursion=True)
        doc = random_document(s, seed=3, size_budget=50)
        assert doc.size() < 500


class TestLuGenerators:
    def test_sigma_accepted_by_engine(self):
        for seed in range(20):
            sigma = random_lu_sigma(seed)
            LuEngine(sigma)  # must not raise

    def test_sigma_well_formed_targets(self):
        for seed in range(10):
            sigma = random_lu_sigma(seed)
            keys = {(c.element, c.field) for c in sigma
                    if isinstance(c, UnaryKey)}
            for c in sigma:
                if isinstance(c, UnaryForeignKey):
                    assert (c.target, c.target_field) in keys

    def test_implication_instance_runs(self):
        for seed in range(20):
            sigma, phi = random_lu_implication_instance(seed)
            engine = LuEngine(sigma)
            engine.implies(phi)
            engine.finitely_implies(phi)

    def test_scaled_chain(self):
        sigma, phi = scaled_lu_chain(10)
        assert len(sigma) == 20
        engine = LuEngine(sigma)
        assert engine.implies(phi)
        assert engine.finitely_implies(phi)

    def test_chain_is_linear_family(self):
        small, _p1 = scaled_lu_chain(5)
        large, _p2 = scaled_lu_chain(50)
        assert len(large) == 10 * len(small)


class TestPrimaryLGenerators:
    def test_primary_instance_runs(self):
        from repro.implication.l_primary import LPrimaryEngine
        for seed in range(10):
            sigma, phi = random_primary_l_instance(seed, n_types=4,
                                                   key_width=2, n_fks=5)
            engine = LPrimaryEngine(sigma)
            engine.implies(phi)

    def test_scaled_primary_chain_composes(self):
        from repro.implication.l_primary import LPrimaryEngine
        for n in (2, 5, 9):
            sigma, phi = scaled_primary_chain(n, width=3)
            assert LPrimaryEngine(sigma).implies(phi), f"n={n}"


class TestScaledBook:
    def test_valid_at_scale(self, book_schema):
        from repro.dtd import validate
        doc = scaled_book_document(10, 2)
        assert validate(doc, book_schema).ok

    def test_size_scales(self):
        small = scaled_book_document(5, 1).size()
        large = scaled_book_document(50, 1).size()
        assert large > 5 * small
