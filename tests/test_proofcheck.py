"""Tests for the independent derivation checker: every proof the
engines emit must re-validate, and corrupted proofs must not."""

from repro.constraints import (
    ForeignKey, IDConstraint, IDForeignKey, IDInverse, Inverse, Key,
    SetValuedForeignKey, UnaryForeignKey, UnaryKey, attr,
)
from repro.implication import (
    LGeneralEngine, LidEngine, LPrimaryEngine, LuEngine,
)
from repro.implication.proofcheck import check_derivation
from repro.implication.result import Derivation, given
from repro.workloads import random_lu_implication_instance


class TestEngineProofsCheck:
    def test_lid_proofs(self):
        sigma = [IDInverse("a", attr("x"), "b", attr("y")),
                 IDForeignKey("c", attr("r"), "a"),
                 UnaryKey("a", attr("k"))]
        engine = LidEngine(sigma)
        for phi in engine.derived_constraints():
            result = engine.implies(phi)
            assert result
            assert check_derivation(result.derivation, sigma) == [], \
                result.derivation.pretty()

    def test_lu_proofs_on_random_corpus(self):
        checked = 0
        for seed in range(60):
            sigma, phi = random_lu_implication_instance(
                seed, n_types=4, n_constraints=8)
            engine = LuEngine(sigma)
            result = engine.implies(phi)
            if result and result.derivation is not None:
                problems = check_derivation(result.derivation, sigma)
                assert problems == [], (
                    f"seed {seed}:\n{result.derivation.pretty()}"
                    f"\n{problems}")
                checked += 1
        assert checked >= 15

    def test_lu_finite_proofs(self):
        sigma = [UnaryKey("t", attr("a")), UnaryKey("t", attr("b")),
                 UnaryForeignKey("t", attr("a"), "t", attr("b"))]
        engine = LuEngine(sigma)
        phi = UnaryForeignKey("t", attr("b"), "t", attr("a"))
        result = engine.finitely_implies(phi)
        assert check_derivation(result.derivation, sigma) == []

    def test_lu_inverse_proofs(self):
        inv = Inverse("d", attr("dk"), attr("staff"),
                      "p", attr("pk"), attr("depts"))
        sigma = [UnaryKey("d", attr("dk")), UnaryKey("p", attr("pk")),
                 inv]
        engine = LuEngine(sigma)
        result = engine.implies(
            SetValuedForeignKey("d", attr("staff"), "p", attr("pk")))
        assert check_derivation(result.derivation, sigma) == []

    def test_l_primary_proofs(self):
        sigma = [Key("publisher", ("pname", "country")),
                 ForeignKey("editor", ("pname", "country"),
                            "publisher", ("pname", "country")),
                 ForeignKey("publisher", ("pname", "country"),
                            "archive", ("pid", "cid"))]
        engine = LPrimaryEngine(sigma)
        queries = [
            Key("publisher", ("country", "pname")),
            ForeignKey("editor", ("country", "pname"),
                       "publisher", ("country", "pname")),
            ForeignKey("editor", ("pname", "country"),
                       "archive", ("pid", "cid")),
        ]
        for phi in queries:
            result = engine.implies(phi)
            assert result, str(phi)
            assert check_derivation(result.derivation, sigma) == [], \
                result.derivation.pretty()

    def test_l_general_proofs(self):
        sigma = [Key("tau", ("a",)), Key("tau", ("a", "b"))]
        # K-augment fires only when the exact key is absent:
        engine = LGeneralEngine([Key("tau", ("a",))])
        result = engine.prove(Key("tau", ("a", "c")))
        assert result.derivation.rule == "K-augment"
        assert check_derivation(result.derivation,
                                [Key("tau", ("a",))]) == []
        del sigma


class TestCorruptedProofsFail:
    def test_unknown_rule(self):
        bad = Derivation("anything", "made-up-rule")
        assert check_derivation(bad, []) != []

    def test_given_must_be_stated(self):
        bad = given(UnaryKey("a", attr("k")))
        assert check_derivation(bad, []) != []
        assert check_derivation(bad, [UnaryKey("a", attr("k"))]) == []

    def test_broken_transitivity_chain(self):
        sigma = [UnaryKey("b", attr("k")), UnaryKey("c", attr("k")),
                 UnaryForeignKey("a", attr("f"), "b", attr("k")),
                 UnaryForeignKey("b", attr("k"), "c", attr("k"))]
        bad = Derivation(
            "a.f sub c.k", "UFK-trans",
            (given(sigma[2]), given(sigma[2])))  # repeated first link
        assert check_derivation(bad, sigma) != []

    def test_wrong_target_in_ufk_k(self):
        sigma = [UnaryForeignKey("a", attr("f"), "b", attr("k"))]
        bad = Derivation("c.k -> c", "UFK-K", (given(sigma[0]),))
        assert check_derivation(bad, sigma) != []

    def test_fake_cycle_reverse(self):
        sigma = [UnaryKey("b", attr("k")),
                 UnaryForeignKey("a", attr("f"), "b", attr("k"))]
        bad = Derivation("a.f subseteq b.k", "cycle-rule",
                         (given(sigma[1]),))  # not a reversal
        assert check_derivation(bad, sigma) != []

    def test_fake_primary_key(self):
        bad = Derivation("r[x] -> r", "primary-key")
        assert check_derivation(bad, [Key("r", ("y",))]) != []

    def test_nested_problem_surfaces(self):
        sigma = [UnaryForeignKey("a", attr("f"), "b", attr("k"))]
        inner_bad = given(UnaryKey("z", attr("z")))  # not stated
        outer = Derivation("b.k -> b", "UFK-K", (inner_bad,))
        problems = check_derivation(outer, sigma)
        assert any("not a member" in p for p in problems)


class TestIdRuleChecks:
    def test_id_rules(self):
        sigma = [IDConstraint("a")]
        engine = LidEngine(sigma)
        for phi in engine.derived_constraints():
            result = engine.implies(phi)
            assert check_derivation(result.derivation, sigma) == []

    def test_wrong_id_key(self):
        bad = Derivation("b.id -> b", "ID-Key",
                         (given(IDConstraint("a")),))
        assert check_derivation(bad, [IDConstraint("a")]) != []
