"""Unit tests for the from-scratch XML tokenizer/parser/serializer."""

import pytest

from repro.datamodel import DataTree
from repro.errors import XMLSyntaxError
from repro.xmlio import parse_document, serialize
from repro.xmlio.escape import escape_attribute, escape_text, unescape
from repro.xmlio.tokenizer import Tokenizer


class TestEscape:
    def test_unescape_predefined(self):
        assert unescape("&amp;&lt;&gt;&quot;&apos;") == "&<>\"'"

    def test_unescape_numeric(self):
        assert unescape("&#65;&#x41;&#x61;") == "AAa"

    def test_unknown_entity(self):
        with pytest.raises(XMLSyntaxError):
            unescape("&nbsp;")

    def test_bare_ampersand(self):
        with pytest.raises(XMLSyntaxError):
            unescape("fish & chips")

    def test_escape_roundtrip(self):
        nasty = "a<b&c>\"d'"
        assert unescape(escape_text(nasty)) == nasty
        assert unescape(escape_attribute(nasty)) == nasty


class TestTokenizer:
    def _kinds(self, text):
        return [t.kind for t in Tokenizer(text).tokens()]

    def test_basic(self):
        kinds = self._kinds("<a x='1'>text<b/></a>")
        assert kinds == ["start", "text", "empty", "end"]

    def test_attributes_both_quotes(self):
        toks = list(Tokenizer('<a x="1" y=\'2\'/>').tokens())
        assert toks[0].attributes == (("x", "1"), ("y", "2"))

    def test_comment_and_pi_and_doctype(self):
        text = '<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a EMPTY>]>' \
               "<!-- c --><a/>"
        kinds = self._kinds(text)
        assert kinds == ["pi", "doctype", "comment", "empty"]

    def test_cdata(self):
        toks = list(Tokenizer("<a><![CDATA[<raw>&stuff]]></a>").tokens())
        assert toks[1].kind == "text"
        assert toks[1].value == "<raw>&stuff"

    def test_line_numbers(self):
        toks = list(Tokenizer("<a>\n<b/>\n</a>").tokens())
        by_kind = {t.kind: t.line for t in toks}
        assert by_kind["empty"] == 2
        assert by_kind["end"] == 3

    def test_unterminated_comment(self):
        with pytest.raises(XMLSyntaxError):
            list(Tokenizer("<!-- oops").tokens())

    def test_malformed_tag(self):
        with pytest.raises(XMLSyntaxError):
            list(Tokenizer("<a x=1>").tokens())


class TestParser:
    def test_basic_document(self):
        tree = parse_document("<r><a>hi</a><b x='1'/></r>")
        assert tree.root.label == "r"
        assert tree.root.first_child_labeled("a").text == "hi"
        assert tree.root.first_child_labeled("b").single("x") == "1"

    def test_whitespace_dropped_by_default(self):
        tree = parse_document("<r>\n  <a/>\n</r>")
        assert tree.root.children == tree.root.child_vertices

    def test_whitespace_kept_on_request(self):
        tree = parse_document("<r>\n  <a/>\n</r>", keep_whitespace=True)
        assert any(isinstance(c, str) for c in tree.root.children)

    def test_entities_resolved(self):
        tree = parse_document("<r a='x&amp;y'>1 &lt; 2</r>")
        assert tree.root.single("a") == "x&y"
        assert tree.root.text == "1 < 2"

    def test_mismatched_tags(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<a><b></a></b>")

    def test_unclosed(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<a><b>")

    def test_second_root(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<a/><b/>")

    def test_text_outside_root(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<a/>junk")

    def test_empty_input(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("   ")

    def test_set_valued_split_with_structure(self, book_schema):
        tree = parse_document('<book><ref to="a b c"/></book>',
                              book_schema.structure)
        ref = tree.root.first_child_labeled("ref")
        assert ref.attr("to") == frozenset({"a", "b", "c"})

    def test_single_valued_not_split(self, book_schema):
        tree = parse_document('<book><entry isbn="a b"/></book>',
                              book_schema.structure)
        assert tree.root.first_child_labeled("entry").attr("isbn") == \
            frozenset({"a b"})


class TestSerializer:
    def test_roundtrip_structure(self, book):
        dtd, doc = book
        text = serialize(doc)
        reparsed = parse_document(text, dtd.structure)
        assert reparsed.root.label == doc.root.label
        assert reparsed.size() == doc.size()
        assert [v.label for v in reparsed.root.subtree()] == \
            [v.label for v in doc.root.subtree()]

    def test_roundtrip_attributes(self, book):
        dtd, doc = book
        reparsed = parse_document(serialize(doc), dtd.structure)
        assert reparsed.ext_values("section", "sid") == \
            doc.ext_values("section", "sid")
        assert reparsed.ext_values("ref", "to") == \
            doc.ext_values("ref", "to")

    def test_text_content_exact(self):
        tree = DataTree("r")
        tree.root.append("a < b & c")
        assert parse_document(serialize(tree)).root.text == "a < b & c"

    def test_empty_element_form(self):
        tree = DataTree("r")
        tree.create_under(tree.root, "x")
        assert "<x/>" in serialize(tree)

    def test_xml_declaration(self):
        tree = DataTree("r")
        assert serialize(tree, xml_declaration=True).startswith("<?xml")

    def test_set_valued_attribute_joined(self):
        tree = DataTree("r")
        tree.root.set_attribute("to", ["b", "a"])
        assert 'to="a b"' in serialize(tree)


class TestInternalDtd:
    DOC = """<!DOCTYPE db [
    <!ELEMENT db (person*)>
    <!ELEMENT person EMPTY>
    <!ATTLIST person
        oid   ID     #REQUIRED
        knows IDREFS #IMPLIED>
    <!-- constraints:
    person.oid ->id person
    person.knows subS person.id
    -->
    ]>
    <db>
      <person oid="p1" knows="p2 p3"/>
      <person oid="p2" knows="p1"/>
      <person oid="p3" knows=""/>
    </db>
    """

    def test_parses_schema_and_document(self):
        from repro.xmlio.parser import parse_document_with_dtd
        dtd, tree = parse_document_with_dtd(self.DOC)
        assert dtd.structure.root == "db"
        assert len(dtd.constraints) == 2
        p1 = tree.ext("person")[0]
        assert p1.attr("knows") == frozenset({"p2", "p3"})

    def test_document_validates(self):
        from repro.dtd import validate
        from repro.xmlio.parser import parse_document_with_dtd
        dtd, tree = parse_document_with_dtd(self.DOC)
        assert validate(tree, dtd).ok

    def test_violations_detected(self):
        from repro.dtd import validate
        from repro.xmlio.parser import parse_document_with_dtd
        dtd, tree = parse_document_with_dtd(
            self.DOC.replace('knows="p1"', 'knows="ghost"'))
        report = validate(tree, dtd)
        assert any(v.code == "set-foreign-key" for v in report)

    def test_missing_subset_raises(self):
        import pytest as _pytest
        from repro.errors import XMLSyntaxError as _XS
        from repro.xmlio.parser import parse_document_with_dtd
        with _pytest.raises(_XS):
            parse_document_with_dtd("<a/>")
        with _pytest.raises(_XS):
            parse_document_with_dtd('<!DOCTYPE a SYSTEM "x.dtd"><a/>')
