"""The frozen public surface of the ``repro`` package.

``EXPECTED_ALL`` is a literal snapshot of ``repro.__all__``.  Changing
the public surface — adding, removing, or renaming a top-level name —
must update this file in the same commit, which makes every surface
change visible in review.  The deprecated entry points are part of the
surface too: they must warn (exactly once per access) and must still
work.
"""

import warnings

import pytest

import repro

# The frozen surface, sorted.  Update deliberately, never by reflex.
EXPECTED_ALL = sorted([
    # static analysis
    "AnalysisReport", "Diagnostic", "LintConfig", "Severity", "analyze",
    # constraint languages (§2.3)
    "Constraint", "Field", "ForeignKey", "IDConstraint", "IDForeignKey",
    "IDInverse", "IDSetValuedForeignKey", "Inverse", "Key", "Language",
    "SetValuedForeignKey", "UnaryForeignKey", "UnaryKey", "attr", "elem",
    "parse_constraint", "parse_constraints", "well_formed",
    # corpus validation
    "CorpusReport", "CorpusValidator", "ResultCache",
    # data model (§2.1)
    "DataTree", "TreeBuilder", "Vertex",
    # DTDs with constraints (§2.2, Def 2.4)
    "DTDC", "DTDStructure", "ValidationReport",
    # errors
    "ReproError",
    # implication engines (§3)
    "Derivation", "ImplicationResult", "LGeneralEngine", "LidEngine",
    "LPrimaryEngine", "LuEngine", "LuPrimaryEngine",
    # path constraints (§4)
    "Path", "PathFunctional", "PathImplicationEngine", "PathInclusion",
    "PathInverse", "parse_path", "type_of",
    # facade, sessions, observability (trace context + events: v1.3)
    "DocumentSession", "EventLog", "NULL_OBS", "Observability",
    "TraceContext", "Validator",
    # the engine registry (v1.4): repro.engines.register/names/create
    "engines",
    # the registry pivot + the validation service (v1.2)
    "SchemaHandle", "SchemaRegistry", "ValidationServer",
    # sharded corpus validation + watch mode (v1.5)
    "Locality", "ShardReport", "ShardedCorpusValidator", "WatchSession",
    # satisfiability + witness synthesis
    "SatReport", "UnsatCore", "Verdict", "check_satisfiability",
    "synthesize_witness",
    # workloads + xmlio
    "book_document", "book_dtdc",
    "parse_document", "parse_dtd", "parse_dtdc", "serialize",
    # deprecated entry points (still public; they warn)
    "check", "check_constraint", "validate",
    # metadata
    "__version__",
])


class TestFrozenSurface:
    def test_all_matches_snapshot(self):
        assert sorted(repro.__all__) == EXPECTED_ALL

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_every_name_resolves(self):
        for name in repro.__all__:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                assert getattr(repro, name) is not None, name

    def test_no_unlisted_public_names(self):
        """Anything importable without an underscore prefix is either
        in ``__all__`` or a submodule (submodules are navigational, not
        surface)."""
        import types

        public = {n for n in vars(repro)
                  if not n.startswith("_")
                  and not isinstance(getattr(repro, n), types.ModuleType)}
        unlisted = public - set(repro.__all__)
        assert not unlisted, f"public but not in __all__: {sorted(unlisted)}"


class TestDeprecatedEntryPoints:
    @pytest.mark.parametrize("name, hint", [
        ("validate", "Validator(dtd).validate(doc)"),
        ("check", "Validator(dtd).check(doc)"),
        ("check_constraint", "Validator(dtd).check(doc, [phi])"),
    ])
    def test_warns_once_with_migration_hint(self, name, hint):
        with pytest.warns(DeprecationWarning) as caught:
            getattr(repro, name)
        assert len(caught) == 1
        message = str(caught[0].message)
        assert hint in message
        assert "README.md" in message
        # v1.2: the warning is versioned and points at the registry API
        assert "will be removed in repro 2.0" in message
        assert "SchemaRegistry" in message

    def test_deprecated_validate_still_works(self):
        from repro import Validator, book_document, book_dtdc

        with pytest.warns(DeprecationWarning):
            legacy = repro.validate
        doc, dtd = book_document(), book_dtdc()
        old = legacy(doc, dtd)
        new = Validator(dtd).validate(doc)
        assert old.ok == new.ok
        assert [str(v) for v in old.violations] \
            == [str(v) for v in new.violations]

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_name
