"""Tests for the unified ``repro.Validator`` facade.

Every method must agree exactly with the legacy entry point it wraps,
on every fixture document — the facade is a re-plumbing, not a new
semantics.
"""

import pytest

import repro
from repro import DocumentSession, Validator
from repro.analysis import analyze
from repro.constraints import check
from repro.dtd.validate import validate, validate_strict
from repro.errors import ReproError, ValidationError
from repro.workloads import (
    book_document, book_dtdc, person_dept_export, school_document,
    school_dtdc,
)


def fixtures():
    dtd, doc = person_dept_export()
    return [(book_dtdc(), book_document()),
            (dtd, doc),
            (school_dtdc(), school_document())]


def canon(report):
    return sorted((v.code, v.constraint, tuple(sorted(v.vertices)))
                  for v in report)


class TestFacadeEquivalence:
    @pytest.mark.parametrize("i", range(3))
    def test_validate_matches_legacy(self, i):
        dtd, doc = fixtures()[i]
        assert canon(Validator(dtd).validate(doc)) == \
            canon(validate(doc, dtd))

    @pytest.mark.parametrize("i", range(3))
    def test_check_matches_legacy(self, i):
        dtd, doc = fixtures()[i]
        assert canon(Validator(dtd).check(doc)) == \
            canon(check(doc, dtd.constraints, dtd.structure))

    @pytest.mark.parametrize("i", range(3))
    def test_check_explicit_sigma(self, i):
        dtd, doc = fixtures()[i]
        sigma = dtd.constraints[:1]
        assert canon(Validator(dtd).check(doc, sigma)) == \
            canon(check(doc, sigma, dtd.structure))

    def test_analyze_matches_legacy(self):
        dtd = book_dtdc()
        assert [str(d) for d in Validator(dtd).analyze()] == \
            [str(d) for d in analyze(dtd)]

    def test_equivalence_on_invalid_document(self):
        dtd, doc = book_dtdc(), book_document()
        doc.ext("ref")[0].set_attribute("to", "nowhere")
        doc.ext("entry")[0].del_attribute("isbn")
        assert canon(Validator(dtd).validate(doc)) == \
            canon(validate(doc, dtd))


class TestFacadeSurface:
    def test_exported_from_package_root(self):
        assert repro.Validator is Validator
        assert repro.DocumentSession is DocumentSession

    def test_validate_strict(self):
        dtd, doc = book_dtdc(), book_document()
        Validator(dtd).validate_strict(doc)  # clean: no raise
        doc.ext("ref")[0].set_attribute("to", "nowhere")
        with pytest.raises(ValidationError):
            Validator(dtd).validate_strict(doc)
        with pytest.raises(ValidationError):
            validate_strict(doc, dtd)  # legacy shim still works

    def test_rejects_non_dtdc(self):
        with pytest.raises(TypeError):
            Validator("not a schema")

    def test_session_matches_check(self):
        dtd, doc = book_dtdc(), book_document()
        session = Validator(dtd).session(doc)
        assert isinstance(session, DocumentSession)
        assert session.constraints == tuple(dtd.constraints)
        doc.ext("ref")[0]  # sanity: doc is the session's tree
        assert session.tree is doc
        session.set_attribute(doc.ext("ref")[0], "to", "nowhere")
        assert canon(session.revalidate()) == \
            canon(check(doc, dtd.constraints, dtd.structure))

    def test_session_explicit_sigma(self):
        dtd, doc = book_dtdc(), book_document()
        session = Validator(dtd).session(doc, dtd.constraints[:1])
        assert session.constraints == tuple(dtd.constraints[:1])

    def test_legacy_docstrings_point_to_facade(self):
        for fn in (validate, validate_strict, check, analyze):
            assert "Validator" in fn.__doc__

    def test_validate_without_structure_raises_repro_error(self):
        session = DocumentSession(book_document())
        with pytest.raises(ReproError):
            session.validate()
