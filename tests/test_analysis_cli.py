"""Tests for `repro-xic lint` and the describe stderr routing."""

import json
import pathlib

import pytest

from repro.analysis import analyze
from repro.cli.main import main
from repro.xmlio.dtdparse import parse_dtdc

REPO = pathlib.Path(__file__).resolve().parent.parent
ALL_FIXTURES = sorted(
    list((REPO / "tests" / "fixtures").glob("*.dtdc"))
    + list((REPO / "examples").glob("*.dtdc")))


def fixture(name: str) -> str:
    return str(REPO / "tests" / "fixtures" / name)


class TestLintExitCodes:
    def test_clean_schema_exits_zero(self, capsys):
        assert main(["lint", fixture("clean.dtdc")]) == 0
        assert "clean (no diagnostics)" in capsys.readouterr().out

    def test_advisory_only_schema_exits_zero(self, capsys):
        # book.dtdc carries the XIC307 info certificate; info is not a
        # finding, so the verdict is still clean.
        assert main(["lint", fixture("book.dtdc")]) == 0
        assert "XIC307" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", fixture("divergent.dtdc")]) == 1
        out = capsys.readouterr().out
        assert "XIC302" in out and "Cor 3.3" in out

    def test_illformed_schema_is_reported_not_raised(self, capsys):
        assert main(["lint", fixture("illformed.dtdc")]) == 1
        out = capsys.readouterr().out
        assert "XIC204" in out

    def test_missing_file_exits_two(self):
        assert main(["lint", "/no/such/schema.dtdc"]) == 2

    def test_unparseable_schema_exits_two(self, tmp_path):
        bad = tmp_path / "bad.dtdc"
        bad.write_text("this is not a DTD at all")
        assert main(["lint", str(bad)]) == 2


class TestLintSelection:
    def test_select_restricts_families(self, capsys):
        assert main(["lint", fixture("divergent.dtdc"),
                     "--select", "XIC1"]) == 0
        assert "XIC302" not in capsys.readouterr().out

    def test_ignore_drops_codes(self, capsys):
        assert main(["lint", fixture("divergent.dtdc"),
                     "--ignore", "XIC302"]) == 0

    def test_comma_separated_and_repeated_flags(self, capsys):
        code = main(["lint", fixture("inconsistent.dtdc"),
                     "--select", "XIC303,XIC304", "--select", "XIC101"])
        assert code == 1
        out = capsys.readouterr().out
        assert "XIC303" in out


class TestLintJson:
    def test_json_round_trips(self, capsys):
        main(["lint", fixture("book.dtdc"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["schema"].endswith("book.dtdc")
        assert {"error", "warning", "info", "hint"} \
            == set(payload["summary"])
        assert all({"code", "severity", "message", "rule"}
                   <= set(d) for d in payload["diagnostics"])

    @pytest.mark.parametrize("path", ALL_FIXTURES, ids=lambda p: p.name)
    def test_every_fixture_round_trips(self, path, capsys):
        code = main(["lint", str(path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 1)
        assert (code == 0) == payload["clean"]


class TestDeterminism:
    @pytest.mark.parametrize("path", ALL_FIXTURES, ids=lambda p: p.name)
    def test_lint_is_deterministic(self, path):
        def run():
            dtd = parse_dtdc(path.read_text(), check=False)
            return str(analyze(dtd))
        assert run() == run()

    def test_fixture_set_is_nontrivial(self):
        assert len(ALL_FIXTURES) >= 7
        verdicts = set()
        for path in ALL_FIXTURES:
            dtd = parse_dtdc(path.read_text(), check=False)
            verdicts.add(analyze(dtd).clean)
        assert verdicts == {True, False}


class TestDescribeRouting:
    def test_diagnostics_go_to_stderr(self, capsys):
        assert main(["--root", "db",
                     "describe", fixture("divergent.dtdc")]) == 0
        captured = capsys.readouterr()
        assert "P(tau)" in captured.out
        assert "XIC302" in captured.err
        assert "XIC302" not in captured.out

    def test_clean_schema_has_empty_stderr(self, capsys):
        assert main(["--root", "db",
                     "describe", fixture("clean.dtdc")]) == 0
        assert capsys.readouterr().err == ""
