"""Tests for L_id implication (§3.1, Proposition 3.1)."""

import pytest

from repro.constraints import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey, Key,
    UnaryKey, attr,
)
from repro.errors import LanguageMismatchError
from repro.implication.lid import ID_FIELD, LidEngine, lid_closure


def sigma_o():
    """The Σ_o of §2.4 (attribute spellings per the paper)."""
    return [
        IDConstraint("person"),
        IDConstraint("dept"),
        UnaryKey("person", attr("name")),
        UnaryKey("dept", attr("dname")),
        IDSetValuedForeignKey("person", attr("in_dept"), "dept"),
        IDForeignKey("dept", attr("manager"), "person"),
        IDSetValuedForeignKey("dept", attr("has_staff"), "person"),
        IDInverse("dept", attr("has_staff"), "person", attr("in_dept")),
    ]


class TestAxioms:
    def test_given_constraints_implied(self):
        engine = LidEngine(sigma_o())
        for c in sigma_o():
            result = engine.implies(c)
            assert result, str(c)
            assert result.derivation is not None

    def test_fk_id_rule(self):
        engine = LidEngine([IDForeignKey("a", attr("r"), "b")])
        result = engine.implies(IDConstraint("b"))
        assert result
        assert result.derivation.rule == "FK-ID"

    def test_sfk_id_rule(self):
        engine = LidEngine([IDSetValuedForeignKey("a", attr("r"), "b")])
        assert engine.implies(IDConstraint("b")).derivation.rule == \
            "SFK-ID"

    def test_inv_sfk_id_rule(self):
        engine = LidEngine([IDInverse("a", attr("x"), "b", attr("y"))])
        assert engine.implies(IDSetValuedForeignKey("a", attr("x"), "b"))
        assert engine.implies(IDSetValuedForeignKey("b", attr("y"), "a"))
        # ... and transitively the ID constraints via SFK-ID.
        assert engine.implies(IDConstraint("a"))
        assert engine.implies(IDConstraint("b"))

    def test_id_fk_rule_reflexive(self):
        engine = LidEngine([IDConstraint("a")])
        assert engine.implies(IDForeignKey("a", ID_FIELD, "a"))

    def test_id_key_completion(self):
        # Documented completion: tau.id ->id tau |= tau.id -> tau.
        engine = LidEngine([IDConstraint("a")])
        assert engine.implies(UnaryKey("a", ID_FIELD))

    def test_inverse_flip_normalization(self):
        inv = IDInverse("a", attr("x"), "b", attr("y"))
        engine = LidEngine([inv])
        assert engine.implies(inv.flipped())


class TestNonImplication:
    def test_unrelated_key_not_implied(self):
        engine = LidEngine(sigma_o())
        assert not engine.implies(UnaryKey("person", attr("address")))

    def test_fk_to_wrong_target_not_implied(self):
        engine = LidEngine(sigma_o())
        assert not engine.implies(
            IDForeignKey("dept", attr("manager"), "dept"))

    def test_inverse_not_invented(self):
        engine = LidEngine(sigma_o())
        assert not engine.implies(
            IDInverse("dept", attr("manager"), "person", attr("in_dept")))

    def test_empty_sigma(self):
        engine = LidEngine([])
        assert not engine.implies(IDConstraint("a"))
        assert not engine.implies(UnaryKey("a", attr("x")))


class TestEngineBehaviour:
    def test_finite_equals_unrestricted(self):
        engine = LidEngine(sigma_o())
        queries = sigma_o() + [
            IDConstraint("person"),
            UnaryKey("person", attr("address")),
            IDForeignKey("dept", attr("manager"), "dept"),
        ]
        for phi in queries:
            assert bool(engine.implies(phi)) == \
                bool(engine.finitely_implies(phi))

    def test_closure_linear_content(self):
        closure = lid_closure(sigma_o())
        # Σ_o (8, one inverse collapses under flip-normalization to the
        # same object) + derived: 2 reflexive FKs + 2 id-keys; the
        # inverse's SFKs are already stated.
        strs = set(map(str, closure))
        assert "person.id sub person.id" in strs
        assert "dept.id sub dept.id" in strs
        assert "person.id -> person" in strs

    def test_rejects_foreign_language(self):
        with pytest.raises(LanguageMismatchError):
            LidEngine([Key("a", (attr("x"), attr("y")))])
        engine = LidEngine([])
        with pytest.raises(LanguageMismatchError):
            engine.implies(Key("a", (attr("x"), attr("y"))))

    def test_derivation_is_printable(self):
        engine = LidEngine([IDInverse("a", attr("x"), "b", attr("y"))])
        result = engine.implies(IDConstraint("b"))
        text = result.derivation.pretty()
        assert "SFK-ID" in text and "Inv-SFK-ID" in text

    def test_vacuous_type_detection(self):
        # One single-valued IDREF with FKs into two different targets
        # forces ext(a) to be empty in every model (see module docs).
        sigma = [IDForeignKey("a", attr("r"), "b"),
                 IDForeignKey("a", attr("r"), "c")]
        engine = LidEngine(sigma)
        assert engine.vacuous_types() == {"a"}
        assert LidEngine(sigma_o()).vacuous_types() == set()


class TestSoundnessOnDocuments:
    def test_derived_constraints_hold_on_persondept(self, persondept):
        """Every closure member holds on a valid document (soundness)."""
        from repro.constraints import check
        dtd, doc = persondept
        engine = LidEngine(dtd.constraints)
        derived = [c for c in engine.derived_constraints()
                   if ID_FIELD not in
                   (getattr(c, "field", None),)]
        report = check(doc, derived, dtd.structure)
        assert report.ok, str(report)
