"""The cross-subcommand CLI contract.

Every ``repro-xic`` subcommand promises the same three things:

1. ``--format json`` puts exactly one parseable JSON value on stdout;
2. the 0/1/2 exit contract — 0 success / holds / clean, 1 violations /
   not implied / findings, 2 usage or input error;
3. a missing input file exits 2 (never a traceback).

This test is parametrized over the full subcommand table, so adding a
subcommand without wiring the shared ``--format`` parent or the exit
contract fails here, not in review.
"""

import json

import pytest

from repro.cli.main import build_parser, main
from repro.workloads import book_document, random_corpus
from repro.workloads.book import BOOK_CONSTRAINTS_TEXT, BOOK_DTD_TEXT
from repro.xmlio import serialize

pytestmark = pytest.mark.usefixtures("capsys")


@pytest.fixture(scope="module")
def cli_files(tmp_path_factory):
    """One schema + document + corpus directory for every case."""
    base = tmp_path_factory.mktemp("cli_contract")
    schema = base / "book.dtdc"
    schema.write_text(BOOK_DTD_TEXT + "\n%% constraints\n"
                      + BOOK_CONSTRAINTS_TEXT)
    doc = base / "book.xml"
    doc.write_text(serialize(book_document()))
    corpus = base / "corpus"
    corpus.mkdir()
    _dtd, docs = random_corpus(n_docs=4, invalid_fraction=0.0, seed=0)
    for i, tree in enumerate(docs):
        (corpus / f"doc{i}.xml").write_text(serialize(tree))
    lib_schema = base / "library.dtdc"
    lib_schema.write_text("""
<!ELEMENT library (entry*, ref*)>
<!ELEMENT entry (#PCDATA)?>
<!ELEMENT ref EMPTY>
<!ATTLIST entry isbn CDATA #REQUIRED shelf CDATA #REQUIRED>
<!ATTLIST ref to CDATA #REQUIRED>
%% constraints
entry.isbn -> entry
ref.to sub entry.isbn
""")
    from repro.obs import Observability

    obs = Observability()
    with obs.span("cli.fixture", kind="contract-test"):
        with obs.span("child"):
            obs.counter("fixture_things", help="counted things").add(1)
    obs_json = base / "obs.json"
    obs_json.write_text(obs.to_json())
    from repro.corpus import ResultCache
    from repro.dtd.validate import ValidationReport

    cache_dir = base / "result_cache"
    ResultCache(directory=cache_dir).put("00" + "a" * 62,
                                         ValidationReport())
    return {"schema": str(schema), "doc": str(doc),
            "corpus": str(corpus), "lib_schema": str(lib_schema),
            "obs_json": str(obs_json), "cache_dir": str(cache_dir)}


#: subcommand -> (argv builder, indices of argv that are input files).
#: The builder receives the cli_files dict; file indices drive the
#: missing-file case (each listed position is replaced in turn).
CASES = {
    "validate": (
        lambda f: ["--root", "book", "validate", f["doc"], f["schema"]],
        [3, 4]),
    "check-corpus": (
        lambda f: ["check-corpus", f["lib_schema"], f["corpus"]],
        [1]),
    "describe": (
        lambda f: ["--root", "book", "describe", f["schema"]],
        [3]),
    "lint": (
        lambda f: ["--root", "book", "lint", f["schema"]],
        [3]),
    "consistent": (
        lambda f: ["--root", "book", "consistent", f["schema"]],
        [3]),
    "imply": (
        lambda f: ["--root", "book", "imply", f["schema"],
                   "entry.isbn -> entry"],
        [3]),
    "path-type": (
        lambda f: ["--root", "book", "path-type", f["schema"],
                   "book", "ref"],
        [3]),
    "path-imply": (
        lambda f: ["--root", "book", "path-imply", f["schema"],
                   "book.ref -> book.ref"],
        [3]),
    "synth": (
        lambda f: ["--root", "book", "synth", f["schema"]],
        [3]),
    "bench-incremental": (
        lambda f: ["bench-incremental", "--nodes", "120",
                   "--updates", "2"],
        []),
    "profile": (
        lambda f: ["--root", "book", "profile", "--dtdc", f["schema"],
                   "--doc", f["doc"]],
        [4, 6]),
    "obs-export": (
        lambda f: ["obs-export", f["obs_json"]],
        [1]),
    "cache": (
        lambda f: ["cache", "prune", f["cache_dir"],
                   "--max-bytes", "1000000"],
        [2]),
}


class TestSharedFormatFlag:
    def test_every_subcommand_has_format(self):
        """The parent parser reaches every subparser — by construction,
        but this is the tripwire for future subcommands."""
        parser = build_parser()
        actions = [a for a in parser._subparsers._group_actions
                   if hasattr(a, "choices")]
        subparsers = actions[0].choices
        # ``serve`` (long-lived daemon) and ``top`` (polls a running
        # daemon) are not one-shot commands, so they stay out of the
        # CASES table — but both still inherit the shared --format
        # parent like everything else.
        assert set(subparsers) == set(CASES) | {"serve", "top"}
        for name, sub in subparsers.items():
            flags = {s for a in sub._actions for s in a.option_strings}
            assert "--format" in flags, f"{name} lacks --format"

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_json_output_parses(self, name, cli_files, capsys):
        argv_builder, _files = CASES[name]
        code = main(argv_builder(cli_files) + ["--format", "json"])
        assert code in (0, 1), f"{name} exited {code}"
        out = capsys.readouterr().out
        json.loads(out)  # must be exactly one JSON value

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_text_is_the_default(self, name, cli_files, capsys):
        argv_builder, _files = CASES[name]
        code = main(argv_builder(cli_files))
        assert code in (0, 1)
        out = capsys.readouterr().out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)


class TestExitContract:
    @pytest.mark.parametrize(
        "name", sorted(n for n, (_b, files) in CASES.items() if files))
    def test_missing_file_exits_2(self, name, cli_files, capsys):
        argv_builder, file_positions = CASES[name]
        for pos in file_positions:
            argv = argv_builder(cli_files)
            argv[pos] = "/no/such/path"
            assert main(argv) == 2, f"{name} argv[{pos}]"

    def test_violations_exit_1(self, cli_files, tmp_path, capsys):
        bad = book_document()
        bad.ext("ref")[0].set_attribute("to", ["nowhere"])
        path = tmp_path / "bad.xml"
        path.write_text(serialize(bad))
        assert main(["--root", "book", "validate", str(path),
                     cli_files["schema"]]) == 1

    def test_corpus_violations_exit_1(self, cli_files, tmp_path, capsys):
        _dtd, docs = random_corpus(n_docs=3, invalid_fraction=1.0, seed=1)
        for i, tree in enumerate(docs):
            (tmp_path / f"bad{i}.xml").write_text(serialize(tree))
        assert main(["check-corpus", cli_files["lib_schema"],
                     str(tmp_path)]) == 1

    def test_corpus_parse_error_exits_2(self, cli_files, tmp_path, capsys):
        (tmp_path / "broken.xml").write_text("<library><entry")
        assert main(["check-corpus", cli_files["lib_schema"],
                     cli_files["corpus"], str(tmp_path)]) == 2

    def test_corpus_parse_error_names_file_json(self, cli_files,
                                                tmp_path, capsys):
        """An exit-2 JSON report must say *which* document failed:
        the top-level ``error_documents`` array, in input order."""
        broken = tmp_path / "broken.xml"
        broken.write_text("<library><entry")
        assert main(["check-corpus", cli_files["lib_schema"],
                     cli_files["corpus"], str(tmp_path),
                     "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["error_documents"] == [str(broken)]
        # and the per-document verdict carries the parse error itself
        bad = [v for v in payload["verdicts"] if v["error"] is not None]
        assert [v["doc"] for v in bad] == [str(broken)]

    def test_corpus_parse_error_names_file_text(self, cli_files,
                                                tmp_path, capsys):
        broken = tmp_path / "broken.xml"
        broken.write_text("<library><entry")
        assert main(["check-corpus", cli_files["lib_schema"],
                     cli_files["corpus"], str(tmp_path)]) == 2
        out = capsys.readouterr().out
        assert f"{broken}: ERROR" in out

    def test_corpus_no_documents_exits_2(self, cli_files, tmp_path,
                                         capsys):
        assert main(["check-corpus", cli_files["lib_schema"],
                     str(tmp_path)]) == 2


class TestCheckCorpusFlags:
    def test_jobs_and_cache(self, cli_files, tmp_path, capsys):
        argv = ["check-corpus", cli_files["lib_schema"],
                cli_files["corpus"], "--jobs", "2",
                "--cache", str(tmp_path), "--format", "json"]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert cold["cached"] == 0
        assert warm["cached"] == cold["documents"]
        assert warm["verdicts"] != []  # same verdicts either way
        strip = lambda vs: [  # noqa: E731
            {k: val for k, val in v.items() if k != "cached"}
            for v in vs]
        assert strip(warm["verdicts"]) == strip(cold["verdicts"])

    def test_bench_json_alias_still_works(self, capsys):
        """--json on bench-incremental is deprecated but must keep
        emitting JSON until removal."""
        assert main(["bench-incremental", "--nodes", "120",
                     "--updates", "2", "--json"]) == 0
        json.loads(capsys.readouterr().out)


class TestServeUsage:
    """The fast (non-daemon) half of the ``serve`` contract; the
    running-daemon behaviour lives in ``tests/test_server.py``."""

    def test_no_transport_exits_2(self, capsys):
        assert main(["serve"]) == 2

    def test_bad_schema_spec_exits_2(self, cli_files, capsys):
        assert main(["serve", "--stdio",
                     "--schema", "no-equals-sign"]) == 2

    def test_missing_schema_file_exits_2(self, capsys):
        assert main(["serve", "--stdio",
                     "--schema", "book=/no/such/schema.dtdc"]) == 2


class TestStreamFlag:
    """``--stream`` must be invisible in the output: same bytes, same
    exit status, same ``--format`` behaviour as the default path.

    (Kept out of ``CASES`` — that table enumerates subcommands, not
    flag variants.)
    """

    @pytest.mark.parametrize("fmt", ["text", "json"])
    def test_validate_output_is_identical(self, cli_files, fmt, capsys):
        argv = ["--root", "book", "validate", cli_files["doc"],
                cli_files["schema"], "--format", fmt]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--stream"]) == 0
        streamed = capsys.readouterr().out
        assert streamed == plain
        if fmt == "json":
            json.loads(streamed)

    def test_validate_violations_exit_1(self, cli_files, tmp_path,
                                        capsys):
        bad = book_document()
        bad.ext("ref")[0].set_attribute("to", ["nowhere"])
        path = tmp_path / "bad.xml"
        path.write_text(serialize(bad))
        argv = ["--root", "book", "validate", str(path),
                cli_files["schema"], "--format", "json"]
        assert main(argv) == 1
        plain = capsys.readouterr().out
        assert main(argv + ["--stream"]) == 1
        assert capsys.readouterr().out == plain

    def test_validate_missing_file_exits_2(self, cli_files, capsys):
        assert main(["--root", "book", "validate", "/no/such/doc.xml",
                     cli_files["schema"], "--stream"]) == 2

    @pytest.mark.parametrize("fmt", ["text", "json"])
    def test_check_corpus_verdicts_identical(self, cli_files, fmt,
                                             capsys):
        argv = ["check-corpus", cli_files["lib_schema"],
                cli_files["corpus"], "--jobs", "2", "--format", fmt]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--stream"]) == 0
        streamed = capsys.readouterr().out
        if fmt == "json":
            p, s = json.loads(plain), json.loads(streamed)
            p.pop("phases_s"), s.pop("phases_s")  # wall clock may differ
            assert s == p
        else:
            drop_timings = lambda out: [  # noqa: E731
                line for line in out.splitlines()
                if "prepare=" not in line]
            assert drop_timings(streamed) == drop_timings(plain)


class TestEngineFlag:
    """``--engine`` selects the backend without touching the output
    contract: byte-identical stdout and the same exit status across
    every built-in engine, with ``--stream`` surviving as a deprecated
    alias."""

    @pytest.mark.parametrize("fmt", ["text", "json"])
    def test_validate_output_identical_across_engines(self, cli_files,
                                                      fmt, capsys):
        argv = ["--root", "book", "validate", cli_files["doc"],
                cli_files["schema"], "--format", fmt]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        for engine in ("batch", "stream", "codegen", "auto"):
            assert main(argv + ["--engine", engine]) == 0, engine
            assert capsys.readouterr().out == plain, engine

    def test_unknown_engine_exits_2(self, cli_files, capsys):
        assert main(["--root", "book", "validate", cli_files["doc"],
                     cli_files["schema"], "--engine", "psychic"]) == 2

    def test_engine_and_stream_conflict_exits_2(self, cli_files,
                                                capsys):
        assert main(["--root", "book", "validate", cli_files["doc"],
                     cli_files["schema"], "--engine", "batch",
                     "--stream"]) == 2

    def test_stream_flag_warns_deprecation(self, cli_files, capsys):
        argv = ["--root", "book", "validate", cli_files["doc"],
                cli_files["schema"], "--stream"]
        with pytest.warns(DeprecationWarning, match="--engine stream"):
            assert main(argv) == 0

    def test_check_corpus_engines_identical(self, cli_files, capsys):
        argv = ["check-corpus", cli_files["lib_schema"],
                cli_files["corpus"], "--format", "json"]
        assert main(argv) == 0
        plain = json.loads(capsys.readouterr().out)
        plain.pop("phases_s")
        for engine in ("stream", "codegen", "auto"):
            assert main(argv + ["--engine", engine]) == 0, engine
            got = json.loads(capsys.readouterr().out)
            got.pop("phases_s")
            assert got == plain, engine

    def test_serve_mode_and_engine_conflict_exits_2(self, cli_files,
                                                    capsys):
        assert main(["serve", "--stdio", "--engine", "stream",
                     "--mode", "batch"]) == 2

    def test_serve_unknown_engine_exits_2(self, cli_files, capsys):
        assert main(["serve", "--stdio", "--engine", "psychic"]) == 2
