"""Unit tests for DTD parsing and the .dtdc format."""

import pytest

from repro.constraints import (
    IDConstraint, SetValuedForeignKey, UnaryKey,
)
from repro.dtd.structure import AttributeKind
from repro.errors import DTDSyntaxError
from repro.regexlang import parse_regex
from repro.workloads.book import BOOK_CONSTRAINTS_TEXT, BOOK_DTD_TEXT
from repro.xmlio import parse_dtd, parse_dtdc, serialize_dtdc


class TestParseDtd:
    def test_book_dtd(self):
        s = parse_dtd(BOOK_DTD_TEXT, root="book")
        assert s.root == "book"
        assert s.element_types >= {"book", "entry", "section", "ref"}
        assert s.content("book") == \
            parse_regex("(entry, author*, section*, ref)")

    def test_root_defaults_to_first_element(self):
        s = parse_dtd("<!ELEMENT a (b)><!ELEMENT b EMPTY>")
        assert s.root == "a"

    def test_attribute_kinds(self):
        s = parse_dtd(BOOK_DTD_TEXT, root="book")
        assert s.kind("section", "sid") is AttributeKind.ID
        assert s.kind("ref", "to") is AttributeKind.IDREF
        assert s.is_set_valued("ref", "to")
        assert s.kind("entry", "isbn") is None
        assert not s.is_set_valued("entry", "isbn")

    def test_multiple_attdefs_in_one_attlist(self):
        s = parse_dtd("""
            <!ELEMENT p EMPTY>
            <!ATTLIST p
                oid     ID      #REQUIRED
                dept    IDREF   #IMPLIED
                tags    NMTOKENS "x">
        """)
        assert s.kind("p", "oid") is AttributeKind.ID
        assert s.kind("p", "dept") is AttributeKind.IDREF
        assert s.is_set_valued("p", "tags")
        assert s.kind("p", "tags") is None

    def test_enumerated_attribute_type(self):
        s = parse_dtd("""
            <!ELEMENT p EMPTY>
            <!ATTLIST p mode (fast|slow) "fast">
        """)
        assert s.has_attribute("p", "mode")

    def test_pcdata_only_content_allows_any_text(self):
        s = parse_dtd("<!ELEMENT t (#PCDATA)>")
        from repro.regexlang.automaton import accepts
        assert accepts(s.content("t"), [])
        assert accepts(s.content("t"), ["S", "S"])

    def test_mixed_content(self):
        s = parse_dtd("<!ELEMENT s (#PCDATA | b)*><!ELEMENT b EMPTY>")
        from repro.regexlang.automaton import accepts
        assert accepts(s.content("s"), ["S", "b", "S"])

    def test_any_content_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT a ANY>")

    def test_no_elements_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!-- nothing here -->")

    def test_attlist_for_undeclared_element_tolerated(self):
        s = parse_dtd("<!ELEMENT a EMPTY><!ATTLIST b x CDATA #IMPLIED>")
        assert s.has_element("b")


class TestDtdc:
    def _text(self) -> str:
        return BOOK_DTD_TEXT + "\n%% constraints\n" + BOOK_CONSTRAINTS_TEXT

    def test_section_marker(self):
        dtd = parse_dtdc(self._text(), root="book")
        assert len(dtd.constraints) == 3
        kinds = {type(c) for c in dtd.constraints}
        assert kinds == {UnaryKey, SetValuedForeignKey}

    def test_comment_form(self):
        text = BOOK_DTD_TEXT + """
        <!-- constraints:
        entry.isbn -> entry
        -->
        """
        dtd = parse_dtdc(text, root="book")
        assert [str(c) for c in dtd.constraints] == \
            ["entry.isbn -> entry"]

    def test_roundtrip(self):
        dtd = parse_dtdc(self._text(), root="book")
        again = parse_dtdc(serialize_dtdc(dtd))
        assert again.structure.root == "book"
        assert set(map(str, again.constraints)) == \
            set(map(str, dtd.constraints))
        for t in dtd.structure.element_types:
            assert again.structure.attributes(t) == \
                dtd.structure.attributes(t)

    def test_lid_constraints_roundtrip(self, persondept):
        dtd, _doc = persondept
        again = parse_dtdc(serialize_dtdc(dtd), root="db")
        assert set(map(str, again.constraints)) == \
            set(map(str, dtd.constraints))
        assert any(isinstance(c, IDConstraint) for c in again.constraints)
