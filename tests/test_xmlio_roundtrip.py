"""Serializer <-> parser round-trips on the awkward cases.

The corpus cache keys on serialized text (what is hashed is exactly
what is validated), so ``serialize`` must be deterministic and
``parse_document(serialize(tree))`` must reproduce the tree — including
attribute values that need escaping and mixed element/text content.
"""

import pytest

from repro.datamodel import DataTree, TreeBuilder
from repro.dtd.structure import DTDStructure
from repro.errors import XMLSyntaxError
from repro.xmlio import parse_document, serialize
from repro.xmlio.escape import escape_attribute, unescape


def roundtrip(tree: DataTree, structure=None) -> DataTree:
    return parse_document(serialize(tree), structure)


def assert_same_shape(a: DataTree, b: DataTree) -> None:
    def shape(vertex):
        return (vertex.label,
                {name: sorted(vertex.attr(name))
                 for name in vertex.attributes},
                [child if isinstance(child, str) else shape(child)
                 for child in vertex.children])
    assert shape(a.root) == shape(b.root)


class TestAttributeEscaping:
    @pytest.mark.parametrize("value", [
        'say "hello"',
        "a & b",
        "less < more > less",
        'all of them: <&"> at once',
        "&amp; literal-looking",      # pre-escaped text must survive
        "trailing backslash \\",
        "  padded  ",
    ])
    def test_attribute_value_roundtrip(self, value):
        tree = DataTree("e")
        tree.root.set_attribute("a", value)
        back = roundtrip(tree)
        assert back.root.attr("a") == {value}

    def test_escape_attribute_covers_quotes(self):
        assert escape_attribute('<&">') == "&lt;&amp;&quot;&gt;"

    def test_attributes_serialized_sorted(self):
        tree = DataTree("e")
        tree.root.set_attribute("zeta", "1")
        tree.root.set_attribute("alpha", "2")
        text = serialize(tree)
        assert text.index("alpha") < text.index("zeta")
        # determinism: same tree, same bytes
        assert text == serialize(roundtrip(tree))

    def test_set_valued_attribute_roundtrip(self):
        s = DTDStructure("e")
        s.define_element("e", "EMPTY")
        s.define_attribute("e", "refs", set_valued=True)
        s.check()
        tree = DataTree("e")
        tree.root.set_attribute("refs", {"id-9", "id-1", "id-5"})
        back = roundtrip(tree, s)
        assert back.root.attr("refs") == {"id-1", "id-5", "id-9"}
        # serialized token order is sorted, hence deterministic
        assert 'refs="id-1 id-5 id-9"' in serialize(tree)


class TestTextEscaping:
    @pytest.mark.parametrize("text", [
        "plain",
        "a < b and b > a",
        "ampersand & co",
        "tags like </e> must not close anything",
        "numeric é中� survive",
    ])
    def test_text_content_roundtrip(self, text):
        b = TreeBuilder("e")
        b.text(text)
        back = roundtrip(b.tree)
        assert back.root.children == (text,)

    def test_numeric_entities_parse(self):
        tree = parse_document("<e>&#233; &#x4e2d;</e>")
        assert tree.root.children == ("é 中",)

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<e>&nosuch;</e>")

    def test_bare_ampersand_raises(self):
        with pytest.raises(XMLSyntaxError):
            unescape("a & b")


class TestMixedContent:
    def build_mixed(self) -> DataTree:
        b = TreeBuilder("section")
        b.text("Intro with <angle> & ampersand, then ")
        b.leaf("em", "emphasis")
        b.text(" and a tail.")
        return b.tree

    def test_mixed_content_roundtrip(self):
        tree = self.build_mixed()
        back = roundtrip(tree)
        assert_same_shape(tree, back)

    def test_mixed_content_stable_under_reserialization(self):
        tree = self.build_mixed()
        once = serialize(tree)
        assert once == serialize(parse_document(once))

    def test_mixed_content_emitted_inline(self):
        """Text-bearing elements use the inline form — pretty-printing
        them would inject whitespace into character data."""
        text = serialize(self.build_mixed())
        assert "\n" not in text.strip()

    def test_nested_mixed_content(self):
        b = TreeBuilder("doc")
        with b.element("p"):
            b.text("outer ")
            with b.element("b"):
                b.text("bold & <bracketed>")
            b.text(" tail")
        back = roundtrip(b.tree)
        assert_same_shape(b.tree, back)

    def test_element_only_content_pretty_printed(self):
        b = TreeBuilder("doc")
        with b.element("a"):
            b.leaf("leaf", "text")
        text = serialize(b.tree)
        assert "\n  <a>" in text
        assert_same_shape(b.tree, roundtrip(b.tree))

    def test_indent_none_matches_pretty_semantics(self):
        tree = self.build_mixed()
        compact = serialize(tree, indent=None)
        assert_same_shape(parse_document(compact),
                          parse_document(serialize(tree)))


class TestCorpusKeyStability:
    def test_serialize_is_a_stable_cache_key(self):
        """Two structurally equal trees built in different attribute
        orders must hash identically (the corpus cache depends on it)."""
        from repro.corpus import result_key

        a = DataTree("e")
        a.root.set_attribute("x", "1")
        a.root.set_attribute("y", 'needs "escaping" & <more>')
        b = DataTree("e")
        b.root.set_attribute("y", 'needs "escaping" & <more>')
        b.root.set_attribute("x", "1")
        assert result_key(serialize(a), "fp") \
            == result_key(serialize(b), "fp")
