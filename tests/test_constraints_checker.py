"""Unit tests for constraint satisfaction checking (G |= Sigma)."""

from repro.constraints import (
    ForeignKey, IDConstraint, IDForeignKey, IDInverse,
    IDSetValuedForeignKey, Inverse, Key, SetValuedForeignKey,
    UnaryForeignKey, UnaryKey, attr, check, check_constraint, check_naive,
    elem,
)
from repro.datamodel import TreeBuilder
from repro.dtd import DTDStructure


def people_tree(rows, depts=()):
    """rows: (oid, name, in_dept set); depts: (oid, dname, staff set)."""
    b = TreeBuilder("db")
    for oid, name, in_dept in rows:
        b.leaf("person", oid=oid, name=name, in_dept=in_dept)
    for oid, dname, staff in depts:
        b.leaf("dept", oid=oid, dname=dname, has_staff=staff)
    return b.tree


def id_structure() -> DTDStructure:
    s = DTDStructure("db")
    s.define_element("db", "(person*, dept*)")
    s.define_element("person", "EMPTY")
    s.define_element("dept", "EMPTY")
    s.define_attribute("person", "oid", kind="ID")
    s.define_attribute("person", "name")
    s.define_attribute("person", "in_dept", set_valued=True, kind="IDREF")
    s.define_attribute("dept", "oid", kind="ID")
    s.define_attribute("dept", "dname")
    s.define_attribute("dept", "has_staff", set_valued=True, kind="IDREF")
    return s


class TestKeys:
    def test_unary_key_holds(self):
        tree = people_tree([("p1", "a", ()), ("p2", "b", ())])
        assert check_constraint(tree, UnaryKey("person", attr("name")))

    def test_unary_key_violated(self):
        tree = people_tree([("p1", "a", ()), ("p2", "a", ())])
        report = check(tree, [UnaryKey("person", attr("name"))])
        assert not report.ok
        assert report.violations[0].code == "key"
        assert len(report.violations[0].vertices) == 2

    def test_multi_attribute_key(self):
        b = TreeBuilder("db")
        b.leaf("pub", pname="x", country="US")
        b.leaf("pub", pname="x", country="UK")
        key = Key("pub", (attr("pname"), attr("country")))
        assert check_constraint(b.tree, key)
        b.leaf("pub", pname="x", country="US")
        assert not check_constraint(b.tree, key)

    def test_subelement_key(self):
        b = TreeBuilder("db")
        with b.element("person"):
            b.leaf("name", "ann")
        with b.element("person"):
            b.leaf("name", "ann")
        assert not check_constraint(b.tree,
                                    UnaryKey("person", elem("name")))

    def test_key_skips_incomplete_vertices(self):
        tree = people_tree([("p1", "a", ())])
        extra = tree.create("person")  # no attributes at all
        tree.root.append(extra)
        assert check_constraint(tree, UnaryKey("person", attr("name")))


class TestForeignKeys:
    def test_unary_fk(self):
        b = TreeBuilder("db")
        b.leaf("e", isbn="1")
        b.leaf("r", to="1")
        assert check_constraint(
            b.tree, UnaryForeignKey("r", attr("to"), "e", attr("isbn")))
        b.leaf("r", to="2")
        assert not check_constraint(
            b.tree, UnaryForeignKey("r", attr("to"), "e", attr("isbn")))

    def test_set_valued_fk(self):
        b = TreeBuilder("db")
        b.leaf("e", isbn="1")
        b.leaf("e", isbn="2")
        b.leaf("r", to=["1", "2"])
        sfk = SetValuedForeignKey("r", attr("to"), "e", attr("isbn"))
        assert check_constraint(b.tree, sfk)
        b.leaf("r", to=["1", "3"])
        report = check(b.tree, [sfk])
        assert [v.code for v in report] == ["set-foreign-key"]

    def test_empty_set_satisfies_sfk(self):
        b = TreeBuilder("db")
        b.leaf("r", to=[])
        assert check_constraint(
            b.tree, SetValuedForeignKey("r", attr("to"), "e", attr("k")))

    def test_multi_attribute_fk(self):
        b = TreeBuilder("db")
        b.leaf("pub", pname="x", country="US")
        b.leaf("ed", pname="x", country="US")
        fk = ForeignKey("ed", ("pname", "country"),
                        "pub", ("pname", "country"))
        assert check_constraint(b.tree, fk)
        b.leaf("ed", pname="x", country="FR")
        assert not check_constraint(b.tree, fk)

    def test_fk_order_matters(self):
        b = TreeBuilder("db")
        b.leaf("pub", a="1", b="2")
        b.leaf("ed", x="2", y="1")
        assert check_constraint(
            b.tree, ForeignKey("ed", ("x", "y"), "pub", ("b", "a")))
        assert not check_constraint(
            b.tree, ForeignKey("ed", ("x", "y"), "pub", ("a", "b")))

    def test_fk_missing_field_is_violation(self):
        b = TreeBuilder("db")
        b.leaf("ed")
        assert not check_constraint(
            b.tree, UnaryForeignKey("ed", attr("x"), "pub", attr("a")))


class TestInverse:
    def inverse(self):
        return Inverse("dept", attr("dname"), attr("has_staff"),
                       "person", attr("name"), attr("in_dept"))

    def test_symmetric_pair_holds(self):
        tree = people_tree([("p1", "ann", ["sales"])],
                           [("d1", "sales", ["ann"])])
        assert check_constraint(tree, self.inverse())

    def test_forward_missing_backlink(self):
        tree = people_tree([("p1", "ann", [])],
                           [("d1", "sales", ["ann"])])
        assert not check_constraint(tree, self.inverse())

    def test_backward_missing_backlink(self):
        tree = people_tree([("p1", "ann", ["sales"])],
                           [("d1", "sales", [])])
        assert not check_constraint(tree, self.inverse())

    def test_unrelated_elements_ignored(self):
        tree = people_tree([("p1", "ann", []), ("p2", "bob", [])],
                           [("d1", "sales", [])])
        assert check_constraint(tree, self.inverse())


class TestLid:
    def test_id_constraint(self):
        s = id_structure()
        tree = people_tree([("p1", "a", ())], [("d1", "x", ())])
        assert check_constraint(tree, IDConstraint("person"), s)

    def test_id_clash_across_types(self):
        s = id_structure()
        tree = people_tree([("p1", "a", ())], [("p1", "x", ())])
        report = check(tree, [IDConstraint("person")], s)
        assert any(v.code == "id-clash" for v in report)

    def test_id_requires_structure(self):
        tree = people_tree([("p1", "a", ())])
        report = check(tree, [IDConstraint("person")])
        assert not report.ok  # no declared ID attribute known

    def test_id_fk(self):
        s = id_structure()
        b = TreeBuilder("db")
        b.leaf("person", oid="p1", name="a", in_dept=["d1"])
        b.leaf("dept", oid="d1", dname="x", has_staff=["p1"])
        tree = b.tree
        assert check_constraint(
            tree, IDSetValuedForeignKey("person", attr("in_dept"),
                                        "dept"), s)
        assert not check_constraint(
            tree, IDSetValuedForeignKey("dept", attr("has_staff"),
                                        "dept"), s)

    def test_id_single_fk(self):
        s = id_structure()
        s.define_attribute("dept", "manager", kind="IDREF")
        b = TreeBuilder("db")
        b.leaf("person", oid="p1", name="a", in_dept=[])
        b.leaf("dept", oid="d1", dname="x", has_staff=[], manager="p1")
        assert check_constraint(
            b.tree, IDForeignKey("dept", attr("manager"), "person"), s)
        b2 = TreeBuilder("db")
        b2.leaf("dept", oid="d1", dname="x", has_staff=[], manager="p9")
        assert not check_constraint(
            b2.tree, IDForeignKey("dept", attr("manager"), "person"), s)

    def test_id_inverse(self):
        s = id_structure()
        inv = IDInverse("dept", attr("has_staff"),
                        "person", attr("in_dept"))
        good = people_tree([("p1", "a", ["d1"])], [("d1", "x", ["p1"])])
        assert check_constraint(good, inv, s)
        bad = people_tree([("p1", "a", [])], [("d1", "x", ["p1"])])
        assert not check_constraint(bad, inv, s)


class TestNaiveAgreement:
    def test_naive_agrees_on_examples(self):
        s = id_structure()
        trees = [
            people_tree([("p1", "a", ["d1"])], [("d1", "x", ["p1"])]),
            people_tree([("p1", "a", ()), ("p2", "a", ())]),
            people_tree([("p1", "a", ["zz"])], [("d1", "x", [])]),
        ]
        constraints = [
            UnaryKey("person", attr("name")),
            IDConstraint("person"),
            IDSetValuedForeignKey("person", attr("in_dept"), "dept"),
            IDInverse("dept", attr("has_staff"), "person",
                      attr("in_dept")),
        ]
        for tree in trees:
            for c in constraints:
                fast = check(tree, [c], s).ok
                naive = check_naive(tree, [c], s).ok
                assert fast == naive, f"{c} disagrees"


class TestSubelementFields:
    """The §3.4 extension: keys AND foreign keys over unique
    sub-elements, on the data side."""

    def build(self):
        b = TreeBuilder("db")
        with b.element("person"):
            b.leaf("name", "ann")
        with b.element("person"):
            b.leaf("name", "bob")
        with b.element("badge"):
            b.leaf("owner", "ann")
        return b.tree

    def test_subelement_foreign_key_holds(self):
        from repro.constraints import elem
        tree = self.build()
        fk = UnaryForeignKey("badge", elem("owner"),
                             "person", elem("name"))
        assert check_constraint(tree, fk)

    def test_subelement_foreign_key_violated(self):
        from repro.constraints import elem
        tree = self.build()
        extra = tree.create("badge")
        owner = tree.create("owner")
        owner.append("zoe")
        extra.append(owner)
        tree.root.append(extra)
        fk = UnaryForeignKey("badge", elem("owner"),
                             "person", elem("name"))
        assert not check_constraint(tree, fk)

    def test_mixed_attribute_and_subelement_key(self):
        from repro.constraints import Key, elem
        b = TreeBuilder("db")
        with b.element("pub", country="US"):
            b.leaf("pname", "X")
        with b.element("pub", country="UK"):
            b.leaf("pname", "X")
        key = Key("pub", (attr("country"), elem("pname")))
        assert check_constraint(b.tree, key)
        with b.element("pub", country="US"):
            b.leaf("pname", "X")
        assert not check_constraint(b.tree, key)
