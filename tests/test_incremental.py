"""Tests for the incremental revalidation engine.

The load-bearing property: a :class:`DocumentSession` replaying any edit
script reports, at every step, exactly the violations a from-scratch
``check()`` finds on the mutated tree — over random structures and
constraint sets (200+ deterministic scripts plus a hypothesis sweep),
over ``L_id`` document-wide ID semantics, and over §3.4 element-valued
fields.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import check, elem
from repro.constraints.base import Field
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.datamodel.tree import DataTree
from repro.dtd.structure import DTDStructure
from repro.errors import DataModelError, ReproError
from repro.incremental import DocumentSession
from repro.workloads import book_document, book_dtdc
from repro.workloads.generators import (
    random_check_sigma, random_document, random_structure, random_update_ops,
)


def canon(report):
    """Order-free form of a report for equivalence comparison."""
    return sorted((v.code, v.constraint, tuple(sorted(v.vertices)))
                  for v in report)


def assert_agrees(session):
    got = canon(session.revalidate())
    want = canon(check(session.tree, session.constraints, session.structure))
    assert got == want, (f"incremental/batch divergence:\n"
                        f"  incremental only: "
                        f"{[x for x in got if x not in want]}\n"
                        f"  batch only:       "
                        f"{[x for x in want if x not in got]}")


def replay_script(seed: int, n_ops: int = 12,
                  check_every_step: bool = True) -> None:
    structure = random_structure(seed)
    tree = random_document(structure, seed, size_budget=50)
    sigma = random_check_sigma(structure, seed, n_constraints=10)
    session = DocumentSession(tree, sigma, structure)
    assert_agrees(session)
    for op in random_update_ops(tree, structure, seed, n_ops=n_ops):
        session.apply(op)
        if check_every_step:
            assert_agrees(session)
    if not check_every_step:
        assert_agrees(session)


class TestRandomScripts:
    @pytest.mark.parametrize("block", range(8))
    def test_200_scripts_stepwise(self, block):
        """Acceptance: >= 200 random edit scripts, agreement at every
        step (8 blocks x 25 seeds; split for timeout granularity)."""
        for seed in range(block * 25, block * 25 + 25):
            replay_script(seed, n_ops=10)

    def test_batched_flush(self):
        """Many updates folded by ONE revalidate (a larger delta per
        flush) also agree."""
        for seed in range(20):
            structure = random_structure(seed)
            tree = random_document(structure, seed, size_budget=50)
            sigma = random_check_sigma(structure, seed)
            session = DocumentSession(tree, sigma, structure)
            for op in random_update_ops(tree, structure, seed, n_ops=15):
                session.apply(op)
            assert_agrees(session)

    @given(st.integers(0, 2**31), st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_hypothesis_scripts(self, seed, n_ops):
        replay_script(seed, n_ops=n_ops, check_every_step=False)


def school_schema():
    """An L_id schema: persons take courses, courses track enrollment."""
    s = DTDStructure("db")
    s.define_element("db", "(person*, course*)")
    s.define_element("person", "(#PCDATA)?")
    s.define_element("course", "(#PCDATA)?")
    s.define_attribute("person", "pid", kind="ID")
    s.define_attribute("person", "taking", set_valued=True)
    s.define_attribute("course", "cid", kind="ID")
    s.define_attribute("course", "enrolled", set_valued=True)
    s.define_attribute("course", "taught_by")
    s.check()
    sigma = [IDConstraint("person"), IDConstraint("course"),
             IDForeignKey("course", Field("taught_by"), "person"),
             IDSetValuedForeignKey("person", Field("taking"), "course"),
             IDInverse("person", Field("taking"),
                       "course", Field("enrolled"))]
    return s, sigma


class TestLidScripts:
    def test_id_semantics_under_updates(self):
        s, sigma = school_schema()
        for seed in range(15):
            rng = random.Random(seed)
            tree = DataTree("db")
            for _i in range(5):
                p = tree.create_under(tree.root, "person")
                p.set_attribute("pid", f"p{rng.randint(0, 6)}")
                p.set_attribute("taking", {f"c{rng.randint(0, 4)}"
                                           for _k in range(rng.randint(0, 2))})
            for _i in range(4):
                c = tree.create_under(tree.root, "course")
                c.set_attribute("cid", f"c{rng.randint(0, 4)}")
                c.set_attribute("enrolled", {f"p{rng.randint(0, 6)}"
                                             for _k in range(rng.randint(0, 2))})
                c.set_attribute("taught_by", f"p{rng.randint(0, 6)}")
            session = DocumentSession(tree, sigma, s)
            assert_agrees(session)
            for op in random_update_ops(tree, s, seed, n_ops=20):
                session.apply(op)
                assert_agrees(session)


class TestElementFields:
    """§3.4 fields: key values read from unique sub-element text."""

    def schema(self):
        from repro.constraints.lang_lu import UnaryKey

        tree = DataTree("lib")
        for title in ("a", "b"):
            entry = tree.create_under(tree.root, "entry")
            t = tree.create_under(entry, "title")
            t.append(title)
        return tree, [UnaryKey("entry", elem("title"))]

    def test_replace_text_maintains_element_field(self):
        tree, sigma = self.schema()
        session = DocumentSession(tree, sigma)
        assert session.revalidate().ok
        # Collide the two titles via replace_text on the sub-element.
        title_b = tree.ext("entry")[1].first_child_labeled("title")
        session.replace_text(title_b, "a")
        assert_agrees(session)
        assert not session.revalidate().ok
        session.replace_text(title_b, "b2")
        assert_agrees(session)
        assert session.revalidate().ok

    def test_subtree_insert_delete_maintains_element_field(self):
        tree, sigma = self.schema()
        session = DocumentSession(tree, sigma)
        entry = tree.ext("entry")[0]
        # A second <title> makes the field non-single: drops out of the key.
        extra = session.insert_element(entry, "title", text="x")
        assert_agrees(session)
        session.delete_subtree(extra)
        assert_agrees(session)
        assert session.revalidate().ok


class TestSessionOps:
    def test_book_break_and_repair(self):
        dtd = book_dtdc()
        session = DocumentSession.for_document(book_document(), dtd)
        assert session.revalidate().ok
        ref = session.tree.ext("ref")[0]
        old = next(iter(ref.attr("to")))
        session.set_attribute(ref, "to", "no-such-isbn")
        report = session.revalidate()
        assert not report.ok and report.violations[0].vertices == (ref.vid,)
        session.set_attribute(ref, "to", old)
        assert session.revalidate().ok

    def test_pending_and_flush_counters(self):
        session = DocumentSession.for_document(book_document(), book_dtdc())
        assert session.pending_updates == 0
        ref = session.tree.ext("ref")[0]
        session.set_attribute(ref, "to", "x")
        assert session.pending_updates == 1
        session.revalidate()
        assert session.pending_updates == 0 and session.flushes == 1
        session.revalidate()  # nothing pending: no extra flush
        assert session.flushes == 1

    def test_insert_then_delete_nets_nothing(self):
        session = DocumentSession.for_document(book_document(), book_dtdc())
        entry = session.insert_element(
            session.tree.root, "entry",
            attrs={"isbn": "zzz"})
        session.delete_subtree(entry)
        session.revalidate()
        assert_agrees(session)

    def test_delete_then_reinsert_subtree(self):
        session = DocumentSession.for_document(book_document(), book_dtdc())
        ref = session.tree.ext("ref")[0]
        detached = session.delete_subtree(ref)
        assert_agrees(session)
        session.insert_subtree(session.tree.root, detached)
        assert_agrees(session)

    def test_guards(self):
        session = DocumentSession.for_document(book_document(), book_dtdc())
        with pytest.raises(DataModelError):
            session.delete_subtree(session.tree.root)
        other = DataTree("book")
        with pytest.raises(DataModelError):
            session.set_attribute(other.root, "x", "1")
        detached = session.tree.create("entry")
        with pytest.raises(DataModelError):
            session.set_attribute(detached, "isbn", "1")
        with pytest.raises(ReproError):
            session.apply(("no-such-op",))

    def test_rebuild_after_out_of_band_mutation(self):
        session = DocumentSession.for_document(book_document(), book_dtdc())
        ref = session.tree.ext("ref")[0]
        ref.set_attribute("to", "nowhere")   # behind the session's back
        session.rebuild()
        assert_agrees(session)
        assert not session.revalidate().ok

    def test_validate_includes_structure(self):
        session = DocumentSession.for_document(book_document(), book_dtdc())
        assert session.validate().ok
        entry = session.tree.ext("entry")[0]
        session.remove_attribute(entry, "isbn")
        report = session.validate()
        # Both the structural pass (missing declared attribute) and the
        # maintained constraint state must report.
        assert any(v.code == "attribute" for v in report)
        assert_agrees(session)

    def test_validate_without_structure_raises(self):
        session = DocumentSession(book_document(), book_dtdc().constraints)
        with pytest.raises(ReproError):
            session.validate()
