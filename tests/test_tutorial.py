"""Executable backing for docs/TUTORIAL.md: each section's snippets,
as a test, so the tutorial cannot drift from the library."""

from repro import (
    LuEngine, TreeBuilder, Validator, parse_constraint, parse_dtdc,
)
from repro.fo2 import (
    evaluate, figure_one_pair, key_constraint_formula,
    two_pebble_equivalent,
)
from repro.implication import check_derivation
from repro.implication.counterexample import divergence_witness
from repro.paths import (
    PathFunctional, PathImplicationEngine, PathInclusion, parse_path,
    type_of,
)
from repro.workloads import book_dtdc

TUTORIAL_SCHEMA = """
<!ELEMENT book  (entry, author*, ref)>
<!ELEMENT entry (title, publisher)>
<!ATTLIST entry isbn CDATA #REQUIRED>
<!ELEMENT ref   EMPTY>
<!ATTLIST ref   to IDREFS #REQUIRED>
<!ELEMENT author (#PCDATA)> <!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>

%% constraints
entry.isbn -> entry
ref.to subS entry.isbn
"""


def tutorial_tree():
    b = TreeBuilder("book")
    with b.element("entry", isbn="1-55860-622-X"):
        b.leaf("title", "Data on the Web")
        b.leaf("publisher", "Morgan Kaufmann")
    b.leaf("author", "Abiteboul")
    b.leaf("ref", to=["1-55860-622-X"])
    return b.tree


def test_section_1_documents():
    tree = tutorial_tree()
    assert tree.root.child_labels == ("entry", "author", "ref")
    assert tree.ext_values("entry", "isbn") == {"1-55860-622-X"}


def test_section_2_validation():
    validator = Validator(parse_dtdc(TUTORIAL_SCHEMA, root="book"))
    tree = tutorial_tree()
    assert validator.validate(tree).ok
    tree.ext("ref")[0].set_attribute("to", ["nowhere"])
    report = validator.validate(tree)
    assert any(v.code == "set-foreign-key" for v in report)


def test_section_4_implication():
    sigma = [parse_constraint(s) for s in (
        "tau.a -> tau", "tau.b -> tau", "tau.a sub tau.b")]
    engine = LuEngine(sigma)
    phi = parse_constraint("tau.b sub tau.a")
    assert not engine.implies(phi).implied
    finite = engine.finitely_implies(phi)
    assert finite.implied
    assert check_derivation(finite.derivation, sigma) == []
    _sigma, _phi, witness = divergence_witness()
    assert witness.check(_sigma, _phi)
    assert not witness.prefix(5).satisfies_all(_sigma)


def test_section_5_paths():
    dtd = book_dtdc()
    engine = PathImplicationEngine(dtd)
    assert type_of(dtd, "book", "ref.to") == "entry"
    assert engine.implies(PathFunctional(
        "book", parse_path("entry.isbn"), parse_path("author")))
    assert engine.implies(PathInclusion(
        "book", parse_path("ref.to.title"),
        "entry", parse_path("title")))


def test_section_6_expressiveness():
    g, g2 = figure_one_pair()
    assert two_pebble_equivalent(g, g2)
    phi = key_constraint_formula()
    assert evaluate(g, phi)
    assert not evaluate(g2, phi)


COR33_SCHEMA = """
<!ELEMENT db  (tau*)>
<!ELEMENT tau EMPTY>
<!ATTLIST tau a CDATA #REQUIRED b CDATA #REQUIRED>

%% constraints
tau.a -> tau
tau.b -> tau
tau.a sub tau.b
"""


def test_section_7_linting():
    from repro.analysis import RuleRegistry, Severity, analyze
    from repro.analysis.registry import finding

    dtd = parse_dtdc(COR33_SCHEMA, root="db", check=False)
    report = analyze(dtd)
    assert not report.clean
    assert any(d.code == "XIC302" and "Cor 3.3" in d.message
               for d in report)
    assert '"diagnostics"' in report.to_json()

    registry = RuleRegistry()

    @registry.rule("XIC901", "no-single-letter-types", Severity.HINT,
                   "element type names should be descriptive")
    def check_names(ctx):
        for tau in sorted(ctx.structure.element_types):
            if len(tau) == 1:
                yield finding(
                    f"element type {tau!r} has a one-letter name",
                    element=tau)

    terse = parse_dtdc("<!ELEMENT d (x*)>\n<!ELEMENT x EMPTY>\n",
                       root="d", check=False)
    custom = analyze(terse, registry=registry)
    assert custom.clean  # hints are advisory
    assert [d.element for d in custom] == ["d", "x"]
    assert all(d.code == "XIC901" and d.severity is Severity.HINT
               for d in custom)


def test_section_8_sessions():
    from repro import Validator, book_document

    validator = Validator(book_dtdc())
    doc = book_document()
    assert validator.validate(doc).ok
    assert validator.check(doc).ok

    session = validator.session(doc)
    assert session.revalidate().ok
    ref = doc.ext("ref")[0]
    session.set_attribute(ref, "to", "no-such-isbn")
    report = session.revalidate()
    assert any(v.code == "set-foreign-key" for v in report)

    entry = session.insert_element(doc.root, "entry",
                                   attrs={"isbn": "0-201-53771-0"})
    session.delete_subtree(entry)       # net no-op
    session.set_attribute(ref, "to", "1-55860-622-X")
    assert session.revalidate().ok


def test_section_9_corpus(tmp_path):
    from repro import Validator
    from repro.workloads import random_corpus

    dtd, docs = random_corpus(n_docs=20, invalid_fraction=0.2, seed=0)
    validator = Validator(dtd)
    report = validator.check_corpus(docs, jobs=2, cache=str(tmp_path))
    assert report.n_valid == 16 and report.n_invalid == 4
    assert set(report.violations_by_code()) <= {"foreign-key", "key"}

    warm = validator.check_corpus(docs, jobs=2, cache=str(tmp_path))
    assert warm.n_cached == 20
    assert warm.verdicts_json() == report.verdicts_json()


def test_section_10_observability():
    from repro import Observability, Validator, book_document

    obs = Observability()
    validator = Validator(book_dtdc(), obs=obs)
    validator.validate(book_document())

    roots = obs.tracer.roots
    assert roots[0].name == "validate"
    assert [c.name for c in roots[0].children] == [
        "validate.structure", "check"]
    check = roots[0].children[1]
    assert [c.name for c in check.children][0] == "index.build"
    assert sum(c.name == "evaluate" for c in check.children) == 3

    assert obs.metrics.value(
        "evaluator_vertices_visited",
        {"constraint": "section.sid -> section"}) == 3
    assert obs.metrics.total("evaluator_violations") == 0
