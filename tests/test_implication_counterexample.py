"""Tests for counterexample construction and model search."""

import pytest

from repro.constraints import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey, attr, check,
)
from repro.implication.counterexample import (
    AffineAttribute, InfiniteWitness, divergence_witness,
    finite_counterexample,
)
from repro.implication.lu import LuEngine
from repro.implication.models import AbstractModel, materialize
from repro.implication.search import (
    exhaustive_counterexample, random_counterexample,
)


def uk(t, f):
    return UnaryKey(t, attr(f))


def ufk(t, f, t2, f2):
    return UnaryForeignKey(t, attr(f), t2, attr(f2))


def sfk(t, f, t2, f2):
    return SetValuedForeignKey(t, attr(f), t2, attr(f2))


class TestAbstractModel:
    def test_satisfaction_matches_definitions(self):
        m = AbstractModel()
        m.add("t", k="1", f="a")
        m.add("t", k="2", f="a")
        assert m.satisfies(uk("t", "k"))
        assert not m.satisfies(uk("t", "f"))

    def test_fk_satisfaction(self):
        m = AbstractModel()
        m.add("a", x="1")
        m.add("b", k="1")
        assert m.satisfies(ufk("a", "x", "b", "k"))
        m.add("a", x="9")
        assert not m.satisfies(ufk("a", "x", "b", "k"))

    def test_inverse_satisfaction(self):
        m = AbstractModel()
        m.set_valued |= {("d", attr("staff")), ("p", attr("depts"))}
        m.add("d", dk="d1", staff=["p1"])
        m.add("p", pk="p1", depts=["d1"])
        inv = Inverse("d", attr("dk"), attr("staff"),
                      "p", attr("pk"), attr("depts"))
        assert m.satisfies(inv)
        m.add("p", pk="p2", depts=["d1"])  # d1 not linking back to p2
        assert not m.satisfies(inv)

    def test_materialize_roundtrip(self):
        m = AbstractModel()
        m.set_valued.add(("a", attr("s")))
        m.add("a", k="1", s=["x", "y"])
        m.add("b", k="x")
        dtd, tree = materialize(m)
        # The document checker agrees with the abstract evaluation.
        constraints = [uk("a", "k"), sfk("a", "s", "b", "k")]
        doc_ok = check(tree, constraints, dtd.structure).ok
        abs_ok = m.satisfies_all(constraints)
        assert doc_ok == abs_ok == False  # noqa: E712  ('y' dangles)


class TestConstructiveBuilder:
    def cases(self):
        chain = [uk("t2", "k"), uk("t3", "k"),
                 ufk("t1", "f", "t2", "k"), ufk("t2", "k", "t3", "k")]
        inv = Inverse("d", attr("dk"), attr("staff"),
                      "p", attr("pk"), attr("depts"))
        inv_sigma = [uk("d", "dk"), uk("p", "pk"), inv]
        return [
            (chain, uk("t1", "f")),                       # key violation
            (chain, ufk("t3", "k", "t2", "k")),           # reversed FK
            (chain, ufk("t3", "k", "t1", "f")),           # FK to non-key
            (inv_sigma, sfk("d", "staff", "p", "depts")), # sv target
            (inv_sigma, uk("p", "depts")),                # set-valued key
            ([], uk("x", "a")),                           # empty Sigma
        ]

    def test_builder_produces_verified_witnesses(self):
        built = 0
        for sigma, phi in self.cases():
            engine = LuEngine(sigma)
            assert not engine.finitely_implies(phi), str(phi)
            model = finite_counterexample(sigma, phi)
            if model is not None:
                assert model.satisfies_all(sigma)
                assert not model.satisfies(phi)
                built += 1
        assert built >= 4  # most cases are inside the supported fragment

    def test_builder_refuses_implied(self):
        sigma = [uk("b", "k"), ufk("a", "f", "b", "k")]
        assert finite_counterexample(sigma, uk("b", "k")) is None
        assert finite_counterexample(sigma,
                                     ufk("a", "f", "b", "k")) is None

    def test_builder_on_divergence_finite_consequence(self):
        """Σ ⊨_f φ: no finite model can witness non-implication."""
        sigma, phi, _w = divergence_witness()
        assert finite_counterexample(sigma, phi) is None


class TestSearchers:
    def test_exhaustive_agrees_with_decider_tiny(self):
        """E14 ground truth: on tiny bounds, exhaustive search finds a
        model exactly when the finite decider says 'not implied' (for
        instances whose witnesses fit the bounds)."""
        cases = [
            ([uk("b", "k"), ufk("a", "f", "b", "k")],
             ufk("b", "k", "a", "f"), True),
            ([uk("b", "k"), ufk("a", "f", "b", "k")],
             ufk("a", "f", "b", "k"), False),
            ([uk("t", "a"), uk("t", "b"), ufk("t", "a", "t", "b")],
             ufk("t", "b", "t", "a"), False),  # finitely implied!
        ]
        for sigma, phi, expect_model in cases:
            model = exhaustive_counterexample(sigma, phi,
                                              max_elements=2,
                                              domain_size=2)
            assert (model is not None) == expect_model, str(phi)
            if model is not None:
                assert model.satisfies_all(sigma)
                assert not model.satisfies(phi)

    def test_random_search_seeded(self):
        sigma = [uk("b", "k"), ufk("a", "f", "b", "k")]
        phi = uk("a", "f")
        m1 = random_counterexample(sigma, phi, seed=7)
        m2 = random_counterexample(sigma, phi, seed=7)
        assert m1 is not None
        assert m1.describe() == m2.describe()


class TestInfiniteWitness:
    def test_divergence_witness_checks(self):
        sigma, phi, witness = divergence_witness()
        assert witness.check(sigma, phi)

    def test_prefix_shows_boundary_violation(self):
        sigma, _phi, witness = divergence_witness()
        prefix = witness.prefix(5)
        # The truncation breaks exactly the inclusion at the boundary:
        # a-values include n5, which is no b-value of the prefix.
        fk = sigma[2]
        assert not prefix.satisfies(fk)
        # ... while both keys still hold on the prefix.
        assert prefix.satisfies(sigma[0])
        assert prefix.satisfies(sigma[1])

    def test_affine_semantics(self):
        w = InfiniteWitness("t", (AffineAttribute(attr("a"), 2),
                                  AffineAttribute(attr("b"), 0)))
        assert w.satisfies(ufk("t", "a", "t", "b"))
        assert not w.satisfies(ufk("t", "b", "t", "a"))
        with pytest.raises(TypeError):
            w.satisfies(sfk("t", "s", "t", "b"))


class TestExhaustiveWithSetValued:
    """E14b: the decider/search cross-validation extended to Σ with
    set-valued foreign keys (tiny bounds)."""

    def test_sfk_instances(self):
        cases = [
            # (sigma, phi, expect_counterexample_within_bounds)
            ([uk("b", "k"), sfk("a", "s", "b", "k")],
             sfk("a", "s", "b", "k"), False),          # stated
            ([uk("b", "k"), uk("c", "k"), sfk("a", "s", "b", "k"),
              ufk("b", "k", "c", "k")],
             sfk("a", "s", "c", "k"), False),          # USFK-trans
            ([uk("b", "k"), sfk("a", "s", "b", "k")],
             sfk("a", "s2", "b", "k"), True),          # unrelated field
            ([uk("b", "k"), uk("c", "k"), sfk("a", "s", "b", "k")],
             sfk("a", "s", "c", "k"), True),           # wrong target
        ]
        for sigma, phi, expect_model in cases:
            engine = LuEngine(sigma)
            decided = bool(engine.finitely_implies(phi))
            model = exhaustive_counterexample(sigma, phi,
                                              max_elements=2,
                                              domain_size=2)
            assert (model is not None) == expect_model, str(phi)
            # Exact agreement on this corpus: implied iff no model.
            assert decided == (model is None), str(phi)
            if model is not None:
                assert model.satisfies_all(sigma)
                assert not model.satisfies(phi)
