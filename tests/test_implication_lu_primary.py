"""Tests for the primary-key restriction on L_u (§3.2, Thm 3.4,
Cor 3.5): the restriction check, and the coincidence of the two
implication problems."""

import pytest

from repro.constraints import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey, attr,
)
from repro.errors import PrimaryKeyRestrictionError
from repro.implication.lu import LuEngine
from repro.implication.lu_primary import (
    LuPrimaryEngine, check_primary_restriction,
)
from repro.workloads import random_lu_implication_instance


def uk(t, f):
    return UnaryKey(t, attr(f))


def ufk(t, f, t2, f2):
    return UnaryForeignKey(t, attr(f), t2, attr(f2))


class TestRestrictionCheck:
    def test_accepts_single_key_per_type(self):
        check_primary_restriction(
            [uk("a", "k"), uk("b", "k"), ufk("a", "f", "b", "k")])

    def test_rejects_two_keys(self):
        with pytest.raises(PrimaryKeyRestrictionError):
            check_primary_restriction([uk("a", "k1"), uk("a", "k2")])

    def test_rejects_two_reference_attributes(self):
        with pytest.raises(PrimaryKeyRestrictionError):
            check_primary_restriction(
                [ufk("x", "f", "a", "k1"), ufk("y", "g", "a", "k2")])

    def test_counts_fk_targets_as_keys(self):
        with pytest.raises(PrimaryKeyRestrictionError):
            check_primary_restriction(
                [uk("a", "k1"), ufk("x", "f", "a", "k2")])

    def test_counts_inverse_designated_keys(self):
        inv = Inverse("a", attr("k1"), attr("s"),
                      "b", attr("k"), attr("t"))
        with pytest.raises(PrimaryKeyRestrictionError):
            check_primary_restriction([uk("a", "k2"), inv])


class TestEngine:
    def test_query_checked_too(self):
        engine = LuPrimaryEngine([uk("a", "k")])
        with pytest.raises(PrimaryKeyRestrictionError):
            engine.implies(uk("a", "other"))

    def test_divergence_instance_rejected(self):
        from repro.implication.counterexample import divergence_witness
        sigma, _phi, _w = divergence_witness()
        with pytest.raises(PrimaryKeyRestrictionError):
            LuPrimaryEngine(sigma)

    def test_basic_queries(self):
        sigma = [uk("b", "k"), uk("c", "k"),
                 ufk("a", "f", "b", "k"), ufk("b", "k", "c", "k")]
        engine = LuPrimaryEngine(sigma)
        assert engine.implies(ufk("a", "f", "c", "k"))
        assert engine.finitely_implies(ufk("a", "f", "c", "k"))
        assert not engine.implies(ufk("c", "k", "b", "k"))

    def test_problems_coincide_thm_3_4(self):
        """Theorem 3.4 empirically: on every primary-restricted random
        instance, the cycle-rule finite decider agrees with I_u."""
        checked = 0
        for seed in range(150):
            sigma, phi = random_lu_implication_instance(
                seed, primary=True, n_types=4, n_constraints=7)
            try:
                check_primary_restriction(sigma + [phi])
            except PrimaryKeyRestrictionError:
                continue
            engine = LuEngine(sigma)
            assert bool(engine.implies(phi)) == \
                bool(engine.finitely_implies(phi)), f"seed {seed}"
            checked += 1
        assert checked >= 50  # the generator mostly respects the restriction

    def test_cycles_still_coincide_under_restriction(self):
        """A cyclic chain with one key per type: the cardinality cycle
        exists but every reversal is already derivable (or nothing new
        is derivable) — Thm 3.4's content."""
        sigma = [uk("a", "k"), uk("b", "k"),
                 ufk("a", "k", "b", "k"), ufk("b", "k", "a", "k")]
        engine = LuPrimaryEngine(sigma)
        for phi in (ufk("a", "k", "b", "k"), ufk("b", "k", "a", "k"),
                    uk("a", "k"), uk("b", "k")):
            assert engine.implies(phi)
            assert engine.finitely_implies(phi)
