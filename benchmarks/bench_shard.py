"""E24: sharded multi-node corpus validation and the incremental watch.

Paper artifact: Definition 2.4 decides validity one document at a time,
so per-document work distributes freely — but the ``L_id`` classes of
Section 4 quantify over *every* document in scope, so a shard cannot
answer them alone.  The experiment exercises both halves of that split:

- **byte-identity** — a :class:`~repro.shard.ShardedCorpusValidator`
  over real ``repro-xic serve --stdio`` subprocess nodes produces
  ``verdicts_json()`` byte-identical to a serial
  ``CorpusValidator(jobs=1)`` pass, while the cross-document ``L_id``
  findings fold at the coordinator;
- **incremental watch** — after a cold full pass, editing one file of a
  50-document corpus revalidates exactly that one document (asserted on
  the ``watch_files_revalidated`` counter) and the wake-up completes
  >= 10x faster than the cold pass (asserted, including in ``--smoke``).

Run styles::

    python -m pytest benchmarks/bench_shard.py -q   # shape assertions
    python benchmarks/bench_shard.py --smoke        # CI one-shot
    python benchmarks/bench_shard.py                # timing report
"""

import os
import tempfile
import time

from repro.corpus import CorpusValidator, ResultCache
from repro.obs import Observability
from repro.shard import (
    LocalNode,
    ShardedCorpusValidator,
    SubprocessNode,
    WatchSession,
)
from repro.workloads.generators import federated_corpus, random_corpus
from repro.xmlio import serialize

#: Watch-corpus size: big enough that one revalidation out of N is a
#: visibly sublinear wake-up, small enough for a CI smoke step.
WATCH_DOCS = 50


def _corpus_texts(n_docs: int, seed: int = 0):
    dtd, docs = random_corpus(n_docs=n_docs, invalid_fraction=0.2,
                              seed=seed)
    return dtd, [(f"doc-{i:04d}", serialize(doc))
                 for i, doc in enumerate(docs)]


def _corpus_files(directory, n_docs: int, seed: int = 0):
    """The watch corpus on disk: one ``doc-NNNN.xml`` per document."""
    dtd, texts = _corpus_texts(n_docs, seed=seed)
    for doc_id, text in texts:
        with open(os.path.join(directory, f"{doc_id}.xml"), "w",
                  encoding="utf-8") as fh:
            fh.write(text)
    return dtd, texts


def _timed(f):
    t0 = time.perf_counter()
    result = f()
    return result, time.perf_counter() - t0


def _revalidated(obs) -> int:
    return sum(m["value"] for m in obs.metrics.to_dicts()
               if m["name"] == "watch_files_revalidated")


# -- byte-identity over real subprocess nodes ------------------------------


def test_e24_subprocess_parity():
    """Sharding across ``serve --stdio`` worker processes is
    unobservable in the per-document verdicts."""
    dtd, texts = _corpus_texts(n_docs=24)
    serial = CorpusValidator(dtd, jobs=1).validate(texts)
    with ShardedCorpusValidator(dtd, shards=2,
                                node_factory=SubprocessNode) as sv:
        sharded = sv.validate(texts)
    assert sharded.verdicts_json() == serial.verdicts_json()
    assert serial.n_invalid > 0  # the corpus must exercise violations
    assert sharded.corpus_violations == []  # Σ here is all shard-local


def test_e24_merge_findings_cross_subprocess_shards():
    """Cross-document duplicate IDs split across worker processes still
    surface — once — in the coordinator's merge fold."""
    dtd, trees = federated_corpus(n_docs=6, cross_dup_fraction=0.5,
                                  seed=3)
    docs = [(f"doc-{i}", serialize(t)) for i, t in enumerate(trees)]
    assert CorpusValidator(dtd, jobs=1).validate(docs).ok
    with ShardedCorpusValidator(dtd, shards=3,
                                node_factory=SubprocessNode) as sv:
        report = sv.validate(docs)
    assert report.ok and not report.corpus_ok
    assert [v.code for v in report.corpus_violations].count("id-clash") \
        == 1


# -- the incremental watch -------------------------------------------------


def test_e24_watch_revalidates_exactly_one_file(tmp_path):
    """Acceptance: touching one file of a 50-document corpus costs one
    revalidation on the next wake-up, not fifty."""
    dtd, texts = _corpus_files(tmp_path, WATCH_DOCS)
    obs = Observability()
    with ShardedCorpusValidator(dtd, shards=2, cache=ResultCache(),
                                obs=obs) as sv:
        session = WatchSession(sv, [str(tmp_path)])
        cold = session.poll()
        assert cold is not None and len(cold.changed) == WATCH_DOCS
        assert session.poll() is None  # steady state: stat-only
        target = tmp_path / "doc-0000.xml"
        target.write_text(texts[1][1], encoding="utf-8")
        delta = session.poll()
        assert delta is not None
        assert delta.changed == [str(target)]
        assert len(delta.delta_verdicts) == 1
    assert _revalidated(obs) == WATCH_DOCS + 1


def test_e24_watch_incremental_speedup(tmp_path):
    """Acceptance: the one-file wake-up is >= 10x faster than the cold
    full pass over the same 50-document corpus."""
    dtd, texts = _corpus_files(tmp_path, WATCH_DOCS)
    with ShardedCorpusValidator(dtd, shards=2, cache=ResultCache(),
                                node_factory=LocalNode) as sv:
        session = WatchSession(sv, [str(tmp_path)])
        _cold_delta, cold = _timed(session.poll)
        (tmp_path / "doc-0000.xml").write_text(texts[1][1],
                                               encoding="utf-8")
        delta, warm = _timed(session.poll)
    assert delta is not None and len(delta.changed) == 1
    assert cold / max(warm, 1e-9) >= 10.0, (
        f"incremental wake-up only {cold / max(warm, 1e-9):.1f}x faster "
        f"({warm * 1e3:.1f}ms vs {cold * 1e3:.1f}ms)")


# -- standalone runner (CI smoke + timing report) --------------------------


def _report(n_docs: int, smoke: bool) -> int:
    dtd, texts = _corpus_texts(n_docs=n_docs)
    serial_rep, serial = _timed(
        lambda: CorpusValidator(dtd, jobs=1).validate(texts))
    with ShardedCorpusValidator(dtd, shards=2,
                                node_factory=SubprocessNode) as sv:
        sharded_rep, sharded = _timed(lambda: sv.validate(texts))
    identical = sharded_rep.verdicts_json() == serial_rep.verdicts_json()

    with tempfile.TemporaryDirectory() as watch_dir:
        wdtd, wtexts = _corpus_files(watch_dir, WATCH_DOCS)
        obs = Observability()
        with ShardedCorpusValidator(wdtd, shards=2, cache=ResultCache(),
                                    obs=obs,
                                    node_factory=SubprocessNode) as wv:
            session = WatchSession(wv, [watch_dir])
            _cold_delta, cold = _timed(session.poll)
            edited = os.path.join(watch_dir, "doc-0000.xml")
            with open(edited, "w", encoding="utf-8") as fh:
                fh.write(wtexts[1][1])
            delta, warm = _timed(session.poll)
    one_file = delta is not None and delta.changed == [edited] \
        and _revalidated(obs) == WATCH_DOCS + 1
    speedup = cold / max(warm, 1e-9)

    print(f"E24 corpus: {n_docs} docs, {serial_rep.n_invalid} invalid, "
          f"{os.cpu_count()} core(s), 2 subprocess shards")
    for name, seconds in [("serial jobs=1", serial),
                          ("sharded n=2", sharded),
                          (f"watch cold ({WATCH_DOCS} docs)", cold),
                          ("watch edit 1", warm)]:
        print(f"  {name:<22} {seconds * 1e3:8.1f} ms")
    print(f"  verdicts byte-identical: {identical}")
    print(f"  watch revalidated 1/{WATCH_DOCS}: {one_file}")
    print(f"  watch incremental speedup {speedup:8.1f} x (>= 10 required)")

    ok = identical and one_file and speedup >= 10.0
    print("E24 smoke OK" if ok else "E24 FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    import argparse

    cli = argparse.ArgumentParser(
        description="E24: sharded corpus validation + watch benchmark")
    cli.add_argument("--smoke", action="store_true",
                     help="CI mode: byte-identity over subprocess "
                     "nodes, one-file watch revalidation, and the "
                     ">= 10x incremental assertion on a smaller corpus")
    cli.add_argument("--docs", type=int, default=200,
                     help="parity corpus size (default: 200)")
    args = cli.parse_args()
    raise SystemExit(_report(24 if args.smoke else args.docs,
                             args.smoke))
