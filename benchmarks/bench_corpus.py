"""E18: parallel corpus validation and the content-addressed cache.

Paper artifact: Definition 2.4 decides validity one document at a time,
so a corpus is embarrassingly parallel — the only coordination is
chunking, and the verdicts cannot depend on the schedule.  The
experiment checks exactly that, plus the two payoffs:

- **equivalence** — ``jobs=1`` and ``jobs=4`` produce byte-identical
  ``verdicts_json()`` on the same corpus (cold and warm cache alike);
- **warm cache** — re-validating an unchanged corpus through a
  :class:`~repro.corpus.ResultCache` costs one hash per document and
  must run >= 10x faster than the cold pass;
- **parallel speedup** — on a machine with >= 4 cores, ``jobs=4`` must
  beat ``jobs=1`` by >= 2x on a 200-document corpus (skipped on
  smaller machines: the assertion would measure pool overhead, not the
  paper's point).

Run styles::

    python -m pytest benchmarks/bench_corpus.py -q   # shape assertions
    python benchmarks/bench_corpus.py --smoke        # CI one-shot
    python benchmarks/bench_corpus.py                # timing report
"""

import os
import sys
import time

import pytest

if __package__:
    from benchmarks.conftest import print_series
else:  # `python benchmarks/bench_corpus.py` — repo root not on sys.path
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from benchmarks.conftest import print_series
from repro.corpus import CorpusValidator, ResultCache
from repro.workloads.generators import random_corpus
from repro.xmlio import serialize

#: Gate for the parallel-speedup assertion: below this, a pool cannot
#: demonstrate the paper's point and only measures fork overhead.
MIN_CORES = 4


def _corpus_texts(n_docs: int = 200, seed: int = 0):
    """The E18 corpus as (doc_id, xml_text) pairs — serialization cost
    is paid here, once, so the timings below measure validation only."""
    dtd, docs = random_corpus(n_docs=n_docs, invalid_fraction=0.2,
                              seed=seed)
    return dtd, [(f"doc-{i:04d}", serialize(doc))
                 for i, doc in enumerate(docs)]


def _timed(f):
    t0 = time.perf_counter()
    result = f()
    return result, time.perf_counter() - t0


# -- equivalence -----------------------------------------------------------


def test_e18_jobs_equivalence():
    """jobs=1 and jobs=4 verdicts are byte-identical, cold and warm."""
    dtd, texts = _corpus_texts(n_docs=48)
    serial = CorpusValidator(dtd, jobs=1).validate(texts)
    pooled = CorpusValidator(dtd, jobs=4).validate(texts)
    assert serial.verdicts_json() == pooled.verdicts_json()
    assert serial.n_invalid > 0  # the corpus must exercise violations

    cache = ResultCache()
    CorpusValidator(dtd, jobs=1, cache=cache).validate(texts)
    warm = CorpusValidator(dtd, jobs=1, cache=cache).validate(texts)
    assert warm.n_cached == len(texts)
    assert warm.verdicts_json() == serial.verdicts_json()


def test_e18_disk_cache_round_trip(tmp_path):
    """A directory-backed cache survives a fresh validator (the
    persistent re-run story of ``repro-xic check-corpus --cache``)."""
    dtd, texts = _corpus_texts(n_docs=16)
    cold = CorpusValidator(dtd, cache=str(tmp_path)).validate(texts)
    warm = CorpusValidator(dtd, cache=str(tmp_path)).validate(texts)
    assert cold.n_cached == 0
    assert warm.n_cached == len(texts)
    assert warm.verdicts_json() == cold.verdicts_json()


# -- the payoffs -----------------------------------------------------------


def test_e18_warm_cache_speedup():
    """Acceptance: a warm-cache pass over an unchanged 200-doc corpus
    is >= 10x faster than the cold validation pass."""
    dtd, texts = _corpus_texts(n_docs=200)
    cache = ResultCache()
    validator = CorpusValidator(dtd, cache=cache)
    cold_report, cold = _timed(lambda: validator.validate(texts))
    warm_report, warm = _timed(lambda: validator.validate(texts))
    assert warm_report.n_cached == len(texts)
    assert warm_report.verdicts_json() == cold_report.verdicts_json()
    print_series("E18: cold vs warm cache, 200 docs",
                 [(1, cold), (2, warm)], header="(1=cold, 2=warm)")
    assert cold / max(warm, 1e-9) >= 10.0, (
        f"warm cache only {cold / max(warm, 1e-9):.1f}x faster "
        f"({warm * 1e3:.1f}ms vs {cold * 1e3:.1f}ms)")


@pytest.mark.skipif((os.cpu_count() or 1) < MIN_CORES,
                    reason=f"needs >= {MIN_CORES} cores for a "
                    "meaningful parallel measurement")
def test_e18_parallel_speedup():
    """Acceptance (>= 4 cores): jobs=4 beats jobs=1 by >= 2x on a
    200-document corpus."""
    dtd, texts = _corpus_texts(n_docs=200)
    serial_rep, serial = _timed(
        lambda: CorpusValidator(dtd, jobs=1).validate(texts))
    pooled_rep, pooled = _timed(
        lambda: CorpusValidator(dtd, jobs=4).validate(texts))
    assert serial_rep.verdicts_json() == pooled_rep.verdicts_json()
    print_series("E18: jobs=1 vs jobs=4, 200 docs",
                 [(1, serial), (4, pooled)], header="jobs")
    assert serial / max(pooled, 1e-9) >= 2.0, (
        f"jobs=4 only {serial / max(pooled, 1e-9):.1f}x faster "
        f"({pooled * 1e3:.0f}ms vs {serial * 1e3:.0f}ms)")


# -- standalone runner (CI smoke + timing report) --------------------------


def _report(n_docs: int, smoke: bool) -> int:
    dtd, texts = _corpus_texts(n_docs=n_docs)
    cache = ResultCache()
    validator = CorpusValidator(dtd, cache=cache)
    cold_rep, cold = _timed(lambda: validator.validate(texts))
    warm_rep, warm = _timed(lambda: validator.validate(texts))
    rows = [("cold jobs=1", cold), ("warm jobs=1", warm)]

    pooled_rep = pooled = None
    cores = os.cpu_count() or 1
    if cores >= MIN_CORES:
        pooled_rep, pooled = _timed(
            lambda: CorpusValidator(dtd, jobs=4).validate(texts))
        rows.append(("cold jobs=4", pooled))

    print(f"E18 corpus: {n_docs} docs, {cold_rep.n_invalid} invalid, "
          f"{cores} core(s)")
    for name, seconds in rows:
        print(f"  {name:<12} {seconds * 1e3:8.1f} ms")
    print(f"  warm speedup {cold / max(warm, 1e-9):8.1f} x")
    if pooled is not None:
        print(f"  pool speedup {cold / max(pooled, 1e-9):8.1f} x")
    else:
        print(f"  pool speedup  SKIPPED: {cores} core(s) < MIN_CORES="
              f"{MIN_CORES} — a pool would measure fork overhead, not "
              "parallelism")

    ok = warm_rep.n_cached == n_docs \
        and warm_rep.verdicts_json() == cold_rep.verdicts_json()
    if pooled_rep is not None:
        ok = ok and pooled_rep.verdicts_json() == cold_rep.verdicts_json()
    if not smoke:
        ok = ok and cold / max(warm, 1e-9) >= 10.0
    print("E18 smoke OK" if ok else "E18 FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    import argparse

    cli = argparse.ArgumentParser(
        description="E18: parallel corpus validation benchmark")
    cli.add_argument("--smoke", action="store_true",
                     help="CI mode: correctness checks only (cache "
                     "equivalence, jobs equivalence), no timing "
                     "thresholds")
    cli.add_argument("--docs", type=int, default=200,
                     help="corpus size (default: 200)")
    raise SystemExit(_report(cli.parse_args().docs,
                             cli.parse_args().smoke))
