"""E4: L_id implication is linear time (Proposition 3.1).

Workload: chains of ID constraints, IDREF foreign keys and inverses of
growing length; measure engine construction (the I_id closure) plus a
derivable query.  Expected shape: ~linear in |Σ|.
"""

import pytest

from benchmarks.conftest import (
    assert_subquadratic, measure_series, print_series,
)
from repro.implication import LidEngine
from repro.workloads.generators import scaled_lid_chain


@pytest.mark.benchmark(group="E4-lid")
@pytest.mark.parametrize("n", [10, 100, 1000])
def test_lid_closure_and_query(benchmark, n):
    sigma, phi = scaled_lid_chain(n)

    def work():
        engine = LidEngine(sigma)
        return engine.implies(phi)

    assert benchmark(work)


def test_e4_linear_shape():
    rows = measure_series(
        sizes=[100, 400, 1600],
        setup=scaled_lid_chain,
        run=lambda inst: LidEngine(inst[0]).implies(inst[1]))
    print_series("E4: L_id closure+query vs |Sigma| (chain length)",
                 rows)
    assert_subquadratic(rows)


def test_e4_query_after_closure_is_constant_time():
    """Once the closure is built, each query is a dictionary lookup."""
    import time
    sigma, phi = scaled_lid_chain(2000)
    engine = LidEngine(sigma)
    t0 = time.perf_counter()
    for _i in range(1000):
        engine.implies(phi)
    per_query = (time.perf_counter() - t0) / 1000
    print(f"\nE4: per-query time after closure: {per_query:.2e}s")
    assert per_query < 1e-3
