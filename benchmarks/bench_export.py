"""E2 + E3: semantics-preserving exports from legacy databases.

- E2 (person/dept, §2.4 D_o): OODB -> XML with L_id constraints; we
  measure export + full validation at growing store sizes and assert
  that consistency carries over exactly.
- E3 (publisher/editor, §1): relational -> XML with L constraints over
  sub-elements; same shape.
"""

import pytest

from benchmarks.conftest import (
    assert_subquadratic, measure_series, print_series,
)
from repro.dtd import validate
from repro.oodb import export_store
from repro.relational import export_database
from repro.workloads import (
    person_dept_store, publisher_constraints, publisher_instance,
)


@pytest.mark.benchmark(group="E2-oodb-export")
@pytest.mark.parametrize("n_depts", [5, 20, 80])
def test_oodb_export_and_validate(benchmark, n_depts):
    store = person_dept_store(n_depts=n_depts, people_per_dept=5)

    def work():
        dtd, tree = export_store(store)
        return validate(tree, dtd)

    report = benchmark(work)
    assert report.ok


@pytest.mark.benchmark(group="E3-relational-export")
@pytest.mark.parametrize("n_publishers", [10, 50, 200])
def test_relational_export_and_validate(benchmark, n_publishers):
    instance = publisher_instance(n_publishers=n_publishers,
                                  editors_per_publisher=3)
    constraints = publisher_constraints()

    def work():
        dtd, tree = export_database(instance, constraints)
        return validate(tree, dtd)

    report = benchmark(work)
    assert report.ok


def test_e2_shape():
    rows = measure_series(
        [5, 20, 80],
        lambda n: person_dept_store(n_depts=n, people_per_dept=5),
        lambda store: validate(*reversed(export_store(store))))
    sized = [(n * 6, t) for n, t in rows]
    print_series("E2: OODB export+validate vs objects", sized,
                 header="objects")
    assert_subquadratic(sized, factor=5.0)


def test_e3_shape():
    constraints = publisher_constraints()
    rows = measure_series(
        [10, 40, 160],
        lambda n: publisher_instance(n_publishers=n,
                                     editors_per_publisher=3),
        lambda inst: validate(*reversed(
            export_database(inst, constraints))))
    sized = [(n * 4, t) for n, t in rows]
    print_series("E3: relational export+validate vs tuples", sized,
                 header="tuples")
    assert_subquadratic(sized, factor=5.0)
