"""E8: multi-attribute primary keys/foreign keys (Theorem 3.8).

Workload: chains of width-w foreign keys with rotating alignments.
Expected shape: polynomial in chain length at fixed width; the paper's
closing PSPACE remark shows up as growth in the key width w — the
number of distinct alignments reachable per type pair is bounded by w!,
and the stress series below makes that factorial corner visible.
"""

import pytest

from benchmarks.conftest import measure_series, print_series
from repro.implication.l_primary import LPrimaryEngine
from repro.workloads.generators import scaled_primary_chain


@pytest.mark.benchmark(group="E8-l-primary")
@pytest.mark.parametrize("n", [5, 20, 60])
def test_primary_chain(benchmark, n):
    sigma, phi = scaled_primary_chain(n, width=3)
    assert benchmark(lambda: LPrimaryEngine(sigma).implies(phi))


@pytest.mark.benchmark(group="E8-width")
@pytest.mark.parametrize("width", [2, 4, 6])
def test_primary_width_stress(benchmark, width):
    sigma, phi = scaled_primary_chain(8, width=width)
    assert benchmark(lambda: LPrimaryEngine(sigma).implies(phi))


def test_e8_chain_growth():
    rows = measure_series(
        [10, 30, 90],
        lambda n: scaled_primary_chain(n, width=3),
        lambda inst: LPrimaryEngine(inst[0]).implies(inst[1]))
    print_series("E8: I_p closure vs chain length (width 3)", rows)
    # Polynomial, not exponential: 9x the size within ~200x the time.
    (n0, t0), (n1, t1) = rows[0], rows[-1]
    assert t1 / max(t0, 1e-9) < 200 * (n1 / n0)


def test_e8_width_growth_is_the_hard_direction():
    """Fixing the chain, growing the width costs much more than fixing
    the width and growing the chain — the PSPACE remark, visualized."""
    width_rows = measure_series(
        [2, 3, 4, 5],
        lambda w: scaled_primary_chain(8, width=w),
        lambda inst: LPrimaryEngine(inst[0]).implies(inst[1]))
    print_series("E8: I_p closure vs key width (chain 8)", width_rows,
                 header="width")
    times = [t for _w, t in width_rows]
    assert times[-1] > times[0]
