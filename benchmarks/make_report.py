#!/usr/bin/env python3
"""Regenerate the measured side of EXPERIMENTS.md in one run.

Executes every experiment series (the same code the benchmark shape
tests run) and prints a self-contained markdown report, so the numbers
in EXPERIMENTS.md can be refreshed on any machine with::

    python benchmarks/make_report.py > experiment_report.md
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.conftest import measure_series  # noqa: E402
from repro.cli.bench import bench_incremental
from repro.dtd import validate
from repro.implication import LidEngine, LPrimaryEngine, LuEngine
from repro.implication.counterexample import divergence_witness
from repro.obs import Observability
from repro.workloads import book_dtdc
from repro.workloads.book import scaled_book_document
from repro.workloads.generators import (
    scaled_lid_chain, scaled_lu_chain, scaled_primary_chain,
)


def table(title: str, header: str, rows) -> None:
    print(f"\n### {title}\n")
    print(f"| {header} | time (s) | per unit |")
    print("|---:|---:|---:|")
    for n, t in rows:
        print(f"| {n} | {t:.6f} | {t / max(n, 1):.2e} |")


def main() -> None:
    print("# Experiment report")
    print(f"\nGenerated on Python {platform.python_version()}, "
          f"{platform.machine()}, at "
          f"{time.strftime('%Y-%m-%d %H:%M:%S')}.")

    dtd = book_dtdc()
    rows = measure_series(
        [20, 80, 320],
        lambda n: scaled_book_document(n, depth=2),
        lambda doc: validate(doc, dtd))
    table("E1: validate(book) vs document size", "vertices",
          [(scaled_book_document(n, depth=2).size(), t)
           for (n, t) in rows])

    rows = measure_series(
        [100, 400, 1600], scaled_lid_chain,
        lambda inst: LidEngine(inst[0]).implies(inst[1]))
    table("E4: L_id closure+query vs |Sigma|", "n", rows)

    unrest = measure_series(
        [100, 400, 1600], scaled_lu_chain,
        lambda inst: LuEngine(inst[0]).implies(inst[1]))
    finite = measure_series(
        [100, 400, 1600], scaled_lu_chain,
        lambda inst: LuEngine(inst[0]).finitely_implies(inst[1]))
    table("E5: I_u vs chain length", "n", unrest)
    table("E5: I_u^f vs chain length", "n", finite)

    sigma, phi, witness = divergence_witness()
    engine = LuEngine(sigma)
    print("\n### E5: divergence witness\n")
    print(f"- `Sigma |= phi`: **{bool(engine.implies(phi))}**")
    print(f"- `Sigma |=_f phi`: **{bool(engine.finitely_implies(phi))}**")
    print(f"- infinite witness checks: **{witness.check(sigma, phi)}**")

    rows = measure_series(
        [10, 30, 90],
        lambda n: scaled_primary_chain(n, width=3),
        lambda inst: LPrimaryEngine(inst[0]).implies(inst[1]))
    table("E8: I_p closure vs chain length (width 3)", "n", rows)

    from repro.fo2 import figure_one_pair, two_pebble_equivalent
    from repro.fo2.ef_game import _satisfies_key
    g, gp = figure_one_pair()
    print("\n### E12: Figure 1\n")
    print(f"- `G |= key`: **{_satisfies_key(g)}**; "
          f"`G' |= key`: **{_satisfies_key(gp)}**")
    print(f"- FO2-equivalent: **{two_pebble_equivalent(g, gp)}**")

    result = bench_incremental(nodes=2000, updates=50)
    print("\n### E16: incremental revalidation (JSON-sourced)\n")
    print(f"- document: {result['vertices']} vertices, "
          f"|Sigma| = {result['sigma']}")
    print(f"- revalidate after 1 update: "
          f"**{result['incremental_us']:.1f} us** "
          f"(mean of {result['updates']})")
    print(f"- full `check()`: **{result['full_us']:.1f} us** "
          f"(mean of {result['full_runs']})")
    print(f"- speedup: **{result['speedup']:.1f}x**")

    e17_tables()


def _obs_counter_totals(obs: Observability) -> dict:
    """Sum each counter across label sets, read from the *JSON export*
    (the same payload ``repro-xic --metrics json`` emits), so the
    report exercises the machine-readable path end to end."""
    totals: dict = {}
    for metric in json.loads(obs.to_json())["metrics"]:
        if "value" in metric:
            totals[metric["name"]] = \
                totals.get(metric["name"], 0) + metric["value"]
    return totals


def e17_tables() -> None:
    """E17: observed linear scaling of the lid/lu implication engines.

    Counts rule applications and closure iterations with the obs
    metrics while timing the same runs: Prop 3.1 (L_id) and Thm 3.2's
    ``I_u`` say both grow linearly in |Sigma| on the chain workloads.
    """
    print("\n### E17: implication work vs |Sigma| (obs counters)\n")
    for title, build, make_engine in (
            ("lid (Prop 3.1)", scaled_lid_chain,
             lambda sigma, obs: LidEngine(sigma, obs=obs)),
            ("lu (Thm 3.2)", scaled_lu_chain,
             lambda sigma, obs: LuEngine(sigma, obs=obs))):
        print(f"\n#### {title}\n")
        print("| n | |Sigma| | rule apps | iterations | time (s) "
              "| apps per |Sigma| |")
        print("|---:|---:|---:|---:|---:|---:|")
        for n in (100, 400, 1600):
            sigma, phi = build(n)
            obs = Observability()
            t0 = time.perf_counter()
            engine = make_engine(sigma, obs)
            engine.implies(phi)
            elapsed = time.perf_counter() - t0
            totals = _obs_counter_totals(obs)
            apps = totals.get("implication_rule_applications", 0)
            iters = totals.get("implication_closure_iterations", 0)
            print(f"| {n} | {len(sigma)} | {apps} | {iters} "
                  f"| {elapsed:.6f} | {apps / len(sigma):.2f} |")


if __name__ == "__main__":
    sys.exit(main())
