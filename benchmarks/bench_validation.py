"""E1 + E13: validation of the book document at scale, and the
indexed-vs-naive checker ablation.

Paper artifact: Figure 2 / §2.4 (validity, Definition 2.4) and the
linear-time constraint checking the complexity results presume.
Expected shape: full validation scales ~linearly in document size; the
indexed checker beats the naive quadratic evaluator by a growing factor.
"""

import pytest

from benchmarks.conftest import (
    assert_subquadratic, measure_series, print_series,
)
from repro.constraints import check, check_naive
from repro.dtd import validate
from repro.workloads import book_dtdc
from repro.workloads.book import scaled_book_document

DTD = book_dtdc()


@pytest.mark.benchmark(group="E1-validate")
@pytest.mark.parametrize("n_sections", [10, 50, 200])
def test_validate_book(benchmark, n_sections):
    doc = scaled_book_document(n_sections, depth=2)
    report = benchmark(lambda: validate(doc, DTD))
    assert report.ok


@pytest.mark.benchmark(group="E13-checker")
@pytest.mark.parametrize("checker", [check, check_naive],
                         ids=["indexed", "naive"])
def test_checker_ablation(benchmark, checker):
    doc = scaled_book_document(60, depth=2)
    report = benchmark(
        lambda: checker(doc, DTD.constraints, DTD.structure))
    assert report.ok


def test_e1_linear_shape():
    """Validation time is ~linear in document size."""
    rows = measure_series(
        sizes=[20, 80, 320],
        setup=lambda n: scaled_book_document(n, depth=2),
        run=lambda doc: validate(doc, DTD))
    sized = [(scaled_book_document(n, depth=2).size(), t)
             for (n, t) in rows]
    print_series("E1: validate(book) vs document size", sized,
                 header="vertices")
    assert_subquadratic(sized)


def test_e13_indexed_beats_naive():
    """The indexed checker wins, by a factor that grows with size."""
    import time

    def timed(f):
        t0 = time.perf_counter()
        f()
        return time.perf_counter() - t0

    speedups = []
    for n in (30, 120):
        doc = scaled_book_document(n, depth=2)
        fast = min(timed(lambda: check(doc, DTD.constraints,
                                       DTD.structure))
                   for _i in range(3))
        slow = min(timed(lambda: check_naive(doc, DTD.constraints,
                                             DTD.structure))
                   for _i in range(3))
        speedups.append((doc.size(), slow / max(fast, 1e-9)))
    print_series("E13: naive/indexed speedup", speedups,
                 unit="x", header="vertices")
    # The naive checker is quadratic in ext sizes: the speedup at the
    # larger size must exceed the speedup at the smaller one.
    assert speedups[-1][1] > speedups[0][1]
    assert speedups[-1][1] > 2.0
