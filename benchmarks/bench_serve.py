"""E21: the long-lived validation service vs per-request processes.

Paper artifact: Definition 2.4 validity is a per-document judgment
against a fixed ``DTD^C`` — nothing about the schema changes between
documents, so all per-schema work (parsing S and Σ, fingerprinting,
compiling the stream plan) is pure overhead when it is re-paid per
request.  ``repro-xic serve`` amortizes it: the
:class:`~repro.server.registry.SchemaRegistry` compiles once, the
daemon answers many requests, and the content-addressed cache answers
byte-identical re-submissions without re-validating.  The experiment
measures exactly that:

- **throughput + tail latency** — N concurrent clients over the JSONL
  TCP transport; reports docs/sec and p99 per-request latency;
- **cold vs warm cache** — the same corpus re-submitted against a
  shared :class:`~repro.corpus.ResultCache` must answer every request
  from the cache with byte-identical reports;
- **amortization** — per-document service time must beat a fresh
  ``repro-xic validate`` subprocess per document by >= 5x (the
  subprocess re-pays interpreter start + imports + schema compile on
  every single document).

Run styles::

    python -m pytest benchmarks/bench_serve.py -q    # shape assertions
    python benchmarks/bench_serve.py --smoke         # CI one-shot
    python benchmarks/bench_serve.py                 # timing report
"""

import asyncio
import json
import os
import subprocess
import sys
import time

if __package__:
    pass
else:  # `python benchmarks/bench_serve.py` — repo root not on sys.path
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))

from repro import Observability, SchemaRegistry, ValidationServer
from repro.corpus import ResultCache
from repro.obs import NULL_TRACER
from repro.workloads.generators import random_corpus
from repro.xmlio import serialize

#: The schema every request validates against (same shape as the CLI
#: contract fixtures; random_corpus generates matching documents).
LIB_SCHEMA = """
<!ELEMENT library (entry*, ref*)>
<!ELEMENT entry (#PCDATA)?>
<!ELEMENT ref EMPTY>
<!ATTLIST entry isbn CDATA #REQUIRED shelf CDATA #REQUIRED>
<!ATTLIST ref to CDATA #REQUIRED>
%% constraints
entry.isbn -> entry
ref.to sub entry.isbn
"""

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _corpus_texts(n_docs: int, seed: int = 0):
    _dtd, docs = random_corpus(n_docs=n_docs, invalid_fraction=0.0,
                               seed=seed)
    return [(f"doc-{i:04d}", serialize(doc))
            for i, doc in enumerate(docs)]


def _percentile(latencies, q: float) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def serve_run(texts, cache=None, concurrency: int = 8,
              telemetry: bool = False):
    """Push ``texts`` through an in-process server over the JSONL TCP
    transport with ``concurrency`` client connections.

    With ``telemetry=True`` the server runs the full request-telemetry
    path: a real tracer, 100% sampling (every request opens a span tree
    and lands in the trace store), and the structured event log.

    Returns ``(total_seconds, latencies, n_cached)``; every response is
    checked for ``ok`` and ``valid`` on the way through.
    """
    async def scenario():
        obs = (Observability() if telemetry
               else Observability(tracer=NULL_TRACER))
        registry = SchemaRegistry(obs=obs)
        registry.load("lib", LIB_SCHEMA)
        server = ValidationServer(registry, cache=cache, obs=obs,
                                  sample=1.0 if telemetry else 0.0)
        jsonl = await asyncio.start_server(
            server.serve_jsonl, "127.0.0.1", 0)
        host, port = jsonl.sockets[0].getsockname()[:2]
        latencies: list[float] = []
        cached = 0

        async def worker(chunk):
            nonlocal cached
            reader, writer = await asyncio.open_connection(host, port)
            for doc_id, text in chunk:
                t0 = time.perf_counter()
                writer.write(json.dumps(
                    {"op": "validate", "schema": "lib", "id": doc_id,
                     "document": text}).encode("utf-8") + b"\n")
                await writer.drain()
                resp = json.loads(await reader.readline())
                latencies.append(time.perf_counter() - t0)
                assert resp["ok"] and resp["valid"], resp
                cached += bool(resp["cached"])
            writer.close()
            await writer.wait_closed()

        chunks = [texts[i::concurrency] for i in range(concurrency)]
        t0 = time.perf_counter()
        await asyncio.gather(*(worker(c) for c in chunks if c))
        total = time.perf_counter() - t0
        jsonl.close()
        await jsonl.wait_closed()
        await server.close()
        return total, latencies, cached

    return asyncio.run(scenario())


def subprocess_baseline(tmp_dir, runs: int = 3) -> float:
    """Mean seconds for one document via a fresh ``repro-xic validate``
    process — what serving replaces.  Each run pays interpreter start,
    package import, schema parse, and plan compile from scratch."""
    schema = os.path.join(tmp_dir, "lib.dtdc")
    with open(schema, "w") as fh:
        fh.write(LIB_SCHEMA)
    doc = os.path.join(tmp_dir, "doc.xml")
    with open(doc, "w") as fh:
        fh.write(_corpus_texts(1)[0][1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "repro", "validate", doc, schema]
    elapsed = []
    for _ in range(runs):
        t0 = time.perf_counter()
        proc = subprocess.run(cmd, env=env, cwd=_REPO_ROOT,
                              capture_output=True)
        elapsed.append(time.perf_counter() - t0)
        assert proc.returncode == 0, proc.stderr.decode()
    return sum(elapsed) / len(elapsed)


# -- shape assertions (pytest) ---------------------------------------------


def test_e21_cold_vs_warm_cache():
    """A re-submitted corpus answers entirely from the cache, with the
    same per-request verdicts."""
    texts = _corpus_texts(n_docs=96)
    cache = ResultCache()
    _total, cold_lat, cold_cached = serve_run(texts, cache=cache)
    _total, warm_lat, warm_cached = serve_run(texts, cache=cache)
    assert cold_cached == 0
    assert warm_cached == len(texts)
    assert len(cold_lat) == len(warm_lat) == len(texts)


def test_e21_concurrent_clients_consistent():
    """Throughput run: 8 concurrent connections, every response valid;
    p99 is finite and the run makes progress (docs/sec > 0)."""
    texts = _corpus_texts(n_docs=64)
    total, latencies, _cached = serve_run(texts, concurrency=8)
    rate = len(texts) / max(total, 1e-9)
    p99 = _percentile(latencies, 0.99)
    print(f"\nE21: {rate:,.0f} docs/sec, p99 {p99 * 1e3:.2f} ms "
          f"over 8 connections")
    assert rate > 0 and p99 > 0


def test_e21_server_beats_subprocess(tmp_path):
    """Acceptance: per-document service time >= 5x faster than one
    ``repro-xic validate`` subprocess per document."""
    texts = _corpus_texts(n_docs=48)
    total, _lat, _cached = serve_run(texts)
    per_doc_served = total / len(texts)
    per_doc_subprocess = subprocess_baseline(str(tmp_path))
    speedup = per_doc_subprocess / max(per_doc_served, 1e-9)
    print(f"\nE21: served {per_doc_served * 1e3:.2f} ms/doc vs "
          f"subprocess {per_doc_subprocess * 1e3:.0f} ms/doc "
          f"({speedup:.0f}x)")
    assert speedup >= 5.0, (
        f"serving only {speedup:.1f}x faster than per-request "
        f"subprocesses ({per_doc_served * 1e3:.2f} ms vs "
        f"{per_doc_subprocess * 1e3:.0f} ms per doc)")


def _best_rate(texts, runs: int = 3, telemetry: bool = False) -> float:
    """Best-of-``runs`` throughput (docs/sec) for one server config.
    A throwaway warmup run comes first so neither config pays one-time
    import/compile costs inside its timed window."""
    serve_run(texts[: max(8, len(texts) // 4)], telemetry=telemetry)
    best = min(serve_run(texts, telemetry=telemetry)[0]
               for _ in range(runs))
    return len(texts) / max(best, 1e-9)


def test_e21_telemetry_overhead():
    """Acceptance: full request telemetry (tracer + 100% sampling +
    event log) keeps E21 throughput at >= 0.9x the warm baseline."""
    texts = _corpus_texts(n_docs=64)
    base_rate = _best_rate(texts, runs=3, telemetry=False)
    telem_rate = _best_rate(texts, runs=3, telemetry=True)
    ratio = telem_rate / max(base_rate, 1e-9)
    print(f"\nE21 telemetry: {base_rate:,.0f} docs/s baseline vs "
          f"{telem_rate:,.0f} docs/s traced ({ratio:.2f}x)")
    assert ratio >= 0.9, (
        f"telemetry costs too much: {telem_rate:,.0f} docs/s is only "
        f"{ratio:.2f}x the {base_rate:,.0f} docs/s baseline")


# -- standalone runner (CI smoke + timing report) --------------------------


def _report(n_docs: int, smoke: bool) -> int:
    import tempfile

    texts = _corpus_texts(n_docs=n_docs)
    cache = ResultCache()
    cold_total, cold_lat, cold_cached = serve_run(texts, cache=cache)
    warm_total, warm_lat, warm_cached = serve_run(texts, cache=cache)
    with tempfile.TemporaryDirectory() as tmp:
        per_doc_sub = subprocess_baseline(tmp, runs=1 if smoke else 3)

    cold_rate = n_docs / max(cold_total, 1e-9)
    warm_rate = n_docs / max(warm_total, 1e-9)
    per_doc = cold_total / n_docs
    speedup = per_doc_sub / max(per_doc, 1e-9)
    print(f"E21 serve: {n_docs} docs, 8 connections")
    print(f"  cold      {cold_rate:10,.0f} docs/s   "
          f"p99 {_percentile(cold_lat, 0.99) * 1e3:7.2f} ms")
    print(f"  warm      {warm_rate:10,.0f} docs/s   "
          f"p99 {_percentile(warm_lat, 0.99) * 1e3:7.2f} ms   "
          f"({warm_cached}/{n_docs} cached)")
    print(f"  subprocess{per_doc_sub * 1e3:10,.0f} ms/doc   "
          f"served {per_doc * 1e3:.2f} ms/doc   ({speedup:.0f}x)")

    ok = cold_cached == 0 and warm_cached == n_docs
    if not smoke:
        ok = ok and speedup >= 5.0
    print("E21 smoke OK" if ok else "E21 FAILED")
    return 0 if ok else 1


def _telemetry_report(n_docs: int, runs: int) -> int:
    texts = _corpus_texts(n_docs=n_docs)
    base_rate = _best_rate(texts, runs=runs, telemetry=False)
    telem_rate = _best_rate(texts, runs=runs, telemetry=True)
    ratio = telem_rate / max(base_rate, 1e-9)
    print(f"E21 telemetry: {n_docs} docs, best of {runs}")
    print(f"  baseline  {base_rate:10,.0f} docs/s")
    print(f"  traced    {telem_rate:10,.0f} docs/s   ({ratio:.2f}x)")
    ok = ratio >= 0.9
    print("E21 telemetry OK" if ok else
          f"E21 telemetry FAILED (ratio {ratio:.2f} < 0.9)")
    return 0 if ok else 1


if __name__ == "__main__":
    import argparse

    cli = argparse.ArgumentParser(
        description="E21: long-lived validation service benchmark")
    cli.add_argument("--smoke", action="store_true",
                     help="CI mode: correctness checks only (cache "
                     "round-trip, response validity), no timing "
                     "thresholds")
    cli.add_argument("--telemetry", action="store_true",
                     help="compare full request telemetry (tracer, "
                     "sample=1.0, event log) against the untraced "
                     "baseline; fails if traced throughput < 0.9x")
    cli.add_argument("--docs", type=int, default=160,
                     help="corpus size (default: 160)")
    ns = cli.parse_args()
    if ns.telemetry:
        raise SystemExit(_telemetry_report(
            ns.docs if not ns.smoke else 48, runs=1 if ns.smoke else 3))
    raise SystemExit(_report(ns.docs if not ns.smoke else 32, ns.smoke))
