"""E9 + E10 + E11: path-constraint implication (Props 4.1, 4.2, 4.3).

Claimed complexities: O(|phi| (|Sigma| + |P|)) for functional and
inclusion constraints, O(|Sigma| |phi|) for inverse constraints.
Workloads scale |phi| (path length) against chain-shaped DTDs, so the
expected shape is ~linear in the path length.
"""

import pytest

from benchmarks.conftest import (
    assert_subquadratic, measure_series, print_series,
)
from repro.constraints.parser import parse_constraints
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure
from repro.paths import (
    PathFunctional, PathImplicationEngine, PathInclusion, PathInverse,
    parse_path,
)
from repro.workloads.generators import deep_chain_dtdc


def inverse_chain_dtdc(n: int):
    """n types in a chain of L_id inverses; returns (DTD^C, phi)."""
    s = DTDStructure("root")
    s.define_element("root", "(" + ", ".join(
        f"c{i}*" for i in range(n + 1)) + ")")
    lines = []
    for i in range(n + 1):
        s.define_element(f"c{i}", "EMPTY")
        s.define_attribute(f"c{i}", "oid", kind="ID")
        lines.append(f"c{i}.oid ->id c{i}")
    for i in range(n):
        s.define_attribute(f"c{i}", "fwd", set_valued=True, kind="IDREF")
        s.define_attribute(f"c{i + 1}", "back", set_valued=True,
                           kind="IDREF")
        lines.append(f"c{i}.fwd inv c{i + 1}.back")
    dtd = DTDC(s, parse_constraints("\n".join(lines), s))
    rho = ".".join(["fwd"] * n)
    varrho = ".".join(["back"] * n)
    phi = PathInverse("c0", parse_path(rho), f"c{n}", parse_path(varrho))
    return dtd, phi


@pytest.mark.benchmark(group="E9-functional")
@pytest.mark.parametrize("n", [5, 20, 80])
def test_functional_decider(benchmark, n):
    dtd, path_text = deep_chain_dtdc(n)
    engine = PathImplicationEngine(dtd)
    phi = PathFunctional("e0", parse_path(path_text), parse_path("e1"))
    assert benchmark(lambda: engine.implies_functional(phi))


@pytest.mark.benchmark(group="E10-inclusion")
@pytest.mark.parametrize("n", [5, 20, 80])
def test_inclusion_decider(benchmark, n):
    dtd, path_text = deep_chain_dtdc(n)
    engine = PathImplicationEngine(dtd)
    half = n // 2
    rho = parse_path(path_text)
    suffix = parse_path(".".join(path_text.split(".")[half:]))
    phi = PathInclusion("e0", rho, f"e{half}", suffix)
    assert benchmark(lambda: engine.implies_inclusion(phi))


@pytest.mark.benchmark(group="E11-inverse")
@pytest.mark.parametrize("n", [4, 12, 36])
def test_inverse_decider(benchmark, n):
    dtd, phi = inverse_chain_dtdc(n)
    engine = PathImplicationEngine(dtd)
    assert benchmark(lambda: engine.implies_inverse(phi))


def test_e9_shape():
    def setup(n):
        dtd, path_text = deep_chain_dtdc(n)
        engine = PathImplicationEngine(dtd)
        return engine, PathFunctional("e0", parse_path(path_text),
                                      parse_path("e1"))

    rows = measure_series([20, 80, 320], setup,
                          lambda inst: inst[0].implies_functional(inst[1]))
    print_series("E9: Prop 4.1 decider vs path length", rows)
    assert_subquadratic(rows, factor=6.0)


def test_e11_shape():
    def setup(n):
        dtd, phi = inverse_chain_dtdc(n)
        return PathImplicationEngine(dtd), phi

    rows = measure_series([8, 24, 72], setup,
                          lambda inst: inst[0].implies_inverse(inst[1]))
    print_series("E11: Prop 4.3 decider vs path length", rows)
    # O(|Sigma| |phi|) with |Sigma| ~ n too: quadratic in n is allowed,
    # but nothing worse.
    (n0, t0), (n1, t1) = rows[0], rows[-1]
    assert t1 / max(t0, 1e-9) <= 4 * (n1 / n0) ** 2
