"""E16: incremental revalidation vs from-scratch checking.

Paper artifact: the linear-time checking of §2.4 taken to the ROADMAP's
mutating-traffic setting — a :class:`~repro.incremental.DocumentSession`
maintains the checked state under updates, so a revalidation after a
single-vertex update costs O(|Δ|) while ``check()`` re-pays
O(|doc| + |Σ|).  Expected shape: per-update revalidation time is flat
in document size (the full check grows linearly), giving a speedup that
grows with the document; on the 10k-vertex workload it must exceed 10x.

Run styles::

    python -m pytest benchmarks/bench_incremental.py -q \
        --benchmark-disable          # CI smoke: shape assertions only
    python -m pytest benchmarks/bench_incremental.py \
        --benchmark-only             # timing tables
    repro-xic bench-incremental      # the same demo, no pytest
"""

import random
import time

import pytest

from benchmarks.conftest import print_series
from repro.constraints import check
from repro.incremental import DocumentSession
from repro.workloads.generators import incremental_session_workload


def _session(n_vertices: int, seed: int = 0):
    tree, sigma, structure = incremental_session_workload(n_vertices, seed)
    session = DocumentSession(tree, sigma, structure)
    session.revalidate()
    return session


def _one_update(session, rng, i: int) -> None:
    """Break (even steps) or perturb (odd steps) one constraint."""
    if i % 2 == 0:
        ref = rng.choice(session.index.extension("ref"))
        session.set_attribute(ref, "to", f"bogus-{i}")
    else:
        entries = session.index.extension("entry")
        entry = rng.choice(entries)
        session.set_attribute(entry, "isbn",
                              f"isbn-{rng.randint(0, len(entries))}")


@pytest.mark.benchmark(group="E16-incremental")
@pytest.mark.parametrize("n_vertices", [1000, 10000])
def test_revalidate_after_update(benchmark, n_vertices):
    session = _session(n_vertices)
    rng = random.Random(1)
    counter = [0]

    def step():
        _one_update(session, rng, counter[0])
        counter[0] += 1
        return session.revalidate()

    benchmark(step)


@pytest.mark.benchmark(group="E16-incremental")
@pytest.mark.parametrize("n_vertices", [1000, 10000])
def test_full_check_baseline(benchmark, n_vertices):
    tree, sigma, structure = incremental_session_workload(n_vertices)
    benchmark(lambda: check(tree, sigma, structure))


def test_e16_speedup_at_10k():
    """Acceptance: revalidate after a single-vertex update is >= 10x
    faster than a from-scratch ``check()`` on a 10k-vertex document."""
    session = _session(10000)
    rng = random.Random(1)
    inc_times = []
    for i in range(30):
        _one_update(session, rng, i)
        t0 = time.perf_counter()
        session.revalidate()
        inc_times.append(time.perf_counter() - t0)
    tree, sigma, structure = session.tree, session.constraints, \
        session.structure
    full = min(_timed(lambda: check(tree, sigma, structure))
               for _i in range(3))
    inc = sorted(inc_times)[len(inc_times) // 2]  # median: outlier-proof
    print_series("E16: revalidate vs full check at 10k vertices",
                 [(1, inc), (2, full)], header="(1=inc, 2=full)")
    assert full / max(inc, 1e-9) >= 10.0, (
        f"incremental revalidation only {full / max(inc, 1e-9):.1f}x "
        f"faster than full check ({inc * 1e6:.0f}us vs {full * 1e6:.0f}us)")


def test_e16_revalidate_flat_in_document_size():
    """Per-update revalidation cost must not grow with the document:
    10x more vertices may cost at most ~2x (noise allowance)."""
    medians = []
    for n in (1000, 10000):
        session = _session(n)
        rng = random.Random(1)
        times = []
        for i in range(30):
            _one_update(session, rng, i)
            t0 = time.perf_counter()
            session.revalidate()
            times.append(time.perf_counter() - t0)
        medians.append((n, sorted(times)[len(times) // 2]))
    print_series("E16: revalidate vs document size", medians,
                 header="vertices")
    (n0, t0), (n1, t1) = medians
    assert t1 <= 3.0 * max(t0, 1e-9), (
        f"revalidation cost grew with document size: {t0 * 1e6:.0f}us "
        f"at {n0} vs {t1 * 1e6:.0f}us at {n1}")


def test_e16_incremental_matches_batch():
    """The benchmark workload itself stays equivalent to check()."""
    session = _session(2000)
    rng = random.Random(2)
    for i in range(40):
        _one_update(session, rng, i)
    got = sorted((v.code, v.constraint, tuple(sorted(v.vertices)))
                 for v in session.revalidate())
    want = sorted((v.code, v.constraint, tuple(sorted(v.vertices)))
                  for v in check(session.tree, session.constraints,
                                 session.structure))
    assert got == want


def _timed(f) -> float:
    t0 = time.perf_counter()
    f()
    return time.perf_counter() - t0
