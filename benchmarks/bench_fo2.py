"""E12: the FO² expressiveness argument (Figure 1).

Measured: the 2-pebble EF-game fixpoint on the Figure 1 pair, game cost
vs structure size, and the exhaustive minimal-pair search.  Shape: the
curated pair is FO²-equivalent yet key-distinct; the game fixpoint is
polynomial in |A|·|B|; the search rediscovers a minimal pair.
"""

import pytest

from benchmarks.conftest import measure_series, print_series
from repro.fo2 import (
    Structure, evaluate, figure_one_pair, key_constraint_formula,
    search_indistinguishable_pair, two_pebble_equivalent,
)
from repro.fo2.ef_game import _satisfies_key


def symmetric_clique(n: int) -> Structure:
    """Loop-free complete symmetric digraph on n nodes (the G' family)."""
    return Structure.build(
        range(n), l={(i, j) for i in range(n) for j in range(n)
                     if i != j})


@pytest.mark.benchmark(group="E12-game")
def test_figure_one_game(benchmark):
    g, g_prime = figure_one_pair()
    assert benchmark(lambda: two_pebble_equivalent(g, g_prime))


@pytest.mark.benchmark(group="E12-search")
def test_minimal_pair_search(benchmark):
    pair = benchmark(lambda: search_indistinguishable_pair(3))
    assert pair is not None


def test_e12_exhibit():
    g, g_prime = figure_one_pair()
    phi = key_constraint_formula()
    print("\nE12: Figure 1 reconstruction")
    print(f"  G  = {g}")
    print(f"  G' = {g_prime}")
    print(f"  G  |= key: {_satisfies_key(g)};  "
          f"G' |= key: {_satisfies_key(g_prime)}")
    print(f"  FO2-equivalent: {two_pebble_equivalent(g, g_prime)}")
    assert evaluate(g, phi) and not evaluate(g_prime, phi)
    assert two_pebble_equivalent(g, g_prime)


def test_e12_clique_family_scales():
    """Every pair of symmetric cliques (sizes >= 2) is FO²-equivalent;
    the game cost grows polynomially with the structure sizes."""
    rows = measure_series(
        [3, 5, 7],
        lambda n: (symmetric_clique(2), symmetric_clique(n)),
        lambda pair: two_pebble_equivalent(*pair))
    print_series("E12: 2-pebble game vs |G'| (vs 2-clique)", rows)
    for n in (3, 5, 7):
        assert two_pebble_equivalent(symmetric_clique(2),
                                     symmetric_clique(n))
        assert not _satisfies_key(symmetric_clique(n))
    assert _satisfies_key(symmetric_clique(2))
