"""E19/E23: single-pass validation — throughput and memory.

Paper artifact: Definition 2.4 is decidable in one pass over the
document when ``DTD^C`` is compiled ahead of time — the content models
step as DFAs, the unary constraints of Σ fold over attribute values as
elements close.  The experiment checks the two payoffs of
:mod:`repro.stream` against the batch parse-then-validate pipeline:

- **throughput** — on the E18 corpus, streaming validation is at least
  as fast as ``parse_document`` + ``validate`` (it skips the tree), and
  byte-identical in verdicts;
- **memory** — peak allocation is *sublinear* in document size when the
  extra size is Σ-irrelevant (the stream drops those vertices at their
  close tag; the batch path keeps every one), and on a 10k-vertex
  document the streaming peak stays under half the batch peak;
- (reported, not asserted) the ``sys.intern`` of element/attribute
  names in the tokenizer, which both pipelines share.

**E23** adds the codegen engine on top: the schema-specialized module
from :mod:`repro.codegen` must stay byte-identical to the stream
interpreter on the same inputs, and its zero-copy bytes scanner must
clear a >= 5x throughput bar over the interpreter on the Σ-sparse feed
workload (measured ~20x on the reference machine).

Run styles::

    python -m pytest benchmarks/bench_stream.py -q   # shape assertions
    python benchmarks/bench_stream.py --smoke        # CI one-shot
    python benchmarks/bench_stream.py                # timing report
"""

import gc
import os
import sys
import time
import tracemalloc

if __package__:
    from benchmarks.conftest import print_series
else:  # `python benchmarks/bench_stream.py` — repo root not on sys.path
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from benchmarks.conftest import print_series
from repro.dtd.validate import validate
from repro.stream import StreamValidator, compile_plan
from repro.workloads.generators import random_corpus
from repro.xmlio import serialize
from repro.xmlio.dtdparse import parse_dtdc
from repro.xmlio.parser import parse_document

FEED_SCHEMA = """
<!ELEMENT feed (item*, entry*, ref*)>
<!ELEMENT item (#PCDATA)?>
<!ELEMENT entry EMPTY>
<!ELEMENT ref EMPTY>
<!ATTLIST entry sku CDATA #REQUIRED>
<!ATTLIST ref to CDATA #REQUIRED>
%% constraints
entry.sku -> entry
ref.to sub entry.sku
"""


def _corpus_texts(n_docs: int = 100, seed: int = 0):
    """The E18 corpus again, so E18/E19 numbers are comparable."""
    dtd, docs = random_corpus(n_docs=n_docs, invalid_fraction=0.2,
                              seed=seed)
    return dtd, [serialize(doc) for doc in docs]


def _feed_doc(n_items: int, n_keyed: int = 50) -> str:
    """A document whose bulk is Σ-irrelevant: ``n_items`` text-carrying
    ``item`` elements, then a fixed keyed/referencing tail."""
    parts = ["<feed>"]
    parts.extend(f"<item>payload number {i} {'x' * 24}</item>"
                 for i in range(n_items))
    parts.extend(f'<entry sku="e{i}"/>' for i in range(n_keyed))
    parts.extend(f'<ref to="e{i % (n_keyed + 5)}"/>'
                 for i in range(n_keyed))
    parts.append("</feed>")
    return "".join(parts)


def _best_of(f, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        best = min(best, time.perf_counter() - t0)
    return best


def _peak_bytes(f) -> int:
    """Peak traced allocation of one call (inputs built beforehand, so
    the document text itself is outside the measurement)."""
    gc.collect()
    tracemalloc.start()
    try:
        f()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


# -- equivalence + throughput ----------------------------------------------


def test_e19_streaming_matches_batch_on_corpus():
    dtd, texts = _corpus_texts(n_docs=40)
    sv = StreamValidator(compile_plan(dtd))
    for text in texts:
        batch = validate(parse_document(text, dtd.structure), dtd)
        assert sv.validate_text(text).to_json() == batch.to_json()


def test_e19_throughput_at_least_batch():
    """Acceptance: one streaming pass is >= 1.0x the batch pipeline on
    the E18 corpus (same documents, same schema, best of 3)."""
    dtd, texts = _corpus_texts(n_docs=100)
    sv = StreamValidator(compile_plan(dtd))

    def run_batch():
        for text in texts:
            validate(parse_document(text, dtd.structure), dtd)

    def run_stream():
        for text in texts:
            sv.validate_text(text)

    run_batch(), run_stream()  # warm parser/DFA caches for both sides
    batch = _best_of(run_batch)
    stream = _best_of(run_stream)
    print_series("E19: batch vs stream, 100 docs",
                 [(1, batch), (2, stream)], header="(1=batch, 2=stream)")
    assert batch / stream >= 1.0, (
        f"streaming is {batch / stream:.2f}x batch "
        f"({stream * 1e3:.1f}ms vs {batch * 1e3:.1f}ms)")


# -- E23: the codegen engine -----------------------------------------------


def test_e23_codegen_matches_stream_on_corpus():
    """Acceptance: the generated validator is byte-identical to the
    stream interpreter on the E18 corpus (both scanners)."""
    from repro.codegen import CodegenValidator
    from repro.server.registry import as_handle

    dtd, texts = _corpus_texts(n_docs=40)
    handle = as_handle(dtd)
    cg = CodegenValidator(handle)
    sv = StreamValidator(handle.plan)
    for text in texts:
        expected = sv.validate_text(text).to_json()
        assert cg.validate_text(text).to_json() == expected
        assert cg.validate_bytes(
            text.encode("utf-8")).to_json() == expected


def test_e23_codegen_throughput_at_least_5x_stream():
    """Acceptance: on the Σ-sparse feed document the zero-copy codegen
    scan is >= 5x the stream interpreter (best of 3)."""
    from repro.codegen import CodegenValidator
    from repro.server.registry import as_handle

    handle = as_handle(parse_dtdc(FEED_SCHEMA))
    cg = CodegenValidator(handle)
    sv = StreamValidator(handle.plan)
    text = _feed_doc(8_000)
    data = text.encode("utf-8")
    assert cg.validate_bytes(data).to_json() \
        == sv.validate_text(text).to_json()
    stream = _best_of(lambda: sv.validate_text(text))
    codegen = _best_of(lambda: cg.validate_bytes(data))
    print_series("E23: stream vs codegen, 8k-item feed",
                 [(1, stream), (2, codegen)],
                 header="(1=stream, 2=codegen)")
    assert stream / codegen >= 5.0, (
        f"codegen is only {stream / codegen:.2f}x stream "
        f"({codegen * 1e3:.1f}ms vs {stream * 1e3:.1f}ms)")


# -- memory ----------------------------------------------------------------


def test_e19_peak_memory_sublinear():
    """Acceptance: 8x more Σ-irrelevant content costs < 4x the peak —
    the stream retains O(depth + Σ-relevant) state, not the document."""
    dtd = parse_dtdc(FEED_SCHEMA)
    sv = StreamValidator(compile_plan(dtd))
    small = _feed_doc(1_000)
    large = _feed_doc(8_000)
    sv.validate_text(small)  # warm DFA/evaluator caches outside the trace
    peak_small = _peak_bytes(lambda: sv.validate_text(small))
    peak_large = _peak_bytes(lambda: sv.validate_text(large))
    print(f"E19 peak: {peak_small} B @1k items, "
          f"{peak_large} B @8k items")
    assert peak_large < 4 * peak_small, (
        f"peak grew {peak_large / peak_small:.1f}x for 8x the document")


def test_e19_streaming_peak_under_half_of_batch():
    """Acceptance: on a ~10k-vertex document the streaming peak is
    under half the batch (parse + validate) peak."""
    dtd = parse_dtdc(FEED_SCHEMA)
    sv = StreamValidator(compile_plan(dtd))
    text = _feed_doc(10_000)
    sv.validate_text(text)
    validate(parse_document(text, dtd.structure), dtd)
    stream_peak = _peak_bytes(lambda: sv.validate_text(text))
    batch_peak = _peak_bytes(
        lambda: validate(parse_document(text, dtd.structure), dtd))
    print(f"E19 10k-vertex peak: stream {stream_peak} B, "
          f"batch {batch_peak} B")
    assert stream_peak < 0.5 * batch_peak, (
        f"stream peak {stream_peak} B is "
        f"{stream_peak / batch_peak:.2f}x the batch peak {batch_peak} B")


# -- standalone runner (CI smoke + timing report) --------------------------


def _interning_delta(n: int = 20_000) -> tuple[int, int]:
    """(distinct label objects, total label tokens) across one parse —
    the ``sys.intern`` satellite makes the first number O(|element
    types|) instead of O(n)."""
    from repro.xmlio.tokenizer import Tokenizer

    text = "<feed>" + "<item>x</item>" * n + "</feed>"
    ids = set()
    total = 0
    for token in Tokenizer(text).tokens():
        if token.kind in ("start", "empty", "end"):
            ids.add(id(token.value))
            total += 1
    return len(ids), total


def _report(n_docs: int, smoke: bool) -> int:
    from repro.codegen import CodegenValidator
    from repro.server.registry import as_handle

    dtd, texts = _corpus_texts(n_docs=n_docs)
    sv = StreamValidator(compile_plan(dtd))
    cg = CodegenValidator(as_handle(dtd))

    mismatches = sum(
        sv.validate_text(t).to_json()
        != validate(parse_document(t, dtd.structure), dtd).to_json()
        for t in texts)
    cg_mismatches = sum(
        cg.validate_bytes(t.encode("utf-8")).to_json()
        != sv.validate_text(t).to_json()
        for t in texts)

    batch = _best_of(lambda: [
        validate(parse_document(t, dtd.structure), dtd) for t in texts])
    stream = _best_of(lambda: [sv.validate_text(t) for t in texts])

    feed = as_handle(parse_dtdc(FEED_SCHEMA))
    fsv = StreamValidator(feed.plan)
    fcg = CodegenValidator(feed)
    text_10k = _feed_doc(10_000)
    data_10k = text_10k.encode("utf-8")
    fsv.validate_text(text_10k)
    validate(parse_document(text_10k, feed.dtd.structure), feed.dtd)
    stream_peak = _peak_bytes(lambda: fsv.validate_text(text_10k))
    batch_peak = _peak_bytes(
        lambda: validate(parse_document(text_10k, feed.dtd.structure),
                         feed.dtd))
    feed_equal = fcg.validate_bytes(data_10k).to_json() \
        == fsv.validate_text(text_10k).to_json()
    feed_stream = _best_of(lambda: fsv.validate_text(text_10k))
    feed_codegen = _best_of(lambda: fcg.validate_bytes(data_10k))
    speedup = feed_stream / feed_codegen

    distinct, total = _interning_delta()

    print(f"E19 stream: {n_docs} docs, {os.cpu_count()} core(s)")
    print(f"  batch  jobs=1 {batch * 1e3:8.1f} ms")
    print(f"  stream jobs=1 {stream * 1e3:8.1f} ms")
    print(f"  throughput    {batch / stream:8.2f} x batch")
    print(f"  10k-vertex peak: stream {stream_peak:>10} B, "
          f"batch {batch_peak:>10} B "
          f"({stream_peak / batch_peak:.2f}x)")
    print(f"  interned labels: {distinct} distinct objects over "
          f"{total} name tokens")
    print(f"E23 codegen: 10k-item feed, stream {feed_stream * 1e3:.1f} "
          f"ms vs codegen {feed_codegen * 1e3:.1f} ms "
          f"({speedup:.1f}x)")

    ok = (mismatches == 0 and cg_mismatches == 0 and feed_equal
          and stream_peak < 0.5 * batch_peak and speedup >= 5.0)
    if not smoke:
        ok = ok and batch / stream >= 1.0
    print("E19/E23 smoke OK" if ok else "E19/E23 FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    import argparse

    cli = argparse.ArgumentParser(
        description="E19: streaming single-pass validation benchmark")
    cli.add_argument("--smoke", action="store_true",
                     help="CI mode: byte-identity + the peak-memory "
                     "guard, no throughput threshold")
    cli.add_argument("--docs", type=int, default=100,
                     help="corpus size (default: 100)")
    args = cli.parse_args()
    raise SystemExit(_report(args.docs, args.smoke))
