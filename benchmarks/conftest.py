"""Shared helpers for the experiment benchmarks.

Every file here regenerates one experiment of EXPERIMENTS.md (E1-E14).
The paper has no numeric tables — its evaluation is a set of theorems —
so each benchmark (a) measures the decider/checker on a scaling series,
(b) prints the series in a table, and (c) asserts the *shape* the paper
claims (linear / polynomial growth, who-wins orderings, divergences).
"""

import time

import pytest


def measure_series(sizes, setup, run, repeat: int = 3):
    """Best-of-``repeat`` wall time of ``run(setup(n))`` per size."""
    rows = []
    for n in sizes:
        payload = setup(n)
        best = min(_timed(run, payload) for _i in range(repeat))
        rows.append((n, best))
    return rows


def _timed(run, payload) -> float:
    start = time.perf_counter()
    run(payload)
    return time.perf_counter() - start


def print_series(title: str, rows, unit: str = "s",
                 header: str = "n"):
    print(f"\n== {title} ==")
    print(f"{header:>10}  {'time (' + unit + ')':>14}  {'per n':>12}")
    for n, t in rows:
        print(f"{n:>10}  {t:>14.6f}  {t / max(n, 1):>12.2e}")


def assert_subquadratic(rows, factor: float = 3.0):
    """The growth from the first to the last size must stay well under
    quadratic: time ratio <= factor * size ratio.

    Wall-clock noise on small inputs is absorbed by ``factor``.
    """
    (n0, t0), (n1, t1) = rows[0], rows[-1]
    size_ratio = n1 / n0
    time_ratio = t1 / max(t0, 1e-9)
    assert time_ratio <= factor * size_ratio, (
        f"superlinear blowup: sizes x{size_ratio:.1f} but time "
        f"x{time_ratio:.1f}")


@pytest.fixture
def series_printer():
    return print_series
