"""E15: the static-analysis engine scales with schema size.

Generates growing L_u schemas (a chain of element types, each with a
key and a foreign key into the next) and measures a full ``analyze``
run with XIC301 disabled — the redundancy rule is intentionally
O(|Σ|) engine runs, i.e. quadratic, so the scaling claim is about
everything else: structural scans, well-formedness, one implication
closure, consistency.
"""

import pytest

from benchmarks.conftest import (
    assert_subquadratic, measure_series, print_series,
)
from repro.analysis import LintConfig, analyze
from repro.xmlio.dtdparse import parse_dtdc

SIZES = [10, 40, 160]


def chain_schema(n: int) -> str:
    # A containment chain (each content model has constant size, so the
    # scaling variable is the number of types/constraints, not the
    # width of one regular expression).
    lines = ["<!ELEMENT db (t0*)>"]
    for i in range(n):
        child = f"(t{i + 1}*)" if i + 1 < n else "EMPTY"
        lines.append(f"<!ELEMENT t{i} {child}>")
        lines.append(f"<!ATTLIST t{i} k CDATA #REQUIRED "
                     "r NMTOKENS #REQUIRED>")
    lines.append("%% constraints")
    for i in range(n):
        lines.append(f"t{i}.k -> t{i}")
        lines.append(f"t{i}.r subS t{(i + 1) % n}.k")
    return "\n".join(lines)


def setup(n):
    return parse_dtdc(chain_schema(n), root="db", check=False)


def run(dtd):
    return analyze(dtd, LintConfig(ignore=("XIC301",)))


@pytest.mark.benchmark(group="E15-analysis")
@pytest.mark.parametrize("n", SIZES)
def test_analyze_benchmark(benchmark, n):
    dtd = setup(n)
    report = benchmark(lambda: run(dtd))
    assert report.clean  # the chain schema is well-formed and sound


def test_analyze_scales_subquadratically():
    rows = measure_series(SIZES, setup, run)
    print_series("E15: analyze() on chain schemas (XIC301 off)", rows)
    assert_subquadratic(rows)
