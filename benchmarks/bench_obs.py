"""Observability overhead guard + profile smoke.

The acceptance bar for the obs subsystem: with observability *disabled*
(the default), ``bench_validation`` must stay within 5% of the
uninstrumented code.  The pre-instrumentation binary is not in the
repo, so the guard bounds the disabled path structurally instead:

- a disabled ``validate()`` performs a **constant** number of no-op
  dispatches — independent of document size — because every per-vertex
  site is guarded by a cached plain-``bool`` check, and
- the measured wall cost of those dispatches is **< 5%** of the
  measured ``validate()`` time itself.

Together these imply the <5% criterion whatever the machine.  An
informative enabled-vs-disabled comparison rounds out the picture (the
enabled path may legitimately cost more).
"""

import time

import pytest

from repro.dtd import validate
from repro.obs import NULL_OBS, NullInstrument, NullTracer, Observability
from repro.workloads import book_dtdc
from repro.workloads.book import scaled_book_document

DTD = book_dtdc()


def _count_null_dispatches(run):
    """Run ``run()`` with the Null tracer/instrument classes patched to
    count how often the disabled path actually dispatches into them."""
    counts = {"spans": 0, "ops": 0}
    orig_span = NullTracer.span
    op_names = ("inc", "add", "observe", "set")
    orig_ops = {m: getattr(NullInstrument, m) for m in op_names}

    def counting_span(self, name, **attributes):
        counts["spans"] += 1
        return orig_span(self, name, **attributes)

    def make_counting(method):
        orig = orig_ops[method]

        def wrapper(self, *args, **kwargs):
            counts["ops"] += 1
            return orig(self, *args, **kwargs)
        return wrapper

    NullTracer.span = counting_span
    for m in op_names:
        setattr(NullInstrument, m, make_counting(m))
    try:
        run()
    finally:
        NullTracer.span = orig_span
        for m in op_names:
            setattr(NullInstrument, m, orig_ops[m])
    return counts


def _timed(f, repeat: int = 3) -> float:
    best = float("inf")
    for _i in range(repeat):
        t0 = time.perf_counter()
        f()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_dispatch_count_is_constant_in_document_size():
    """The no-op path dispatches O(|Sigma|) times per validate() — the
    same count for a 10x larger document (nothing per-vertex)."""
    small = scaled_book_document(20, depth=2)
    large = scaled_book_document(200, depth=2)
    c_small = _count_null_dispatches(lambda: validate(small, DTD))
    c_large = _count_null_dispatches(lambda: validate(large, DTD))
    assert c_small["spans"] == c_large["spans"], (
        f"null-span dispatches grow with document size: "
        f"{c_small} vs {c_large}")
    # per-vertex counter sites are guarded; no instrument ops at all
    assert c_large["ops"] == 0
    # validate + validate.structure + check + one evaluate per constraint
    assert c_large["spans"] <= 3 + len(DTD.constraints)


def test_disabled_overhead_under_five_percent():
    """Measured cost of the no-op dispatches < 5% of validate() time."""
    doc = scaled_book_document(120, depth=2)
    t_validate = _timed(lambda: validate(doc, DTD), repeat=5)
    dispatches = _count_null_dispatches(lambda: validate(doc, DTD))

    n = 20_000
    t0 = time.perf_counter()
    for _i in range(n):
        with NULL_OBS.span("x"):
            pass
    per_dispatch = (time.perf_counter() - t0) / n

    overhead = dispatches["spans"] * per_dispatch
    print("\n== obs disabled-path overhead ==")
    print(f"validate():        {t_validate * 1e6:10.1f} us")
    print(f"null dispatches:   {dispatches['spans']:>6} spans, "
          f"{dispatches['ops']} instrument ops")
    print(f"per dispatch:      {per_dispatch * 1e9:10.1f} ns")
    print(f"estimated overhead {overhead / t_validate * 100:9.3f} %")
    assert overhead < 0.05 * t_validate, (
        f"disabled-obs overhead {overhead / t_validate:.1%} exceeds the "
        "5% budget")


def test_enabled_vs_disabled_informative():
    """Enabled observability may cost more — report the factor and make
    sure both paths agree on the verdict."""
    doc = scaled_book_document(60, depth=2)
    t_off = _timed(lambda: validate(doc, DTD), repeat=3)

    def enabled():
        obs = Observability()
        report = validate(doc, DTD, obs=obs)
        assert report.ok
        return obs

    t_on = _timed(enabled, repeat=3)
    obs = enabled()
    assert validate(doc, DTD).ok
    assert obs.metrics.value("validate_vertices_checked") == doc.size()
    print(f"\n== obs enabled vs disabled (validate, "
          f"{doc.size()} vertices) ==")
    print(f"disabled: {t_off * 1e6:10.1f} us")
    print(f"enabled:  {t_on * 1e6:10.1f} us  "
          f"({t_on / max(t_off, 1e-9):.2f}x)")


@pytest.mark.benchmark(group="obs-overhead")
def test_validate_disabled_benchmark(benchmark):
    """pytest-benchmark hook: the disabled path, for CI trending."""
    doc = scaled_book_document(60, depth=2)
    report = benchmark(lambda: validate(doc, DTD))
    assert report.ok


def test_profile_smoke(tmp_path, capsys):
    """`repro-xic profile` runs end-to-end and prints both report
    sections (the CI smoke job runs the same command on the shipped
    fixtures)."""
    from repro.cli.main import main
    from repro.workloads import book_document
    from repro.workloads.book import BOOK_CONSTRAINTS_TEXT, BOOK_DTD_TEXT
    from repro.xmlio import serialize

    schema = tmp_path / "book.dtdc"
    schema.write_text(BOOK_DTD_TEXT + "\n%% constraints\n"
                      + BOOK_CONSTRAINTS_TEXT)
    doc = tmp_path / "book.xml"
    doc.write_text(serialize(book_document()))
    assert main(["--root", "book", "profile", "--dtdc", str(schema),
                 "--doc", str(doc)]) == 0
    out = capsys.readouterr().out
    assert "== spans ==" in out and "== metrics ==" in out
