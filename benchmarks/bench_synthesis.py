"""E20: whole-schema satisfiability + witness synthesis.

Paper artifact: consistency of a ``DTD^C`` is decidable by the static
analysis of §2.2/§3, and the decision is *constructive* — a SAT
verdict carries a finite witness document, an UNSAT verdict carries an
unsat core whose removal restores satisfiability.  The experiment
measures what the construction costs and how the witness grows:

- **verdict totality** — every checked-in fixture/example schema and a
  seeded random family get a definitive SAT/UNSAT verdict (never
  UNKNOWN), with SAT witnesses re-validating to zero violations;
- **witness size vs |Σ|** — witness vertex count on a chain-shaped
  schema family as the constraint count grows; the synthesis is
  demand-driven, so size scales with |Σ|, not with the schema;
- **synthesis time** — wall-clock per ``check_satisfiability`` call
  over the same family (best of 3).

Run styles::

    python -m pytest benchmarks/bench_synthesis.py -q  # shape asserts
    python benchmarks/bench_synthesis.py --smoke       # CI one-shot
    python benchmarks/bench_synthesis.py               # timing report
"""

import os
import pathlib
import sys
import time

if __package__:
    from benchmarks.conftest import print_series
else:  # `python benchmarks/bench_synthesis.py` — repo root not on path
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from benchmarks.conftest import print_series
from repro.dtd.validate import validate
from repro.synthesis import Verdict, check_satisfiability
from repro.workloads.generators import random_satisfiable_dtdc
from repro.xmlio.dtdparse import parse_dtdc

REPO = pathlib.Path(__file__).resolve().parent.parent
ALL_SCHEMAS = sorted(
    list((REPO / "tests" / "fixtures").glob("*.dtdc"))
    + list((REPO / "examples").glob("*.dtdc")))


def _chain_schema(n_constraints: int) -> str:
    """A schema family parameterized by |Σ|: ``n`` keyed types hanging
    off the root, each referencing the next — every constraint drags
    one more populated extension into the witness."""
    n = max(2, n_constraints)
    lines = ["<!ELEMENT db (%s)>" % ", ".join(f"t{i}*" for i in range(n))]
    for i in range(n):
        lines.append(f"<!ELEMENT t{i} (#PCDATA)>")
        lines.append(f"<!ATTLIST t{i} k CDATA #REQUIRED"
                     + (" r CDATA #REQUIRED" if i + 1 < n else "")
                     + ">")
    sigma = [f"t{i}.k -> t{i}" for i in range(n)]
    sigma += [f"t{i}.r sub t{i + 1}.k" for i in range(n - 1)]
    return "\n".join(lines) + "\n\n%% constraints\n" + "\n".join(sigma)


def _best_of(f, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        best = min(best, time.perf_counter() - t0)
    return best


def _definitive(path: pathlib.Path) -> "bool | None":
    """True when the schema earns SAT with a clean witness or UNSAT
    with a non-empty core; None when it is rejected at parse time
    (also definitive); False on any regression."""
    try:
        dtd = parse_dtdc(path.read_text(), check=False)
    except Exception:
        return None
    report = check_satisfiability(dtd)
    if report.verdict is Verdict.SAT:
        return report.witness is not None \
            and validate(report.witness, dtd).ok
    if report.verdict is Verdict.UNSAT:
        return report.core is not None
    return False


# -- verdict totality ------------------------------------------------------


def test_e20_every_fixture_verdict_is_definitive():
    for path in ALL_SCHEMAS:
        assert _definitive(path) is not False, path.name


def test_e20_random_family_sat_with_clean_witness():
    for seed in range(10):
        dtd = random_satisfiable_dtdc(seed=seed)
        report = check_satisfiability(dtd)
        assert report.verdict is Verdict.SAT
        assert validate(report.witness, dtd).ok


# -- witness size vs |Σ| ---------------------------------------------------


def test_e20_witness_grows_with_sigma_not_faster():
    """Acceptance: witness vertex count is Θ(|Σ|) on the chain family —
    monotone, and within a small constant of the constraint count."""
    sizes = {}
    for n in (2, 4, 8, 16):
        dtd = parse_dtdc(_chain_schema(n))
        report = check_satisfiability(dtd)
        assert report.verdict is Verdict.SAT
        sizes[n] = report.witness.size()
    assert sizes[2] <= sizes[4] <= sizes[8] <= sizes[16]
    assert sizes[16] <= 4 * (2 * 16), sizes


# -- standalone runner (CI smoke + timing report) --------------------------


def _report(smoke: bool) -> int:
    bad = [p.name for p in ALL_SCHEMAS if _definitive(p) is False]

    random_ok = 0
    n_random = 5 if smoke else 20
    for seed in range(n_random):
        dtd = random_satisfiable_dtdc(seed=seed)
        report = check_satisfiability(dtd)
        if report.verdict is Verdict.SAT \
                and validate(report.witness, dtd).ok:
            random_ok += 1

    print(f"E20 synthesis: {len(ALL_SCHEMAS)} schemas, "
          f"{n_random} random")
    print(f"  fixture verdicts definitive: "
          f"{len(ALL_SCHEMAS) - len(bad)}/{len(ALL_SCHEMAS)}"
          + (f"  REGRESSED: {bad}" if bad else ""))
    print(f"  random SAT + clean witness:  {random_ok}/{n_random}")

    series_size = []
    series_time = []
    for n in (2, 4, 8, 16) if smoke else (2, 4, 8, 16, 32, 64):
        dtd = parse_dtdc(_chain_schema(n))
        report = check_satisfiability(dtd)
        if report.verdict is not Verdict.SAT:
            print(f"  chain |Sigma|={2 * n - 1}: NOT SAT, regression")
            return 1
        series_size.append((2 * n - 1, report.witness.size()))
        series_time.append(
            (2 * n - 1,
             _best_of(lambda: check_satisfiability(dtd))))
    print_series("E20: witness vertices vs |Sigma| (chain family)",
                 series_size, header="(x=|Sigma|, y=vertices)")
    print_series("E20: synthesis seconds vs |Sigma| (best of 3)",
                 series_time, header="(x=|Sigma|, y=seconds)")

    ok = not bad and random_ok == n_random
    print("E20 smoke OK" if ok else "E20 FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    import argparse

    cli = argparse.ArgumentParser(
        description="E20: satisfiability + witness synthesis benchmark")
    cli.add_argument("--smoke", action="store_true",
                     help="CI mode: verdict totality + witness "
                     "cleanliness, short chain family")
    args = cli.parse_args()
    raise SystemExit(_report(args.smoke))
