"""E7: general L keys/foreign keys (Theorem 3.6 / Corollary 3.7).

There is no decider to benchmark — the problem is undecidable.  What we
measure and exhibit:

- the sound rule prover and the chase on decidable-in-practice
  instances (cost grows with chain length);
- the FD+IND ⇄ L translations are cheap (linear);
- the canonical gap instance: finitely valid, unprovable by the sound
  rules, chase diverges → honest UNKNOWN at any budget.
"""

import pytest

from benchmarks.conftest import measure_series, print_series
from repro.constraints import ForeignKey, Key
from repro.implication.l_general import LGeneralEngine, l_to_fd_ind
from repro.relational.chase import ChaseOutcome


def fk_chain(n: int):
    sigma = [Key(f"r{i}", ("k",)) for i in range(n + 1)]
    for i in range(n):
        sigma.append(ForeignKey(f"r{i}", ("k",), f"r{i + 1}", ("k",)))
    phi = ForeignKey("r0", ("k",), f"r{n}", ("k",))
    return sigma, phi


@pytest.mark.benchmark(group="E7-prove")
@pytest.mark.parametrize("n", [5, 15, 40])
def test_sound_prover_chain(benchmark, n):
    sigma, phi = fk_chain(n)
    assert benchmark(lambda: LGeneralEngine(sigma).prove(phi))


@pytest.mark.benchmark(group="E7-chase")
@pytest.mark.parametrize("n", [3, 6, 12])
def test_chase_chain(benchmark, n):
    sigma, phi = fk_chain(n)
    engine = LGeneralEngine(sigma)
    result = benchmark(lambda: engine.refute(phi, max_steps=200,
                                             max_rows=2000))
    assert result.outcome is ChaseOutcome.IMPLIED


@pytest.mark.benchmark(group="E7-translate")
def test_translation_cost(benchmark):
    sigma, phi = fk_chain(200)
    database, fds, inds = benchmark(
        lambda: l_to_fd_ind(sigma, scope=(phi,)))
    assert len(fds) == 2 * 201  # vid FDs + key FDs
    assert len(inds) == 200


def test_e7_undecidability_exhibit():
    """The operational content of Theorem 3.6 on the gap instance."""
    sigma = [Key("tau", ("a",)), Key("tau", ("b",)),
             ForeignKey("tau", ("a",), "tau", ("b",))]
    phi = ForeignKey("tau", ("b",), "tau", ("a",))
    engine = LGeneralEngine(sigma)
    assert not engine.prove(phi)
    rows = []
    for budget in (50, 200, 800):
        result = engine.refute(phi, max_steps=budget, max_rows=10 * budget)
        rows.append((budget, result.outcome.value, result.steps))
    print("\nE7: chase on the finitely-valid gap instance")
    print(f"{'budget':>10}  {'outcome':>12}  {'steps':>8}")
    for budget, outcome, steps in rows:
        print(f"{budget:>10}  {outcome:>12}  {steps:>8}")
    assert all(outcome == "unknown" for _b, outcome, _s in rows)


def test_e7_chase_growth():
    rows = measure_series(
        [3, 6, 12], fk_chain,
        lambda inst: LGeneralEngine(inst[0]).refute(
            inst[1], max_steps=400, max_rows=4000))
    print_series("E7: chase cost vs foreign-key chain length", rows)
