"""E5 + E6 + E14: L_u implication and finite implication.

- E5 (Thm 3.2 / Cor 3.3): both deciders scale ~linearly on foreign-key
  chains; on the divergence family the two give different answers, and
  the infinite witness validates the gap.
- E6 (Thm 3.4): under the primary-key restriction, the two deciders
  agree on every generated instance.
- E14 (ablation): the cycle-rule decider vs exhaustive model search —
  same verdicts on tiny instances, orders of magnitude apart in cost.
"""

import time

import pytest

from benchmarks.conftest import (
    assert_subquadratic, measure_series, print_series,
)
from repro.errors import PrimaryKeyRestrictionError
from repro.implication.counterexample import divergence_witness
from repro.implication.lu import LuEngine
from repro.implication.lu_primary import check_primary_restriction
from repro.implication.search import exhaustive_counterexample
from repro.workloads.generators import (
    random_lu_implication_instance, scaled_lu_chain,
)


@pytest.mark.benchmark(group="E5-lu-unrestricted")
@pytest.mark.parametrize("n", [10, 100, 1000])
def test_lu_implication_chain(benchmark, n):
    sigma, phi = scaled_lu_chain(n)
    assert benchmark(lambda: LuEngine(sigma).implies(phi))


@pytest.mark.benchmark(group="E5-lu-finite")
@pytest.mark.parametrize("n", [10, 100, 1000])
def test_lu_finite_implication_chain(benchmark, n):
    sigma, phi = scaled_lu_chain(n)
    assert benchmark(lambda: LuEngine(sigma).finitely_implies(phi))


def test_e5_linear_shapes():
    unrest = measure_series(
        [100, 400, 1600], scaled_lu_chain,
        lambda inst: LuEngine(inst[0]).implies(inst[1]))
    finite = measure_series(
        [100, 400, 1600], scaled_lu_chain,
        lambda inst: LuEngine(inst[0]).finitely_implies(inst[1]))
    print_series("E5: I_u (unrestricted) vs chain length", unrest)
    print_series("E5: I_u^f (finite, cycle rules) vs chain length",
                 finite)
    assert_subquadratic(unrest)
    assert_subquadratic(finite, factor=6.0)  # SCC fixpoint constant


def test_e5_divergence():
    """Cor 3.3: the two problems differ, witnessed three ways."""
    sigma, phi, witness = divergence_witness()
    engine = LuEngine(sigma)
    unrestricted = bool(engine.implies(phi))
    finite = bool(engine.finitely_implies(phi))
    print(f"\nE5 divergence: Sigma |= phi: {unrestricted}; "
          f"Sigma |=_f phi: {finite}")
    assert not unrestricted and finite
    assert witness.check(sigma, phi)
    # The finite prefix of the infinite witness always breaks Sigma.
    for n in (2, 8, 32):
        prefix = witness.prefix(n)
        assert not prefix.satisfies_all(sigma)


def test_e6_primary_restriction_coincidence():
    """Thm 3.4: zero disagreements across many random primary instances."""
    agreements = 0
    disagreements = 0
    for seed in range(300):
        sigma, phi = random_lu_implication_instance(
            seed, primary=True, n_types=4, n_constraints=7)
        try:
            check_primary_restriction(sigma + [phi])
        except PrimaryKeyRestrictionError:
            continue
        engine = LuEngine(sigma)
        if bool(engine.implies(phi)) == bool(engine.finitely_implies(phi)):
            agreements += 1
        else:
            disagreements += 1
    print(f"\nE6: primary-restricted instances checked: "
          f"{agreements + disagreements}, disagreements: {disagreements}")
    assert disagreements == 0
    assert agreements >= 100


def test_e14_decider_vs_exhaustive_search():
    """Ablation: same verdicts, wildly different costs."""
    cases = []
    for seed in range(25):
        sigma, phi = random_lu_implication_instance(
            seed, n_types=2, n_attrs=2, n_constraints=4,
            with_inverses=False)
        cases.append((sigma, phi))

    t0 = time.perf_counter()
    decider_says = []
    for sigma, phi in cases:
        decider_says.append(bool(LuEngine(sigma).finitely_implies(phi)))
    decider_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    search_says = []
    for sigma, phi in cases:
        model = exhaustive_counterexample(sigma, phi, max_elements=2,
                                          domain_size=2)
        search_says.append(model is None)
    search_time = time.perf_counter() - t0

    print(f"\nE14: decider {decider_time:.4f}s vs exhaustive "
          f"{search_time:.4f}s over {len(cases)} instances "
          f"(x{search_time / max(decider_time, 1e-9):.0f})")
    # Soundness cross-check: whenever search finds a model, the decider
    # must agree it's not implied.  (The converse can fail only because
    # the search bounds are tiny; count those separately.)
    bound_misses = 0
    for said_implied, search_implied in zip(decider_says, search_says):
        if not search_implied:
            assert not said_implied
        elif not said_implied:
            bound_misses += 1
    print(f"E14: instances where tiny bounds hid a counterexample: "
          f"{bound_misses}/{len(cases)}")
    assert search_time > decider_time


def test_e5_ckv_substrate_scaling():
    """The relational unary FD+IND engine (the CKV result §3.2 builds
    on) shows the same linear shape and the same divergence."""
    from repro.relational.unary import (
        UnaryDependencyEngine, UnaryFD, UnaryIND,
    )

    def make(n):
        sigma = []
        for i in range(n):
            sigma.append(UnaryIND("r", f"a{i}", "r", f"a{i + 1}"))
            sigma.append(UnaryFD("r", f"a{i + 1}", f"a{i}"))
        return sigma, UnaryIND("r", "a0", "r", f"a{n}")

    rows = measure_series(
        [50, 200, 800], make,
        lambda inst: UnaryDependencyEngine(inst[0]).finitely_implies(
            inst[1]))
    print_series("E5b: CKV unary FD+IND finite implication vs |Sigma|",
                 rows)
    assert_subquadratic(rows, factor=8.0)
    # Divergence on the relational side too.
    engine = UnaryDependencyEngine([UnaryFD("r", "a", "b"),
                                    UnaryIND("r", "a", "r", "b")])
    assert not engine.implies(UnaryFD("r", "b", "a"))
    assert engine.finitely_implies(UnaryFD("r", "b", "a"))
