"""EX1-EX3: benchmarks for the beyond-the-paper extensions.

- EX1: constraint propagation (rename/merge/project + verification)
  scales with schema size;
- EX2: DTD^C consistency analysis scales with schema size;
- EX3: path *evaluation* (nodes/ext with IDREF dereferencing) scales
  with document size on the school workload.
"""

import pytest

from benchmarks.conftest import (
    assert_subquadratic, measure_series, print_series,
)
from repro.constraints.parser import parse_constraints
from repro.dtd import DTDC, DTDStructure
from repro.dtd.consistency import consistency_report
from repro.paths import parse_path
from repro.paths.evaluate import PathEvaluator
from repro.transform import merge, project, rename_elements, verify_propagation
from repro.workloads import school_document, school_dtdc


def wide_schema(n: int) -> DTDC:
    """n types in an FK chain — the schema-scaling workload."""
    s = DTDStructure("root")
    s.define_element("root", "(" + ", ".join(
        f"t{i}*" for i in range(n)) + ")")
    lines = []
    for i in range(n):
        s.define_element(f"t{i}", "EMPTY")
        s.define_attribute(f"t{i}", "k")
        lines.append(f"t{i}.k -> t{i}")
    for i in range(n - 1):
        s.define_attribute(f"t{i}", "r")
        lines.append(f"t{i}.r sub t{i + 1}.k")
    return DTDC(s, parse_constraints("\n".join(lines), s))


@pytest.mark.benchmark(group="EX1-transform")
@pytest.mark.parametrize("n", [10, 40, 160])
def test_rename_and_verify(benchmark, n):
    dtd = wide_schema(n)
    mapping = {f"t{i}": f"x{i}" for i in range(n)}

    def work():
        renamed = rename_elements(dtd, mapping)
        return verify_propagation(dtd, renamed, elem_map=mapping)

    report = benchmark(work)
    assert report.ok


@pytest.mark.benchmark(group="EX2-consistency")
@pytest.mark.parametrize("n", [10, 40, 160])
def test_consistency_analysis(benchmark, n):
    dtd = wide_schema(n)
    report = benchmark(lambda: consistency_report(dtd))
    assert report.consistent


@pytest.mark.benchmark(group="EX3-path-eval")
@pytest.mark.parametrize("n", [20, 80, 320])
def test_path_evaluation(benchmark, n):
    dtd = school_dtdc()
    doc = school_document(n_students=n, n_teachers=n // 2,
                          n_courses=n, density=6.0 / n, seed=1)
    path = parse_path("taking.taught_by")

    def work():
        evaluator = PathEvaluator(dtd, doc)
        return evaluator.ext_of("student", path)

    benchmark(work)


def test_ex1_shape():
    rows = measure_series(
        [20, 80, 320], wide_schema,
        lambda dtd: project(dtd, "t0"))
    print_series("EX1: project + dependent-drop vs schema size", rows)


def test_ex3_shape():
    dtd = school_dtdc()

    def setup(n):
        return school_document(n_students=n, n_teachers=n // 2,
                               n_courses=n, density=6.0 / n, seed=1)

    rows = measure_series(
        [40, 160, 640], setup,
        lambda doc: PathEvaluator(dtd, doc).ext_of(
            "student", parse_path("taking.taught_by")))
    print_series("EX3: two-hop dereferencing path eval vs #students",
                 rows)
    assert_subquadratic(rows, factor=8.0)
