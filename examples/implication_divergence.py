#!/usr/bin/env python3
"""Implication vs finite implication: the heart of §3.

Walks through the paper's central phenomena with live engines:

1. Corollary 3.3 — for ``L_u``, finite implication is *strictly
   stronger* than unrestricted implication: the cycle rule derives
   ``tau.b ⊆ tau.a`` from two keys and one inclusion, and an infinite
   model shows why no finite counterexample exists.
2. Theorem 3.4 — the divergence disappears under the primary-key
   restriction.
3. Theorem 3.6 — for full ``L`` the problem is undecidable: the sound
   rules cannot prove the finitely-valid consequence, and the chase
   runs away; counterexamples and proofs are produced where they exist.

Run:  python examples/implication_divergence.py
"""

from repro.constraints import ForeignKey, Key
from repro.implication import LGeneralEngine, LuEngine
from repro.implication.counterexample import (
    divergence_witness, finite_counterexample,
)
from repro.implication.search import exhaustive_counterexample


def main() -> None:
    sigma, phi, witness = divergence_witness()
    print("Sigma:")
    for c in sigma:
        print(f"  {c}")
    print(f"phi: {phi}\n")

    engine = LuEngine(sigma)
    print(f"Sigma |= phi   (unrestricted): {bool(engine.implies(phi))}")
    print(f"Sigma |=_f phi (finite):       "
          f"{bool(engine.finitely_implies(phi))}")
    print("\nWhy finitely: "
          f"\n{engine.finitely_implies(phi).derivation.pretty(1)}")

    print("\nThe infinite witness (b = identity, a = successor on N):")
    print(f"  witnesses Sigma but not phi: {witness.check(sigma, phi)}")
    for n in (3, 6):
        prefix = witness.prefix(n)
        broken = [c for c in sigma if not prefix.satisfies(c)]
        print(f"  truncating to {n} elements breaks: "
              f"{', '.join(map(str, broken))}")

    print("\nExhaustive search confirms no small finite model "
          "separates them:")
    model = exhaustive_counterexample(sigma, phi, max_elements=3,
                                      domain_size=3)
    print(f"  counterexample within 3 elements / 3 values: {model}")

    print("\nA genuinely non-implied variant has a tiny witness:")
    weaker = sigma[:2] + [sigma[2]]
    from repro.constraints import UnaryKey, attr
    other = UnaryKey("tau", attr("c"))
    cex = finite_counterexample(weaker, other)
    print(f"  phi' = {other}; counterexample:\n{cex}\n")

    print("=" * 60)
    print("Full L (Theorem 3.6): the same instance, lifted")
    gsigma = [Key("tau", ("a",)), Key("tau", ("b",)),
              ForeignKey("tau", ("a",), "tau", ("b",))]
    gphi = ForeignKey("tau", ("b",), "tau", ("a",))
    general = LGeneralEngine(gsigma)
    print(f"  sound rules prove phi: {bool(general.prove(gphi))}")
    chase_result = general.refute(gphi, max_steps=100, max_rows=1000)
    print(f"  bounded chase outcome: {chase_result.outcome.value} "
          f"after {chase_result.steps} rounds")
    print("  => exactly the undecidability picture: finitely valid, "
          "not provable, chase diverges.")

    provable = ForeignKey("tau", ("a",), "tau", ("b",))
    print(f"\n  ...but stated facts still prove fine: "
          f"{bool(general.prove(provable))}")


if __name__ == "__main__":
    main()
