#!/usr/bin/env python3
"""Quickstart: the book document of §1 end to end.

Parses a ``.dtdc`` schema (DTD + constraints), parses and validates the
XML document, shows how violations are reported, and asks the
implication engine a few questions about Σ.

Run:  python examples/quickstart.py
"""

from repro import Validator, parse_constraint, parse_document, parse_dtdc
from repro.cli.main import _pick_engine

SCHEMA = """
<!ELEMENT book    (entry, author*, section*, ref)>
<!ELEMENT entry   (title, publisher)>
<!ATTLIST entry   isbn CDATA #REQUIRED>
<!ELEMENT section (title, (#PCDATA | section)*)>
<!ATTLIST section sid ID #REQUIRED>
<!ELEMENT ref     EMPTY>
<!ATTLIST ref     to IDREFS #REQUIRED>
<!ELEMENT author    (#PCDATA)>
<!ELEMENT title     (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>

%% constraints
entry.isbn -> entry          # isbn is a key for entry elements
section.sid -> section       # sid is a key for section elements
ref.to subS entry.isbn       # references point at entries only
"""

DOCUMENT = """
<book>
  <entry isbn="1-55860-622-X">
    <title>Data on the Web</title>
    <publisher>Morgan Kaufmann</publisher>
  </entry>
  <author>Serge Abiteboul</author>
  <author>Peter Buneman</author>
  <author>Dan Suciu</author>
  <section sid="intro"><title>Introduction</title>
    Semistructured data and XML.
    <section sid="motivation"><title>Motivation</title></section>
  </section>
  <ref to="1-55860-622-X"/>
</book>
"""


def main() -> None:
    dtd = parse_dtdc(SCHEMA, root="book")
    print("The DTD^C (Definitions 2.2-2.3):")
    print(dtd.describe())

    validator = Validator(dtd)
    tree = parse_document(DOCUMENT, dtd.structure)
    report = validator.validate(tree)
    print(f"\nValidation (Definition 2.4): {report}")

    # Break the reference and the key, and watch the checker object.
    tree.ext("ref")[0].set_attribute("to", ["does-not-exist"])
    tree.ext("section")[1].set_attribute("sid", "intro")
    print(f"\nAfter corrupting the document:\n{validator.validate(tree)}")

    # Implication: what else does Σ entail?
    questions = [
        "entry.isbn -> entry",        # stated
        "ref.to subS entry.isbn",     # stated
        "section.sid sub entry.isbn",  # nonsense: not implied
    ]
    print("\nImplication of L_u constraints (§3.2):")
    sigma = list(dtd.constraints)
    for text in questions:
        phi = parse_constraint(text, dtd.structure)
        result = _pick_engine(sigma, phi).implies(phi)
        verdict = "implied" if result else "NOT implied"
        print(f"  {text:<35} {verdict}")


if __name__ == "__main__":
    main()
