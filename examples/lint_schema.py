#!/usr/bin/env python3
"""Linting a schema: the static-analysis engine on a blemished DTD^C.

Loads ``library.dtdc`` (which ships with an unreachable element type
and a duplicated constraint), runs the full rule set, prints the
report in both text and JSON form, then repairs the schema and lints
again to show a clean verdict.

Run:  python examples/lint_schema.py
"""

import json
import pathlib

from repro.analysis import LintConfig, analyze
from repro.xmlio.dtdparse import parse_dtdc

SCHEMA_PATH = pathlib.Path(__file__).with_name("library.dtdc")


def main() -> None:
    text = SCHEMA_PATH.read_text()
    # check=False: lint *reports* problems instead of raising on them.
    dtd = parse_dtdc(text, root="library", check=False)

    print("Full analysis of library.dtdc:")
    report = analyze(dtd)
    print(report)

    print("\nAs JSON (what `repro-xic lint --format json` emits):")
    payload = json.loads(report.to_json(schema=str(SCHEMA_PATH.name)))
    print(json.dumps(payload["summary"], indent=2))

    print("\nSemantic family only (--select XIC3):")
    print(analyze(dtd, LintConfig(select=("XIC3",))))

    # Repair: drop the duplicate constraint and the unreachable type.
    repaired = "\n".join(
        line for line in text.splitlines()
        if "archive" not in line) \
        .replace("book.isbn -> book\nbook.isbn -> book",
                 "book.isbn -> book")
    dtd = parse_dtdc(repaired, root="library", check=False)
    report = analyze(dtd)
    print(f"\nAfter the repair -- clean: {report.clean}")
    for d in report:
        print(f"  (advisory) {d}")


if __name__ == "__main__":
    main()
