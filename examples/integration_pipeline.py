#!/usr/bin/env python3
"""Constraint propagation through an integration pipeline (§5).

The paper closes by asking how constraints propagate through integration
programs and how they help verify correctness.  This example runs a
realistic three-step pipeline over two XML sources and *checks* the
propagation at each step:

1. rename the second source's vocabulary (lossless — verified),
2. merge both sources under a mediated root (lossless at the schema
   level, but document-wide ID semantics can clash at the instance
   level — demonstrated),
3. project a published view (lossy — the dropped constraints are
   reported, which is exactly the silent-semantics-loss the paper's
   introduction warns about).

Run:  python examples/integration_pipeline.py
"""

from repro.dtd import validate
from repro.transform import (
    merge, project, rename_elements, verify_propagation,
)
from repro.transform.merge import merge_documents
from repro.workloads import book_document, book_dtdc
from repro.xmlio import parse_document, parse_dtdc

SECOND_SOURCE = """
<!ELEMENT catalog (item*)>
<!ELEMENT item    (title)>
<!ATTLIST item
    sku    CDATA  #REQUIRED
    refs   IDREFS #IMPLIED>
<!ELEMENT title (#PCDATA)>

%% constraints
item.sku -> item
item.refs subS item.sku
"""

SECOND_DOCUMENT = """
<catalog>
  <item sku="A-1" refs=""><title>Foundations of Databases</title></item>
  <item sku="A-2" refs="A-1"><title>Database Theory Column</title></item>
</catalog>
"""


def main() -> None:
    source_a = book_dtdc()
    doc_a = book_document()
    source_b = parse_dtdc(SECOND_SOURCE, root="catalog")
    doc_b = parse_document(SECOND_DOCUMENT, source_b.structure)

    print("Step 1: rename source B's vocabulary "
          "(title collides with source A).")
    mapping = {"title": "item_title"}
    renamed_b = rename_elements(source_b, mapping)
    for v in doc_b.root.subtree():
        if v.label in mapping:
            v.label = mapping[v.label]
    report = verify_propagation(source_b, renamed_b, elem_map=mapping)
    print(f"  propagation: {report}")
    assert report.ok

    print("\nStep 2: merge under the mediated root 'library'.")
    mediated = merge(source_a, renamed_b, root="library")
    merged_doc = merge_documents(doc_a, doc_b, root="library")
    print(f"  merged schema: |E| = "
          f"{len(mediated.structure.element_types)}, "
          f"|Sigma| = {len(mediated.constraints)}")
    print(f"  merged document validates: "
          f"{validate(merged_doc, mediated).ok}")
    for source in (source_a, renamed_b):
        assert verify_propagation(source, mediated).ok
    print("  both sources' constraints propagate verbatim.")

    print("\nStep 3: publish the 'section' view (projection).")
    view, dropped = project(source_a, "section")
    print(f"  kept:    {[str(c) for c in view.constraints]}")
    print(f"  DROPPED: {[str(c) for c in dropped]}")
    lost = verify_propagation(source_a, view)
    print(f"  propagation check: {lost}")
    print("  => the view silently loses the entry key and the "
          "reference typing — the tooling makes the loss visible.")


if __name__ == "__main__":
    main()
