#!/usr/bin/env python3
"""Path constraints and query optimization (§4).

Shows the three §4.2 deciders on the paper's own examples:

- ``book.entry.isbn -> book.author`` (path functional, Prop 4.1):
  the isbn determines the whole book, so a query that groups books by
  isbn needs no duplicate elimination on authors;
- ``book.ref.to ⊆ entry`` and ``book.ref.to.title ⊆ entry.title``
  (path inclusion, Prop 4.2): references are *typed*, so navigating
  ``ref.to.title`` can be answered from the entry index;
- ``student.taking.taught_by ⇌ teacher.teaching.taken_by``
  (path inverse, Prop 4.3): a two-hop navigation can be flipped.

Run:  python examples/path_reasoning.py
"""

from repro.constraints.parser import parse_constraints
from repro.dtd import DTDC, DTDStructure
from repro.paths import (
    PathFunctional, PathImplicationEngine, PathInclusion, PathInverse,
    parse_path, type_of,
)
from repro.paths.evaluate import PathEvaluator
from repro.workloads import book_document


def lid_book() -> DTDC:
    s = DTDStructure("book")
    s.define_element("book", "(entry, author*, section*, ref)")
    s.define_element("entry", "(title, publisher)")
    s.define_element("section", "(title, (S + section)*)")
    s.define_element("ref", "EMPTY")
    for leaf in ("author", "title", "publisher"):
        s.define_element(leaf, "S*")
    s.define_attribute("entry", "isbn", kind="ID")
    s.define_attribute("section", "sid")
    s.define_attribute("ref", "to", set_valued=True, kind="IDREF")
    return DTDC(s, parse_constraints("""
        entry.isbn ->id entry
        section.sid -> section
        ref.to subS entry.id
    """, s))


def school() -> DTDC:
    s = DTDStructure("school")
    s.define_element("school", "(student*, teacher*, course*)")
    for t in ("student", "teacher", "course"):
        s.define_element(t, "EMPTY")
        s.define_attribute(t, "oid", kind="ID")
    s.define_attribute("student", "taking", set_valued=True, kind="IDREF")
    s.define_attribute("teacher", "teaching", set_valued=True,
                       kind="IDREF")
    s.define_attribute("course", "taken_by", set_valued=True,
                       kind="IDREF")
    s.define_attribute("course", "taught_by", set_valued=True,
                       kind="IDREF")
    return DTDC(s, parse_constraints("""
        student.oid ->id student
        teacher.oid ->id teacher
        course.oid ->id course
        student.taking inv course.taken_by
        teacher.teaching inv course.taught_by
    """, s))


def main() -> None:
    dtd = lid_book()
    engine = PathImplicationEngine(dtd)

    print("Typing navigation paths (§4.1):")
    for text in ("entry", "entry.isbn", "ref.to", "ref.to.title",
                 "section.section.sid"):
        print(f"  type(book.{text}) = "
              f"{type_of(dtd, 'book', text)}")

    print("\nEvaluating the dereferencing path on Figure 2's document:")
    evaluator = PathEvaluator(dtd, book_document())
    titles = evaluator.ext_of("book", parse_path("ref.to.title"))
    print(f"  ext(book.ref.to.title) = "
          f"{sorted(t.text for t in titles)}")

    print("\nProp 4.1 — path functional constraints:")
    for phi in (
        PathFunctional("book", parse_path("entry.isbn"),
                       parse_path("author")),
        PathFunctional("book", parse_path("author"),
                       parse_path("entry")),
    ):
        print(f"  {phi}: {engine.implies(phi).explain()}")

    print("\nProp 4.2 — path inclusion constraints:")
    for phi in (
        PathInclusion("book", parse_path("ref.to"),
                      "entry", parse_path("")),
        PathInclusion("book", parse_path("ref.to.title"),
                      "entry", parse_path("title")),
        PathInclusion("book", parse_path("author"),
                      "entry", parse_path("title")),
    ):
        print(f"  {phi}: {engine.implies(phi).explain()}")

    print("\nProp 4.3 — path inverse constraints "
          "(student/teacher/course):")
    school_engine = PathImplicationEngine(school())
    for phi in (
        PathInverse("student", parse_path("taking"),
                    "course", parse_path("taken_by")),
        PathInverse("student", parse_path("taking.taught_by"),
                    "teacher", parse_path("teaching.taken_by")),
        PathInverse("student", parse_path("taking.taught_by"),
                    "teacher", parse_path("teaching.taught_by")),
    ):
        print(f"  {phi}: {school_engine.implies(phi).explain()}")


if __name__ == "__main__":
    main()
