#!/usr/bin/env python3
"""Self-describing documents: DOCTYPE-internal DTDs with constraints.

A single XML file can carry its own schema *and* its integrity
constraints (in a ``<!-- constraints: ... -->`` comment inside the
internal subset), which is the closest a plain XML 1.0 document gets to
the paper's ``DTD^C``.  This example parses such a document, validates
it, and runs the consistency analysis on a deliberately broken variant.

Run:  python examples/self_describing.py
"""

from repro.dtd import validate
from repro.dtd.consistency import consistency_report
from repro.xmlio import parse_document_with_dtd, parse_dtdc

DOCUMENT = """<!DOCTYPE org [
  <!ELEMENT org (team*, person*)>
  <!ELEMENT team EMPTY>
  <!ATTLIST team
      tid     ID     #REQUIRED
      members IDREFS #REQUIRED>
  <!ELEMENT person EMPTY>
  <!ATTLIST person
      pid   ID     #REQUIRED
      teams IDREFS #REQUIRED>
  <!-- constraints:
  team.tid ->id team
  person.pid ->id person
  team.members subS person.id
  person.teams subS team.id
  team.members inv person.teams
  -->
]>
<org>
  <team tid="core"  members="ann bob"/>
  <team tid="infra" members="bob"/>
  <person pid="ann" teams="core"/>
  <person pid="bob" teams="core infra"/>
</org>
"""

INCONSISTENT_SCHEMA = """
<!ELEMENT db (broker, a*, b*)>
<!ELEMENT broker EMPTY>
<!ATTLIST broker link IDREF #REQUIRED>
<!ELEMENT a EMPTY>
<!ATTLIST a oid ID #REQUIRED>
<!ELEMENT b EMPTY>
<!ATTLIST b oid ID #REQUIRED>

%% constraints
a.oid ->id a
b.oid ->id b
broker.link sub a.id
broker.link sub b.id
"""


def main() -> None:
    dtd, tree = parse_document_with_dtd(DOCUMENT)
    print("Parsed a self-describing document:")
    print(f"  root type: {dtd.structure.root}")
    print(f"  constraints: {[str(c) for c in dtd.constraints]}")
    print(f"  validation: {validate(tree, dtd)}")

    print("\nBreak the inverse (bob leaves infra but infra keeps him):")
    bob = [v for v in tree.ext("person")
           if v.single("pid") == "bob"][0]
    bob.set_attribute("teams", ["core"])
    for violation in validate(tree, dtd):
        print(f"  {violation}")

    print("\nConsistency analysis of a degenerate DTD^C "
          "(one IDREF attribute FK'd into two types):")
    broken = parse_dtdc(INCONSISTENT_SCHEMA, root="db")
    print(f"  {consistency_report(broken)}")


if __name__ == "__main__":
    main()
