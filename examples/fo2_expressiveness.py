#!/usr/bin/env python3
"""FO² cannot express key constraints (§1, Figure 1).

Reconstructs the Figure 1 argument executably: two finite structures
that the 2-pebble Ehrenfeucht–Fraïssé game cannot separate — so no FO²
sentence distinguishes them — yet the unary key constraint
``∀x∀y(∃z(l(x,z) ∧ l(y,z)) → x = y)`` (three variables!) holds in one
and fails in the other.  Ends with the exhaustive search that found the
minimal pair.

Run:  python examples/fo2_expressiveness.py
"""

from repro.fo2 import (
    evaluate, figure_one_pair, key_constraint_formula,
    search_indistinguishable_pair, two_pebble_equivalent,
)
from repro.fo2.ef_game import winning_configurations


def main() -> None:
    g, g_prime = figure_one_pair()
    print("The Figure 1 pair (reconstructed; see DESIGN.md):")
    print(f"  G  = {g}")
    print(f"  G' = {g_prime}")

    phi = key_constraint_formula()
    print(f"\nThe key constraint: {phi}")
    print(f"  G  |= phi: {evaluate(g, phi)}")
    print(f"  G' |= phi: {evaluate(g_prime, phi)}")

    equivalent = two_pebble_equivalent(g, g_prime)
    print(f"\n2-pebble EF game: duplicator wins from the empty "
          f"configuration: {equivalent}")
    alive = winning_configurations(g, g_prime)
    print(f"  surviving configurations: {len(alive)}")
    print("  => G and G' satisfy the same FO² sentences, so phi is not "
          "FO²-expressible.")

    print("\nIntuition: with two pebbles the spoiler can point at one "
          "l-predecessor of a node,\nbut exhibiting a *second distinct* "
          "predecessor needs a third pebble.")

    print("\nExhaustive search over all digraphs with <= 3 nodes:")
    pair = search_indistinguishable_pair(3)
    print(f"  minimal witness found: G = {pair[0]}")
    print(f"                         G' = {pair[1]}")


if __name__ == "__main__":
    main()
