#!/usr/bin/env python3
"""Legacy data, part 1: exporting an object database to XML (§1, §2.4).

Builds the paper's person/dept ODL schema, populates a store, exports it
to XML with ``L_id`` constraints (object identity, typed references,
multiple keys, inverse relationships), and demonstrates that the export
*preserves semantics*: corrupting the store produces exactly the
corresponding constraint violations on the XML side — the information
plain ID/IDREF would have lost.

Run:  python examples/legacy_oodb_export.py
"""

from repro.dtd import validate
from repro.oodb import export_store
from repro.workloads import person_dept_schema, person_dept_store
from repro.xmlio import serialize, serialize_dtdc


def main() -> None:
    schema = person_dept_schema()
    print("The ODL schema (§1):")
    print(schema)

    store = person_dept_store(n_depts=2, people_per_dept=2)
    print(f"\nStore consistency check: "
          f"{store.check() or 'consistent'}")

    dtd, tree = export_store(store)
    print("\nThe exported DTD^C (D_o of §2.4, constraints in L_id):")
    print(serialize_dtdc(dtd))
    print("The exported document:")
    print(serialize(tree))
    print(f"Validation: {validate(tree, dtd)}")

    # What plain ID/IDREF cannot express, L_id catches:
    print("\n-- scenario 1: an in_dept reference to a *person* oid --")
    broken = person_dept_store(2, 2)
    broken.get("p0_0").references["in_dept"] = ("p1_0",)
    dtd_b, tree_b = export_store(broken)
    for violation in validate(tree_b, dtd_b):
        print(f"  {violation}")

    print("\n-- scenario 2: two people sharing a name (key, not ID) --")
    broken = person_dept_store(2, 2)
    broken.get("p0_0").attributes["name"] = "Person 0-1"
    dtd_b, tree_b = export_store(broken)
    for violation in validate(tree_b, dtd_b):
        print(f"  {violation}")

    print("\n-- scenario 3: inverse relationship broken one way --")
    broken = person_dept_store(2, 2)
    dept = broken.get("d0")
    dept.references["has_staff"] = tuple(
        o for o in dept.references["has_staff"] if o != "p0_0")
    dtd_b, tree_b = export_store(broken)
    for violation in validate(tree_b, dtd_b):
        print(f"  {violation}")


if __name__ == "__main__":
    main()
