#!/usr/bin/env python3
"""Legacy data, part 2: exporting a relational database to XML (§1).

The publisher/editor schema: ``(pname, country)`` is a composite key of
``publisher`` and a composite foreign key of ``editor`` — constraints
the language ``L`` expresses over *sub-elements* (§3.4), far beyond the
ID/IDREF mechanism.  Also runs the primary-key implication engine
(Theorem 3.8 / Corollary 3.9) over the exported Σ.

Run:  python examples/relational_export.py
"""

from repro.constraints import ForeignKey, Key
from repro.dtd import validate
from repro.implication import LPrimaryEngine
from repro.relational import export_database
from repro.workloads import publisher_constraints, publisher_instance
from repro.xmlio import serialize


def main() -> None:
    instance = publisher_instance(n_publishers=2,
                                  editors_per_publisher=1)
    constraints = publisher_constraints()
    print("Relational constraints (language L):")
    for c in constraints:
        print(f"  {c}")

    dtd, tree = export_database(instance, constraints)
    print("\nExported XML:")
    print(serialize(tree))
    print(f"Validation: {validate(tree, dtd)}")

    print("\nA dangling editor (foreign-key violation) survives the "
          "translation:")
    instance.add_row("editor", {"name": "Rogue", "pname": "Nowhere",
                                "country": "ZZ"})
    _dtd2, tree2 = export_database(instance, constraints)
    for violation in validate(tree2, dtd):
        print(f"  {violation}")

    print("\nImplication under the primary-key restriction "
          "(Theorem 3.8):")
    engine = LPrimaryEngine([
        Key("publisher", ("pname", "country")),
        ForeignKey("editor", ("pname", "country"),
                   "publisher", ("pname", "country")),
    ])
    queries = [
        Key("publisher", ("country", "pname")),
        ForeignKey("editor", ("country", "pname"),
                   "publisher", ("country", "pname")),
        ForeignKey("editor", ("pname", "country"),
                   "publisher", ("country", "pname")),
    ]
    for phi in queries:
        result = engine.implies(phi)
        print(f"  {str(phi):<55} "
              f"{'implied' if result else 'NOT implied'}")
        if result and result.derivation is not None:
            for line in result.derivation.pretty(2).splitlines():
                print(line)


if __name__ == "__main__":
    main()
